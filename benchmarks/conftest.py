"""Shared fixtures for the reproduction benchmarks.

Scale is selected with the ``REPRO_SCALE`` environment variable:

* ``small`` (default) — laptop-friendly workload and a calibrated
  sub-grid of the paper's 30x30 theme grid. Preserves every qualitative
  shape of Section 5.3; the full suite runs in minutes.
* ``paper`` — the paper's dimensions (166 seeds, ~14.7k events, 94
  subscriptions, 30x30x5 sub-experiments). Expect many hours in CPython.

Every bench prints a paper-vs-measured comparison; absolute numbers are
expected to differ (different hardware, CPython vs JVM, synthetic corpus
vs Wikipedia) — the *shapes* are asserted.
"""

import os

import pytest

from repro.evaluation import (
    ThemeGridConfig,
    WorkloadConfig,
    build_workload,
    run_baseline,
    run_grid,
)
from repro.obs import write_bench_artifact

SCALE = os.environ.get("REPRO_SCALE", "small")

#: The calibrated sub-grid used at small scale (paper: sizes 1..30 x5).
SMALL_GRID = ThemeGridConfig(
    event_sizes=(1, 3, 7, 15, 30),
    subscription_sizes=(1, 3, 7, 15, 30),
    samples_per_cell=2,
)


def scale_config() -> WorkloadConfig:
    if SCALE == "paper":
        return WorkloadConfig.paper()
    if SCALE == "small":
        return WorkloadConfig.small()
    if SCALE == "tiny":
        return WorkloadConfig.tiny()
    raise ValueError(f"unknown REPRO_SCALE {SCALE!r}")


def grid_config() -> ThemeGridConfig:
    if SCALE == "paper":
        return ThemeGridConfig.paper_scale()
    if SCALE == "tiny":
        return ThemeGridConfig(
            event_sizes=(2, 7), subscription_sizes=(2, 7), samples_per_cell=1
        )
    return SMALL_GRID


@pytest.fixture(scope="session")
def workload():
    wl = build_workload(scale_config())
    print(f"\n[workload/{SCALE}] {wl.summary()}")
    return wl


@pytest.fixture(scope="session")
def baseline(workload):
    result = run_baseline(workload)
    print(
        f"[baseline] non-thematic: F1={result.f1:.1%} "
        f"throughput={result.events_per_second:.0f} ev/s "
        f"(paper: 62% at 202 ev/s)"
    )
    return result


@pytest.fixture(scope="session")
def grid(workload):
    """The theme-grid run shared by the Figure 7-10 benches."""
    return run_grid(
        workload,
        grid_config=grid_config(),
        progress=lambda line: print("  " + line),
    )


@pytest.fixture()
def bench_artifact(workload):
    """Shared writer for ``BENCH_<name>.json`` artifacts.

    Every bench reports through this so artifacts share one schema and
    carry the workload summary; the destination directory is the cwd or
    ``REPRO_BENCH_DIR``.
    """

    def write(name, metrics, **extra):
        path = write_bench_artifact(
            name, metrics, extra={"workload": workload.summary(), **extra}
        )
        print(f"[artifact] {path}")
        return path

    return write
