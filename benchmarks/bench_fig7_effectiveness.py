"""Figure 7 — effectiveness heatmap of the thematic matcher.

Paper: average F1 over 5 samples per (event theme size x subscription
theme size) cell, sizes 1..30. Thematic beats the 62% baseline on >70%
of combinations (62%-85%, average 71%); single-tag themes and the
bottom triangle (event theme much larger than subscription theme, i.e.
too few subscription tags) are the failure regions.

The bench regenerates the heatmap (calibrated sub-grid at small scale)
and asserts the headline shape claims.
"""

import statistics

import pytest

from repro.evaluation import format_comparison, format_heatmap


def test_figure7_heatmap(benchmark, workload, baseline, grid, bench_artifact):
    benchmark.pedantic(lambda: grid.overall_mean("f1"), rounds=1, iterations=1)

    fraction = grid.fraction_above(baseline.f1)
    best = grid.best("f1")
    mean_f1 = grid.overall_mean("f1")

    print()
    print("Figure 7 — thematic F1 x100 per cell (* = above baseline):")
    print(format_heatmap(grid, value="f1", baseline=baseline.f1))
    print()
    print(
        format_comparison(
            [
                ("cells above baseline", "> 70%", f"{fraction:.0%}"),
                ("F1 range above baseline", "62-85%", f"up to {best.mean_f1:.0%}"),
                ("overall mean F1", "~71% vs 62%", f"{mean_f1:.1%} vs {baseline.f1:.1%}"),
            ],
            title="Figure 7 shape",
        )
    )

    bench_artifact(
        "fig7_effectiveness",
        {
            "baseline": baseline.as_metrics(),
            "thematic": grid.as_metrics(),
            "cells_above_baseline": fraction,
            "best_cell_f1": best.mean_f1,
        },
    )

    # Shape assertions.
    assert fraction >= 0.5, "a majority of cells must beat the baseline"
    assert best.mean_f1 > baseline.f1 + 0.02

    # Single-tag cells are a weak region (Figure 7's bottom-left edge):
    # the 1-1 cell must not be among the top performers.
    one_one = grid.cell(1, 1).mean_f1
    top_quartile = statistics.quantiles(
        [c.mean_f1 for c in grid.cells.values()], n=4
    )[2]
    assert one_one <= top_quartile + 1e-9
