"""Figure 8 — effectiveness sample error.

Paper: the standard error of the 5-sample cells averages ~7% of F1;
errors are larger (10-25%) around mid-F1 cells and converge to smaller
values for the high-F1 cells that beat the baseline — i.e. the good
regions of Figure 7 are also the *predictable* regions.
"""

import statistics

import pytest

from repro.evaluation import format_comparison, format_error_table


def test_figure8_error_profile(benchmark, workload, baseline, grid, bench_artifact):
    benchmark.pedantic(
        lambda: [c.f1_error for c in grid.cells.values()], rounds=1, iterations=1
    )

    cells = list(grid.cells.values())
    errors = [c.f1_error for c in cells]
    mean_error = statistics.fmean(errors)

    above = [c for c in cells if c.mean_f1 > baseline.f1]
    below = [c for c in cells if c.mean_f1 <= baseline.f1]

    print()
    print("Figure 8 — per-cell F1 vs sample error:")
    print(format_error_table(grid, value="f1"))
    print()
    rows = [("mean sample error", "~7% of F1", f"{mean_error:.1%}")]
    if above and below:
        rows.append(
            (
                "error: above- vs below-baseline cells",
                "smaller for high-F1 cells",
                f"{statistics.fmean(c.f1_error for c in above):.1%} vs "
                f"{statistics.fmean(c.f1_error for c in below):.1%}",
            )
        )
    print(format_comparison(rows, title="Figure 8 shape"))

    bench_artifact(
        "fig8_effectiveness_error",
        {
            "baseline_f1": baseline.f1,
            "mean_f1_sample_error": mean_error,
            "max_f1_sample_error": max(errors),
            "cells": [
                {
                    "event_size": c.event_size,
                    "subscription_size": c.subscription_size,
                    "mean_f1": c.mean_f1,
                    "f1_error": c.f1_error,
                }
                for c in cells
            ],
        },
    )

    # Shape: errors are moderate, not chaotic.
    assert mean_error <= 0.25
    assert max(errors) <= 0.5
