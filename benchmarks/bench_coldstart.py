"""FW2 — cold start and real-time behavior (paper Section 7 future work).

Section 7: future work includes "more quantitative aspects of evaluation
such as cold start and real-time behavior". This bench measures:

* **cold start** — wall-clock to first delivery from nothing: index the
  corpus, build the matcher, match the first event; and the cheaper warm
  restart from a corpus snapshot;
* **real-time behavior** — per-event matching latency percentiles with
  warm caches, plus the two-phase prefilter's effect on them.

No paper numbers exist; assertions pin the expected orderings (warm
lookups beat cold ones; the prefilter prunes work; tail latency is
bounded).
"""

import statistics
import time

import pytest

from repro.core.matcher import ThematicMatcher
from repro.core.prefilter import TwoPhaseMatcher
from repro.evaluation import format_table
from repro.obs import LatencySummary
from repro.semantics import (
    CachedMeasure,
    ParametricVectorSpace,
    ThematicMeasure,
)


def percentile(values, q):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def test_cold_start_and_latency(benchmark, workload, bench_artifact):
    subscription = workload.subscriptions.approximate[0]
    first_event = workload.events[0]

    # -- cold start: everything from scratch ---------------------------------
    start = time.perf_counter()
    space = ParametricVectorSpace(workload.corpus)
    matcher = ThematicMatcher(CachedMeasure(ThematicMeasure(space)))
    matcher.score(subscription, first_event)
    cold_seconds = time.perf_counter() - start

    # -- warm path: per-event latency distribution ---------------------------
    events = workload.events[:300]
    warm_matcher = ThematicMatcher(CachedMeasure(ThematicMeasure(workload.space)))
    subs = workload.subscriptions.approximate[:8]
    for event in events[:30]:  # warm the caches
        for sub in subs:
            warm_matcher.score(sub, event)

    latencies = []
    for event in events:
        t0 = time.perf_counter()
        for sub in subs:
            warm_matcher.score(sub, event)
        latencies.append(time.perf_counter() - t0)

    # -- two-phase matcher on the same stream --------------------------------
    two_phase = TwoPhaseMatcher(warm_matcher, workload.space)
    for sub in subs:
        two_phase.add(sub)
    two_phase.match_event(events[0])  # build neighborhoods
    tp_latencies = []
    for event in events:
        t0 = time.perf_counter()
        two_phase.match_event(event)
        tp_latencies.append(time.perf_counter() - t0)

    benchmark.pedantic(
        lambda: [warm_matcher.score(subs[0], e) for e in events[:50]],
        rounds=1,
        iterations=1,
    )

    def row(name, values):
        return (
            name,
            f"{statistics.fmean(values) * 1000:.2f} ms",
            f"{percentile(values, 0.50) * 1000:.2f} ms",
            f"{percentile(values, 0.95) * 1000:.2f} ms",
            f"{percentile(values, 0.99) * 1000:.2f} ms",
        )

    print()
    print(f"cold start (index + first match): {cold_seconds:.2f} s")
    print()
    print("per-event latency over 8 subscriptions (warm):")
    print(
        format_table(
            ("pipeline", "mean", "p50", "p95", "p99"),
            [row("full scan", latencies), row("two-phase prefilter", tp_latencies)],
        )
    )
    print()
    print(
        f"prefilter stats: prune rate {two_phase.stats.prune_rate():.0%}, "
        f"{two_phase.stats.full_matches_run} full matches for "
        f"{two_phase.stats.pairs_considered} pairs"
    )

    warm_cache = warm_matcher.measure.cache
    bench_artifact(
        "coldstart",
        {
            "cold_start_seconds": cold_seconds,
            "full_scan_latency": LatencySummary.from_seconds(latencies).as_dict(
                unit="ms"
            ),
            "two_phase_latency": LatencySummary.from_seconds(
                tp_latencies
            ).as_dict(unit="ms"),
            "cache_hit_rate": warm_cache.hit_rate,
            "prefilter_prune_rate": two_phase.stats.prune_rate(),
        },
    )

    # Orderings.
    assert cold_seconds < 120, "cold start must stay interactive-scale"
    assert percentile(latencies, 0.99) < 1.0, "tail latency must stay sub-second"
    assert two_phase.stats.pruned_total() > 0, "the prefilter must prune work"
    assert statistics.fmean(tp_latencies) <= statistics.fmean(latencies) * 1.25, (
        "prefiltering must not make the common case materially slower"
    )
