"""Kernel-scaling ladder: scalar serial -> vectorized kernel -> shard pools.

Not a paper figure: this bench guards the engineering claims of the
vectorized relatedness kernel and the process-pool shard executor — that
the numpy kernel plus ingress micro-batching beats the serial scalar
fig9 front-end *without changing a single delivery*. Every timed run
re-checks parity inside :func:`~repro.evaluation.compare_kernel_scaling`
itself: the three kernel configurations must be **bit-identical** to one
another, and the scalar reference must match them within the kernel's
documented ``PARITY_TOLERANCE``. Throughput without identical deliveries
fails the run, not the report.

Ladder rungs (all timed over the same themed fig9-style workload):

* ``serial_scalar`` — ThreadedBroker + scalar ``SparseVector`` measure
  (the reference fig9 serial number);
* ``serial_kernel`` — same serial broker, vectorized kernel (batch size
  is 1 per dispatch, so this rung isolates kernel overhead, not wins);
* ``thread_shards`` — ShardedBroker, thread executor, kernel: ingress
  micro-batching feeds the block-fill pipeline whole batches;
* ``process_shards`` — ShardedBroker, spawned worker processes attached
  zero-copy to the columnar space snapshot.

The ISSUE target is >= 5x over the serial fig9 number at 4+ process
shards. That margin requires 4+ physical cores: on the single-CPU
container this repo is grown in, process shards cannot run in parallel
and IPC overhead makes ``process_shards`` *slower* than serial (the
committed baseline artifact records the honest number). The gate
therefore asserts parity plus direction — the best kernel configuration
must beat the scalar serial reference — and the committed
``BENCH_kernel_scaling.json`` documents the measured ladder for the
hardware it ran on.
"""

import pytest

from repro.evaluation import compare_kernel_scaling, format_comparison

SHARDS = 4
MAX_BATCH = 32
REPEATS = 2


def test_kernel_scaling(benchmark, workload, bench_artifact):
    comparison = {}

    def run():
        comparison.update(
            compare_kernel_scaling(
                workload, shards=SHARDS, max_batch=MAX_BATCH, repeats=REPEATS
            )
        )
        return comparison["events"] * 4 * REPEATS

    benchmark.pedantic(run, rounds=1, iterations=1)

    configs = comparison["configs"]
    rows = [
        (
            "serial_scalar (fig9 reference)",
            "baseline",
            f"{configs['serial_scalar']['mean_eps']:.0f} ev/s",
        )
    ]
    for name, label in (
        ("serial_kernel", "~1x (batch=1)"),
        ("thread_shards", "> 1x"),
        ("process_shards", ">= 5x on 4+ cores"),
    ):
        rows.append(
            (
                name,
                label,
                f"{configs[name]['mean_eps']:.0f} ev/s "
                f"({configs[name]['speedup']:.2f}x)",
            )
        )
    rows.append(
        (
            "delivery parity",
            "bit-identical",
            f"verified ({comparison['deliveries']} deliveries)",
        )
    )
    print()
    print(format_comparison(rows, title="Kernel scaling ladder"))

    bench_artifact("kernel_scaling", comparison)

    # Parity is asserted inside compare_kernel_scaling on every repeat;
    # this just records that the run got that far.
    assert comparison["parity"] is True
    best_kernel = max(
        configs[name]["speedup"]
        for name in ("serial_kernel", "thread_shards", "process_shards")
    )
    # Direction gate: some kernel-backed configuration must beat the
    # scalar serial reference. The full >= 5x process-shard margin is a
    # multi-core claim — see the module docstring and the committed
    # baseline artifact for the single-CPU measurement.
    assert best_kernel > 1.0, (
        f"no kernel configuration beat serial scalar: best {best_kernel:.2f}x"
    )
