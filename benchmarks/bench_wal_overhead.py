"""Cost of durability: WAL append throughput and broker publish overhead.

Not a paper figure: this bench guards the engineering claim of the
durable-state subsystem — that the default ``fsync="batch"`` policy
buys crash safety at a publish-throughput cost small enough to leave
on, while ``fsync="always"`` is available when the loss window must be
zero. Two layers are measured:

* the raw journal: framed appends/second per fsync mode, with the
  fsync counters asserted exactly (the knob must do what it says);
* the broker: end-to-end publish throughput with durability off vs
  journaled under ``"batch"`` and ``"never"``.

Every durable run ends with an in-bench recovery check: a second broker
is opened on the same journal directory and must restore every
registration and the exact sequence counter — a throughput number from
a journal that cannot recover would be worthless.
"""

import os
import tempfile
from pathlib import Path

from repro.broker.broker import ThematicBroker
from repro.broker.config import BrokerConfig
from repro.broker.durability import DurabilityPolicy, WriteAheadLog
from repro.evaluation import format_comparison
from repro.evaluation.brokers import sample_combination
from repro.evaluation.harness import thematic_matcher_factory
from repro.obs.clock import MONOTONIC_CLOCK

SCALE = os.environ.get("REPRO_SCALE", "small")

#: Raw-journal appends per fsync mode. "always" pays one fsync per
#: record, so its budget stays modest even at small scale.
WAL_RECORDS = {"tiny": 500, "small": 2_000, "paper": 10_000}.get(SCALE, 2_000)

FSYNC_BATCH = 32


def _pub_record(n):
    """A representative journal record (a small published event)."""
    return {
        "t": "pub",
        "seq": n,
        "e": {
            "theme": ["energy", "appliances", "building"],
            "payload": [
                ["type", "increased energy consumption event"],
                ["device", "computer"],
                ["office", "room 112"],
            ],
        },
    }


def bench_raw_wal(mode):
    clock = MONOTONIC_CLOCK
    with tempfile.TemporaryDirectory(prefix="repro-bench-wal-") as directory:
        counter = _FsyncCounter()
        wal = WriteAheadLog(
            Path(directory),
            fsync=mode,
            fsync_batch_records=FSYNC_BATCH,
            fsync_counter=counter,
        )
        wal.open_segment(0)
        started = clock.monotonic()
        for n in range(WAL_RECORDS):
            wal.append(_pub_record(n))
        elapsed = clock.monotonic() - started
        wal.close()
        return {
            "records": WAL_RECORDS,
            "appends_per_sec": WAL_RECORDS / elapsed if elapsed else 0.0,
            "fsyncs": counter.count,
        }


class _FsyncCounter:
    def __init__(self):
        self.count = 0

    def inc(self):
        self.count += 1


def bench_broker(workload, matcher_factory, events, subscriptions, durability):
    clock = MONOTONIC_CLOCK
    config = BrokerConfig(durability=durability)
    broker = ThematicBroker(matcher_factory(), config)
    for subscription in subscriptions:
        broker.subscribe(subscription)
    started = clock.monotonic()
    for event in events:
        broker.publish(event)
    elapsed = clock.monotonic() - started
    broker.close()
    eps = len(events) / elapsed if elapsed else 0.0
    return eps, broker


def verify_recovery(matcher_factory, directory, subscriptions, events):
    """Reopen the journal; the restored broker must match the dead one."""
    reborn = ThematicBroker(
        matcher_factory(),
        BrokerConfig(durability=DurabilityPolicy(directory=directory)),
    )
    try:
        assert reborn.durability.report is not None
        assert reborn.subscriber_count() == len(subscriptions), (
            f"recovery restored {reborn.subscriber_count()} of "
            f"{len(subscriptions)} registrations"
        )
        assert reborn._sequence == len(events), (
            f"recovery restored sequence {reborn._sequence}, "
            f"expected {len(events)}"
        )
        return reborn.durability.report
    finally:
        reborn.close()


def test_wal_overhead(benchmark, workload, bench_artifact):
    combination = sample_combination(workload, seed=99)
    events = [
        event.with_theme(combination.event_tags)
        for event in workload.events[:200]
    ]
    subscriptions = [
        subscription.with_theme(combination.subscription_tags)
        for subscription in workload.subscriptions.approximate
    ]
    matcher_factory = thematic_matcher_factory(workload)
    metrics = {"wal": {}, "broker": {}, "recovery": {}}

    def run():
        for mode in ("always", "batch", "never"):
            metrics["wal"][mode] = bench_raw_wal(mode)

        off_eps, _ = bench_broker(
            workload, matcher_factory, events, subscriptions, None
        )
        metrics["broker"]["durability_off_eps"] = off_eps
        for mode in ("batch", "never"):
            with tempfile.TemporaryDirectory(
                prefix=f"repro-bench-broker-{mode}-"
            ) as directory:
                eps, _ = bench_broker(
                    workload,
                    matcher_factory,
                    events,
                    subscriptions,
                    DurabilityPolicy(
                        directory=directory,
                        fsync=mode,
                        fsync_batch_records=FSYNC_BATCH,
                    ),
                )
                metrics["broker"][f"durability_{mode}_eps"] = eps
                report = verify_recovery(
                    matcher_factory, directory, subscriptions, events
                )
                if mode == "batch":
                    metrics["recovery"] = {
                        "restored_subscriptions": report.restored_subscriptions,
                        "records_replayed": report.records_replayed,
                        "segments_replayed": report.segments_replayed,
                    }
        off = metrics["broker"]["durability_off_eps"]
        batch = metrics["broker"]["durability_batch_eps"]
        metrics["broker"]["batch_cost_fraction"] = (
            (off - batch) / off if off else 0.0
        )
        return len(events)

    benchmark.pedantic(run, rounds=1, iterations=1)

    wal = metrics["wal"]
    broker = metrics["broker"]
    print()
    print(
        format_comparison(
            [
                (
                    "raw WAL, fsync=always",
                    "1 fsync/record",
                    f"{wal['always']['appends_per_sec']:.0f} rec/s "
                    f"({wal['always']['fsyncs']} fsyncs)",
                ),
                (
                    f"raw WAL, fsync=batch/{FSYNC_BATCH}",
                    f"1 fsync/{FSYNC_BATCH} records",
                    f"{wal['batch']['appends_per_sec']:.0f} rec/s "
                    f"({wal['batch']['fsyncs']} fsyncs)",
                ),
                (
                    "raw WAL, fsync=never",
                    "0 fsyncs",
                    f"{wal['never']['appends_per_sec']:.0f} rec/s "
                    f"({wal['never']['fsyncs']} fsyncs)",
                ),
                (
                    "broker publish, durability off",
                    "baseline",
                    f"{broker['durability_off_eps']:.0f} ev/s",
                ),
                (
                    "broker publish, fsync=batch",
                    "small overhead",
                    f"{broker['durability_batch_eps']:.0f} ev/s "
                    f"({broker['batch_cost_fraction']:.1%} cost)",
                ),
                (
                    "broker publish, fsync=never",
                    "near-zero overhead",
                    f"{broker['durability_never_eps']:.0f} ev/s",
                ),
                (
                    "recovery check",
                    "full restore",
                    f"{metrics['recovery']['restored_subscriptions']} subs, "
                    f"{metrics['recovery']['records_replayed']} records replayed",
                ),
            ],
            title="WAL overhead",
        )
    )

    bench_artifact("wal_overhead", metrics)

    # The fsync knob must do exactly what it says on the raw journal.
    assert wal["always"]["fsyncs"] == WAL_RECORDS
    assert wal["batch"]["fsyncs"] == WAL_RECORDS // FSYNC_BATCH
    assert wal["never"]["fsyncs"] == 0
    # Batching strictly removes work; allow generous noise headroom.
    assert wal["batch"]["appends_per_sec"] >= wal["always"]["appends_per_sec"] * 0.5
    # Durability must not cost an order of magnitude: the journal rides
    # behind a matching pipeline that dominates the publish path.
    assert broker["durability_batch_eps"] >= broker["durability_off_eps"] * 0.5
