"""Figure 9 — throughput heatmap of the thematic matcher.

Paper: thematic throughput beats the 202 ev/s baseline on >92% of
sub-experiments (202-838, average 320 ev/s). Throughput decreases with
larger theme sets (less thematic filtering), dropping to ~95 ev/s at the
top-right; the back half of the diagonal is slow because equal tag sets
produce the most *common dimensions* for the distance computation.
"""

import pytest

from repro.evaluation import format_comparison, format_heatmap


def test_figure9_heatmap(benchmark, workload, baseline, grid, bench_artifact):
    benchmark.pedantic(
        lambda: grid.overall_mean("throughput"), rounds=1, iterations=1
    )

    mean_eps = grid.overall_mean("throughput")
    best = grid.best("throughput")
    fraction = grid.fraction_above(baseline.events_per_second, "throughput")

    sizes = sorted({key[0] for key in grid.cells})
    smallest, largest = sizes[0], sizes[-1]
    small_cell = grid.cell(smallest, smallest).mean_throughput
    large_cell = grid.cell(largest, largest).mean_throughput

    print()
    print("Figure 9 — thematic throughput (events/sec) per cell:")
    print(
        format_heatmap(
            grid,
            value="throughput",
            baseline=baseline.events_per_second,
            cell_format="{:>6.0f}",
        )
    )
    print()
    print(
        format_comparison(
            [
                (
                    "mean thematic vs baseline",
                    "320 vs 202 ev/s",
                    f"{mean_eps:.0f} vs {baseline.events_per_second:.0f} ev/s",
                ),
                ("best cell", "838 ev/s", f"{best.mean_throughput:.0f} ev/s"),
                ("cells above baseline", "> 92%", f"{fraction:.0%}"),
                (
                    "small themes vs large equal themes",
                    "faster vs 95-177 ev/s",
                    f"{small_cell:.0f} vs {large_cell:.0f} ev/s",
                ),
            ],
            title="Figure 9 shape",
        )
    )

    bench_artifact(
        "fig9_throughput",
        {
            "baseline": baseline.as_metrics(),
            "thematic": grid.as_metrics(),
            "cells_above_baseline": fraction,
            "smallest_equal_cell_eps": small_cell,
            "largest_equal_cell_eps": large_cell,
        },
    )

    # Shape assertions: theme size governs cost; the large-equal-themes
    # corner is the slow one.
    assert small_cell > large_cell, "bigger equal themes must be slower"
    assert mean_eps >= 0.6 * baseline.events_per_second
