"""Sharded broker vs single-worker threaded broker on the fig9 workload.

Not a paper figure: this bench guards the engineering claim of the
sharded broker — that subscription sharding + ingress micro-batching
through the delivery-gated staged pipeline beats the serial
one-event-at-a-time front-end *without changing a single delivery*.
Every timed run re-checks full delivery parity (sequence, event, score,
alternatives, per-subscriber order) against
:class:`~repro.broker.threaded.ThreadedBroker`; throughput without
identical deliveries would fail the run, not report a number.
"""

import pytest

from repro.evaluation import compare_broker_throughput, format_comparison

SHARDS = 4
MAX_BATCH = 32
REPEATS = 3


def test_sharded_throughput(benchmark, workload, bench_artifact):
    comparison = {}

    def run():
        comparison.update(
            compare_broker_throughput(
                workload, shards=SHARDS, max_batch=MAX_BATCH, repeats=REPEATS
            )
        )
        return comparison["events"] * 2 * REPEATS

    benchmark.pedantic(run, rounds=1, iterations=1)

    serial = comparison["serial"]
    sharded = comparison["sharded"]
    print()
    print(
        format_comparison(
            [
                (
                    "serial (ThreadedBroker)",
                    "baseline",
                    f"{serial['mean_eps']:.0f} ev/s",
                ),
                (
                    f"sharded ({SHARDS} shards, batch {MAX_BATCH})",
                    ">= 1.5x",
                    f"{sharded['mean_eps']:.0f} ev/s "
                    f"({comparison['speedup']:.2f}x)",
                ),
                (
                    "delivery parity",
                    "identical",
                    f"identical ({comparison['deliveries']} deliveries)",
                ),
            ],
            title="Sharded broker throughput",
        )
    )

    bench_artifact("sharded_throughput", comparison)

    assert comparison["parity"] is True
    # The committed baseline artifact demonstrates the full >= 1.5x at
    # fig9 scale on a quiet machine; in CI (noisy shared runners, tiny
    # scale) we assert the direction, not the full margin.
    assert comparison["speedup"] > 1.0, (
        f"sharded broker slower than serial: {comparison['speedup']:.2f}x"
    )
