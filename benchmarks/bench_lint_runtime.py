"""Wall-clock budget for the flow-aware lint tier.

Not a paper figure: this bench guards the cost of ``repro lint`` itself.
The RL6xx/RL7xx/RL8xx families build a CFG with def-use chains for
every function in the tree, so an accidentally quadratic checker (or a
fixpoint that stops converging early) shows up here as wall time long
before it becomes a CI-latency complaint. The committed baseline makes
the lint tier a gated perf surface like the matching kernels:
``repro bench diff --gate`` trips when a checker regresses the sweep.

The run is best-of-N to keep shared-runner noise out of the gated
number, and the bench doubles as a clean-tree assertion — a baseline
recorded against a tree with findings would gate on the wrong work.
"""

import statistics
from pathlib import Path

from repro.analysis.runner import run_lint
from repro.obs import write_bench_artifact
from repro.obs.clock import MONOTONIC_CLOCK

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Best-of-N sweeps: the gated number is the fastest full-tree run,
#: which tracks checker cost while shedding scheduler jitter.
ROUNDS = 3


def sweep():
    clock = MONOTONIC_CLOCK
    started = clock.monotonic()
    result = run_lint(REPO_ROOT)
    elapsed = clock.monotonic() - started
    return elapsed, result


def test_lint_runtime(benchmark):
    timings = []
    results = []

    def run():
        for _ in range(ROUNDS):
            elapsed, result = sweep()
            timings.append(elapsed)
            results.append(result)
        return len(timings)

    benchmark.pedantic(run, rounds=1, iterations=1)

    result = results[-1]
    best = min(timings)
    metrics = {
        "wall_seconds": best,
        "wall_seconds_mean": statistics.fmean(timings),
        "per_file_ms": (best / result.checked_files) * 1000.0
        if result.checked_files
        else 0.0,
        "rounds": {"count": ROUNDS},
        "tree": {
            "files": result.checked_files,
            "findings": len(result.findings),
            "stale": len(result.stale),
            "suppressed": len(result.suppressed),
        },
    }
    print()
    print(
        f"[lint] {result.checked_files} files in {best:.3f}s best-of-{ROUNDS} "
        f"(mean {metrics['wall_seconds_mean']:.3f}s, "
        f"{metrics['per_file_ms']:.2f} ms/file), "
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed"
    )

    write_bench_artifact("lint_runtime", metrics)

    # A perf number for a dirty tree would baseline the wrong work: the
    # zero-findings gate holds here exactly as it does in CI lint.
    assert not result.findings, [f.render() for f in result.findings]
    assert not result.stale, [f.render() for f in result.stale]
    assert result.checked_files > 50  # the whole tree, not a slice
