"""B0 — the headline comparison of Section 5.2.5 / 5.3.

Paper numbers (full scale):

* non-thematic baseline: 62% F1 at 202 events/sec;
* thematic: up to 85% F1 (average 71%), throughput average 320 ev/s
  (up to 838) — "around 15% improvement in accuracy and 150% in
  throughput" at the top end.

This bench runs the baseline and a sweet-spot thematic cell (event
theme ~4 tags ⊂ subscription theme ~12 tags, the middle-upper-left of
Figure 7) and asserts the *shape*: thematic F1 above baseline F1 and
thematic throughput at least comparable to the baseline's.
"""

import random

import pytest

from repro.evaluation import (
    ThemeCombination,
    format_comparison,
    run_sub_experiment,
    theme_pool,
    thematic_matcher_factory,
)


@pytest.fixture(scope="module")
def sweet_spot_cells(workload):
    """A handful of sweet-spot theme combinations (4 ⊂ 12 tags)."""
    pool = list(theme_pool(workload.thesaurus))
    rng = random.Random(99)
    combos = []
    for _ in range(3):
        subscription_tags = tuple(rng.sample(pool, 12))
        event_tags = tuple(rng.sample(subscription_tags, 4))
        combos.append(
            ThemeCombination(
                event_tags=event_tags, subscription_tags=subscription_tags
            )
        )
    return combos


def test_headline_accuracy_and_throughput(
    benchmark, workload, baseline, sweet_spot_cells, bench_artifact
):
    factory = thematic_matcher_factory(workload)
    results = [
        run_sub_experiment(workload, factory, combo)
        for combo in sweet_spot_cells[:-1]
    ]
    # The benchmark-timed sample is one full thematic sub-experiment.
    timed = benchmark.pedantic(
        lambda: run_sub_experiment(workload, factory, sweet_spot_cells[-1]),
        rounds=1,
        iterations=1,
    )
    results.append(timed)

    mean_f1 = sum(r.f1 for r in results) / len(results)
    best_f1 = max(r.f1 for r in results)
    mean_eps = sum(r.events_per_second for r in results) / len(results)

    print()
    print(
        format_comparison(
            [
                ("baseline F1", "62%", f"{baseline.f1:.1%}"),
                ("thematic F1 (sweet spot, mean)", "71%", f"{mean_f1:.1%}"),
                ("thematic F1 (best)", "85%", f"{best_f1:.1%}"),
                (
                    "baseline throughput",
                    "202 ev/s",
                    f"{baseline.events_per_second:.0f} ev/s",
                ),
                ("thematic throughput (mean)", "320 ev/s", f"{mean_eps:.0f} ev/s"),
            ],
            title="B0 headline (Section 5.2.5 / 5.3)",
        )
    )

    bench_artifact(
        "baseline_headline",
        {
            "baseline": baseline.as_metrics(),
            "thematic_samples": [r.as_metrics() for r in results],
            "thematic_mean_f1": mean_f1,
            "thematic_best_f1": best_f1,
            "thematic_mean_events_per_second": mean_eps,
        },
    )

    # Shape assertions: who wins.
    assert mean_f1 > baseline.f1, "thematic must beat the baseline on F1"
    assert best_f1 >= baseline.f1 + 0.03
    assert mean_eps >= 0.75 * baseline.events_per_second, (
        "thematic throughput must be at least comparable to baseline"
    )
