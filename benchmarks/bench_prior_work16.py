"""P16 — the prior-work comparison recapped in Section 5.

Paper (experiments inherited from [16], 50% degree of approximation):

* approximate matching delivers 94-97% F1 vs 89-92% for WordNet-style
  query rewriting;
* with *precomputed* esa scores the approximate matcher reaches ~91,000
  events/sec vs ~19,100 for rewriting (runtime-computed relatedness is
  the slow mode at ~202 ev/s).

The bench rebuilds that setting: 50%-approximated subscriptions, the
non-thematic matcher in runtime and precomputed modes, and the
knowledge-base-rewriting matcher in per-pair mode (the deployment style
the paper timed). The rewriting matcher runs against a **WordNet-like
view** of the thesaurus: no related-term links (WordNet has synsets, not
EuroVoc's RT links) and a fraction of domain-specific synonyms missing
(WordNet's coverage of technical IoT vocabulary is partial). Handing
rewriting the full expansion thesaurus would make it an oracle the real
WordNet comparator never was. Asserted shapes: approximate F1 >=
rewriting F1, and precomputed >> runtime throughput.
"""

import random

import pytest

from repro.baselines import NonThematicMatcher, RewritingMatcher
from repro.knowledge.thesaurus import Concept, MicroThesaurus, Thesaurus
from repro.core.matcher import ThematicMatcher
from repro.evaluation import (
    SubscriptionConfig,
    build_ground_truth,
    effectiveness,
    format_comparison,
    generate_subscriptions,
    measure_throughput,
)
from repro.semantics import PrecomputedMeasure, precompute_scores
from repro.semantics.measures import NonThematicMeasure


def wordnet_like_view(thesaurus: Thesaurus, *, drop: float = 0.18, seed: int = 5):
    """A degraded copy: every synonym survives with prob ``1 - drop``."""
    rng = random.Random(seed)
    micros = []
    for domain in thesaurus.domains():
        micro = thesaurus.micro(domain)
        concepts = tuple(
            Concept(
                concept.preferred,
                tuple(a for a in concept.alternatives if rng.random() >= drop),
                related=(),
            )
            for concept in micro.concepts
        )
        micros.append(
            MicroThesaurus(micro.name, micro.top_terms, concepts)
        )
    return Thesaurus(micros)


@pytest.fixture(scope="module")
def half_degree(workload):
    """50%-approximation subscription set plus its ground truth."""
    subs = generate_subscriptions(
        workload.seeds,
        SubscriptionConfig(
            count=min(16, workload.config.subscriptions.count),
            degree_of_approximation=0.5,
            seed=77,
        ),
    )
    truth = build_ground_truth(
        subs.approximate, workload.events, workload.canonicalizer
    )
    return subs, truth


def score_all(matcher, subs, events):
    return [[matcher.score(sub, event) for event in events] for sub in subs]


def test_prior_work_comparison(benchmark, workload, half_degree, bench_artifact):
    subs, truth = half_degree
    events = workload.events

    # -- effectiveness: approximate vs rewriting -----------------------------
    approximate = NonThematicMatcher(workload.space)
    approx_scores = score_all(approximate, subs.approximate, events)
    approx_f1 = effectiveness(approx_scores, truth.relevant_sets).max_f1

    rewriting = RewritingMatcher(wordnet_like_view(workload.thesaurus))
    rewrite_scores = score_all(rewriting, subs.approximate, events)
    rewriting_f1 = effectiveness(rewrite_scores, truth.relevant_sets).max_f1

    # -- throughput: runtime vs precomputed vs rewriting ---------------------
    sub_terms = [t for sub in subs.approximate for t in sub.terms()]
    event_terms = [t for event in events for t in event.terms()]
    table = precompute_scores(
        NonThematicMeasure(workload.space), sub_terms, event_terms
    )
    precomputed = ThematicMatcher(PrecomputedMeasure(table))

    runtime_cold = NonThematicMatcher(workload.space, cached=False)
    probe_subs = subs.approximate[:4]
    probe_events = events[: min(len(events), 200)]

    def run_matcher(matcher) -> int:
        for event in probe_events:
            for sub in probe_subs:
                matcher.score(sub, event)
        return len(probe_events)

    runtime_throughput = measure_throughput(lambda: run_matcher(runtime_cold))
    rewriting_throughput = measure_throughput(lambda: run_matcher(rewriting))
    precomputed_throughput = benchmark.pedantic(
        lambda: measure_throughput(lambda: run_matcher(precomputed)),
        rounds=1,
        iterations=1,
    )

    print()
    print(
        format_comparison(
            [
                ("approximate F1 (50% approx)", "94-97%", f"{approx_f1:.1%}"),
                ("rewriting F1 (50% approx)", "89-92%", f"{rewriting_f1:.1%}"),
                ("precomputed approx throughput", "~91,000 ev/s",
                 f"{precomputed_throughput.events_per_second:.0f} ev/s"),
                ("rewriting throughput", "~19,100 ev/s",
                 f"{rewriting_throughput.events_per_second:.0f} ev/s"),
                ("runtime approx throughput", "~202 ev/s",
                 f"{runtime_throughput.events_per_second:.0f} ev/s"),
            ],
            title="P16 prior-work comparison (Section 5)",
        )
    )

    bench_artifact(
        "prior_work16",
        {
            "approximate_f1": approx_f1,
            "rewriting_f1": rewriting_f1,
            "precomputed_events_per_second":
                precomputed_throughput.events_per_second,
            "rewriting_events_per_second":
                rewriting_throughput.events_per_second,
            "runtime_events_per_second": runtime_throughput.events_per_second,
        },
    )

    # Shapes: who wins.
    assert approx_f1 >= rewriting_f1 - 1e-9, (
        "approximate matching must not lose to rewriting on F1"
    )
    assert (
        precomputed_throughput.events_per_second
        > 2 * runtime_throughput.events_per_second
    ), "precomputed scores must be much faster than runtime relatedness"
