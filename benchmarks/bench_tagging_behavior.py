"""FW1 — realistic tagging behavior (paper Section 7 future work).

Section 5.3.3 argues containment between event and subscription themes
can either be *agreed* (loose coupling) or *assumed* in open scenarios
"due to the distribution of term usage by humans where some terms are
more probable to be used by both parties". This bench quantifies both
halves:

1. how fast F1 degrades as the containment assumption erodes (overlap
   1.0 -> 0.0 between event and subscription tag sets);
2. how much overlap two *independent* Zipfian taggers produce naturally,
   compared to uniform taggers — the paper's hypothesis.

No paper numbers exist (it is future work); the assertions pin the
qualitative expectations: graceful degradation with overlap, and
Zipf > uniform natural overlap.
"""

import random

import pytest

from repro.evaluation import (
    expected_overlap,
    format_table,
    run_sub_experiment,
    sample_free_combination,
    theme_pool,
    thematic_matcher_factory,
)


def test_overlap_degradation_and_zipf_overlap(
    benchmark, workload, baseline, bench_artifact
):
    pool = list(theme_pool(workload.thesaurus))
    factory = thematic_matcher_factory(workload)
    rng = random.Random(42)

    overlaps = (1.0, 0.5, 0.0)
    results = {}
    for overlap in overlaps[:-1]:
        combo = sample_free_combination(
            pool, 4, 12, rng, overlap=overlap
        )
        results[overlap] = run_sub_experiment(workload, factory, combo)
    zero_combo = sample_free_combination(pool, 4, 12, rng, overlap=0.0)
    results[0.0] = benchmark.pedantic(
        lambda: run_sub_experiment(workload, factory, zero_combo),
        rounds=1,
        iterations=1,
    )

    natural = {
        "uniform (s=0)": expected_overlap(pool, 4, 12, exponent=0.0),
        "zipf (s=1)": expected_overlap(pool, 4, 12, exponent=1.0),
        "zipf (s=1.5)": expected_overlap(pool, 4, 12, exponent=1.5),
    }

    print()
    print("F1 vs theme-set overlap (containment = 1.0):")
    print(
        format_table(
            ("overlap", "F1", "events/sec"),
            [
                (f"{overlap:.0%}", f"{r.f1:.1%}", f"{r.events_per_second:.0f}")
                for overlap, r in sorted(results.items(), reverse=True)
            ],
        )
    )
    print()
    print("natural overlap of two independent taggers (4 vs 12 tags, 48-tag pool):")
    print(
        format_table(
            ("tagging behavior", "expected overlap"),
            [(name, f"{value:.0%}") for name, value in natural.items()],
        )
    )

    bench_artifact(
        "tagging_behavior",
        {
            "baseline_f1": baseline.f1,
            "overlap_degradation": {
                f"{overlap:.0%}": result.as_metrics()
                for overlap, result in sorted(results.items(), reverse=True)
            },
            "natural_overlap": natural,
        },
    )

    # Qualitative assertions (Section 5.3.3 / Section 7).
    assert natural["zipf (s=1.5)"] > natural["uniform (s=0)"], (
        "shared human tag popularity must create overlap without agreement"
    )
    # Degradation is graceful: losing half the overlap must not collapse
    # matching to chance.
    assert results[0.5].f1 > 0.5 * results[1.0].f1
    for result in results.values():
        assert 0.0 < result.f1 <= 1.0
