"""Figure 10 — throughput sample error.

Paper: most cells sit near a ~10 ev/s standard error (small relative to
the 200-600 ev/s range); ~5% are outliers with 20-240 ev/s error,
explained by rare tag terms missing from the corpus that filter the
space completely and change the cost profile.
"""

import statistics

import pytest

from repro.evaluation import format_comparison, format_error_table


def test_figure10_error_profile(benchmark, workload, grid, bench_artifact):
    benchmark.pedantic(
        lambda: [c.throughput_error for c in grid.cells.values()],
        rounds=1,
        iterations=1,
    )

    cells = list(grid.cells.values())
    errors = [c.throughput_error for c in cells]
    means = [c.mean_throughput for c in cells]
    median_error = statistics.median(errors)
    relative = [
        error / mean for error, mean in zip(errors, means, strict=True) if mean > 0
    ]

    outliers = [e for e in errors if e > 3 * (median_error + 1e-9)]

    print()
    print("Figure 10 — per-cell throughput vs sample error:")
    print(format_error_table(grid, value="throughput"))
    print()
    print(
        format_comparison(
            [
                (
                    "typical sample error",
                    "~10 ev/s (small vs 200-600)",
                    f"median {median_error:.0f} ev/s "
                    f"({statistics.median(relative):.0%} of cell mean)",
                ),
                (
                    "outlier cells",
                    "~5% with much larger error",
                    f"{len(outliers)}/{len(errors)}",
                ),
            ],
            title="Figure 10 shape",
        )
    )

    bench_artifact(
        "fig10_throughput_error",
        {
            "median_throughput_error_eps": median_error,
            "median_relative_error": statistics.median(relative),
            "outlier_cells": len(outliers),
            "total_cells": len(errors),
            "cells": [
                {
                    "event_size": c.event_size,
                    "subscription_size": c.subscription_size,
                    "mean_events_per_second": c.mean_throughput,
                    "throughput_error": c.throughput_error,
                }
                for c in cells
            ],
        },
    )

    # Shape: the typical cell is predictable (small relative error).
    assert statistics.median(relative) <= 0.5
