"""Table 1 — the four approaches to semantic coupling, on one workload.

Paper's qualitative claims (Table 1):

* **content-based** (exact): effectiveness "100%" *under full term
  agreement*; on a heterogeneous workload without agreement its recall
  collapses — it only finds verbatim events. Efficiency: high.
* **concept-based** (query rewriting): Boolean semantic matching via a
  knowledge base; effectiveness depends on the concept models;
  efficiency medium-to-high (the cost moves into rewrite blow-up).
* **approximate (non-thematic)**: loose agreement on a corpus;
  effectiveness depends on the corpus.
* **thematic**: outperforms the non-thematic approximate approach.

The bench ranks all four matchers on the same heterogeneous workload.
"""

import random

import pytest

from repro.baselines import CountingIndex, ExactMatcher, RewritingMatcher
from repro.evaluation import (
    ThemeCombination,
    effectiveness,
    format_comparison,
    format_table,
    measure_throughput,
    run_baseline,
    run_sub_experiment,
    theme_pool,
    thematic_matcher_factory,
)


def ranking_f1(scores_per_sub, workload):
    return effectiveness(scores_per_sub, workload.ground_truth.relevant_sets).max_f1


@pytest.fixture(scope="module")
def sweet_spot(workload):
    pool = list(theme_pool(workload.thesaurus))
    rng = random.Random(99)
    subscription_tags = tuple(rng.sample(pool, 12))
    event_tags = tuple(rng.sample(subscription_tags, 4))
    return ThemeCombination(
        event_tags=event_tags, subscription_tags=subscription_tags
    )


def test_table1_four_approaches(
    benchmark, workload, baseline, sweet_spot, bench_artifact
):
    subs = workload.subscriptions.approximate
    events = workload.events

    # -- content-based exact ------------------------------------------------
    exact = ExactMatcher()
    index = CountingIndex()
    id_to_sub = {}
    for i, sub in enumerate(subs):
        id_to_sub[index.add(sub)] = i

    def exact_pass() -> int:
        for event in events:
            index.match(event)
        return len(events)

    exact_throughput = measure_throughput(exact_pass)
    exact_scores = [[0.0] * len(events) for _ in subs]
    for j, event in enumerate(events):
        for sub_id in index.match(event):
            exact_scores[id_to_sub[sub_id]][j] = 1.0
    exact_f1 = ranking_f1(exact_scores, workload)

    # -- concept-based rewriting --------------------------------------------
    rewriting = RewritingMatcher(workload.thesaurus)
    rewrite_index = CountingIndex()
    rewrite_owner = {}
    for i, sub in enumerate(subs):
        for rewrite in rewriting.rewrites(sub):
            rewrite_owner[rewrite_index.add(rewrite)] = i
    total_rewrites = len(rewrite_index)

    def rewriting_pass() -> int:
        for event in events:
            rewrite_index.match(event)
        return len(events)

    rewriting_throughput = measure_throughput(rewriting_pass)
    rewriting_scores = [[0.0] * len(events) for _ in subs]
    for j, event in enumerate(events):
        for rid in rewrite_index.match(event):
            rewriting_scores[rewrite_owner[rid]][j] = 1.0
    rewriting_f1 = ranking_f1(rewriting_scores, workload)

    # -- approximate, thematic (timed by the benchmark fixture) -------------
    thematic = benchmark.pedantic(
        lambda: run_sub_experiment(
            workload, thematic_matcher_factory(workload), sweet_spot
        ),
        rounds=1,
        iterations=1,
    )

    print()
    print(
        format_table(
            ("approach", "F1", "events/sec", "note"),
            [
                ("content-based exact", f"{exact_f1:.1%}",
                 f"{exact_throughput.events_per_second:.0f}",
                 "verbatim events only"),
                ("concept-based rewriting", f"{rewriting_f1:.1%}",
                 f"{rewriting_throughput.events_per_second:.0f}",
                 f"{total_rewrites} rewritten subscriptions"),
                ("approximate non-thematic", f"{baseline.f1:.1%}",
                 f"{baseline.events_per_second:.0f}", "prior work [16]"),
                ("thematic (this paper)", f"{thematic.f1:.1%}",
                 f"{thematic.events_per_second:.0f}",
                 f"themes {len(sweet_spot.event_tags)}⊂"
                 f"{len(sweet_spot.subscription_tags)}"),
            ],
        )
    )
    print()
    print(
        format_comparison(
            [
                ("thematic vs non-thematic F1", "wins",
                 "wins" if thematic.f1 > baseline.f1 else "LOSES"),
                ("rewriting blow-up", "94 subs ~ 48,000 rules",
                 f"{len(subs)} subs -> {total_rewrites} rules"),
            ],
            title="Table 1 shape",
        )
    )

    bench_artifact(
        "table1_approaches",
        {
            "content_based": {
                "f1": exact_f1,
                "events_per_second": exact_throughput.events_per_second,
            },
            "concept_based_rewriting": {
                "f1": rewriting_f1,
                "events_per_second": rewriting_throughput.events_per_second,
                "rewritten_subscriptions": total_rewrites,
            },
            "approximate_nonthematic": baseline.as_metrics(),
            "thematic": thematic.as_metrics(),
        },
    )

    # Shape assertions.
    assert exact_f1 < baseline.f1, "exact matching must lose recall"
    assert thematic.f1 > baseline.f1
    assert total_rewrites > 10 * len(subs), "rewriting must blow up"
    # Semantic approaches beat exact on heterogeneous data.
    assert rewriting_f1 > exact_f1
