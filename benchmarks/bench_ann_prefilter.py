"""Sublinear matching tier: ANN anchor recall curve + warmed score store.

Not a paper figure: this bench guards the two engineering claims of the
sublinear matching tier on the fig9 workload.

* The LSH anchor mode trades recall for anchor-phase work along its
  knob: delivered-match recall against ``prefilter_mode="semantic"`` is
  measured at several ``ann_recall_target`` points, must be monotone in
  the knob, and must be *exactly* 1.0 (bit-identical deliveries, scores
  included) at the loss-free default — an approximation whose exact
  setting was not exact would be a correctness bug, not a slow bench.
* A ``repro warm-cache`` score store moves the semantic computation
  offline: a cold engine backed by the warmed store must beat the same
  cold engine computing through the kernel by >= 2x, and every timed
  run re-checks full delivery parity (subscription, event, score) —
  a speedup that changed one delivery would fail the run, not report
  a number.
"""

import os
import random
import tempfile
from pathlib import Path

from repro.core.engine import EngineConfig, ThematicEventEngine
from repro.evaluation import format_comparison
from repro.evaluation.brokers import sample_combination
from repro.evaluation.harness import thematic_matcher_factory
from repro.obs.clock import MONOTONIC_CLOCK
from repro.semantics.cache import PersistentScoreStore
from repro.semantics.persistence import corpus_digest, save_score_store
from repro.semantics.pvsm import ParametricVectorSpace
from repro.semantics.warm import plan_lookups, warm_score_table, workload_vocabulary

SCALE = os.environ.get("REPRO_SCALE", "small")

#: Events pushed through every engine variant. The stream must be long
#: enough that the anchor phase and the score tier dominate timing.
EVENT_BUDGET = {"tiny": 60, "small": 200, "paper": 760}.get(SCALE, 200)

#: The knob sweep: three lossy points plus the loss-free default.
RECALL_TARGETS = (0.25, 0.5, 0.75, 1.0)

def theme_varied_events(workload, combination, budget):
    """The event stream with per-event theme subsets (fig9 churn).

    Every event samples its own theme set from the subscription tags
    (containment holds, like the grid harness), so consecutive events
    keep presenting *new* (subscription-theme, event-theme) pairs — the
    regime where the online kernel pays fresh projections per event and
    the side-score dedup tables cannot amortize them away. That
    recurring cost is exactly what the offline warm tier removes.
    """
    rng = random.Random(17)
    pool = list(combination.subscription_tags)
    size = min(len(combination.event_tags), len(pool))
    return [
        event.with_theme(tuple(rng.sample(pool, size)))
        for event in workload.events[:budget]
    ]


def delivered(engine, events):
    """Timed pass: delivered (sub, event, score, mapping) signatures.

    Returns the per-event delivery signature list (for parity and
    recall accounting) and the wall-clock events/second of the pass.
    """
    signatures = []
    started = MONOTONIC_CLOCK.monotonic()
    for index, event in enumerate(events):
        for result in engine.process(event):
            signatures.append(
                (
                    id(result.subscription),
                    index,
                    result.score,
                    result.mapping.correspondences,
                )
            )
    elapsed = MONOTONIC_CLOCK.monotonic() - started
    return signatures, (len(events) / elapsed if elapsed else 0.0)


def engine_for(matcher_factory, subscriptions, **config):
    engine = ThematicEventEngine(matcher_factory(), EngineConfig(**config))
    for subscription in subscriptions:
        engine.subscribe(subscription, lambda result: None)
    return engine


def bench_recall_curve(matcher_factory, subscriptions, events):
    """Sweep ``ann_recall_target``; reference is the exact-scan mode."""
    reference, reference_eps = delivered(
        engine_for(matcher_factory, subscriptions, prefilter_mode="semantic"),
        events,
    )
    reference_pairs = {sig[:2] for sig in reference}
    points = []
    for target in RECALL_TARGETS:
        signatures, eps = delivered(
            engine_for(
                matcher_factory,
                subscriptions,
                prefilter_mode="ann",
                ann_recall_target=target,
            ),
            events,
        )
        pairs = {sig[:2] for sig in signatures}
        assert pairs <= reference_pairs, (
            f"ann target {target} invented matches: {pairs - reference_pairs}"
        )
        points.append(
            {
                "ann_recall_target": target,
                "measured_recall": (
                    len(pairs & reference_pairs) / len(reference_pairs)
                    if reference_pairs
                    else 1.0
                ),
                "events_per_second": eps,
                "deliveries": len(signatures),
                "exact_deliveries": signatures == reference,
            }
        )
    return reference, reference_eps, points


def bench_warm_tier(workload, subscriptions, events, combination):
    """Cold kernel engine vs the same engine over a warmed score store.

    The store is built on a *separate* space over the same corpus so
    warming it cannot pre-populate the projection caches the unwarmed
    engine is about to pay for — that cost is exactly what the offline
    tier claims to remove. Lookups are planned per event (its terms
    against the subscription vocabulary under its own theme pair), the
    tight version of the warmer's full vocabulary cross-product.
    """
    warm_space = ParametricVectorSpace(workload.corpus)
    subscription_theme = tuple(sorted(combination.subscription_tags))
    sub_terms, _ = workload_vocabulary(subscriptions, [])
    planned = {}
    for event in events:
        _, event_terms = workload_vocabulary([], [event])
        theme_pair = (subscription_theme, tuple(sorted(event.theme)))
        for lookup in plan_lookups(sub_terms, event_terms, [theme_pair]):
            planned[lookup] = None
    table = warm_score_table(warm_space, list(planned))
    store = PersistentScoreStore.from_table(
        table, corpus_digest=corpus_digest(warm_space.documents)
    )
    matcher_factory = thematic_matcher_factory(workload, vectorized=True)
    with tempfile.TemporaryDirectory(prefix="repro-bench-warm-") as directory:
        path = Path(directory) / "scores.bin"
        save_score_store(store, path)

        unwarmed, unwarmed_eps = delivered(
            engine_for(matcher_factory, subscriptions), events
        )
        warmed_engine = engine_for(
            matcher_factory,
            subscriptions,
            score_store_path=str(path),
            warm_on_start=True,
        )
        warmed, warmed_eps = delivered(warmed_engine, events)

    assert warmed == unwarmed, (
        "warmed store changed deliveries: "
        f"{len(warmed)} vs {len(unwarmed)} results"
    )
    counters = warmed_engine.stats.registry.snapshot()["counters"]
    assert counters.get("score_store.hits", 0) > 0, "store never consulted"
    return {
        "store_entries": len(store),
        "unwarmed_events_per_second": unwarmed_eps,
        "warmed_events_per_second": warmed_eps,
        "speedup": warmed_eps / unwarmed_eps if unwarmed_eps else 0.0,
        "parity": warmed == unwarmed,
        "deliveries": len(warmed),
        "store_hits": counters.get("score_store.hits", 0),
    }


def test_ann_prefilter(benchmark, workload, bench_artifact):
    combination = sample_combination(workload, seed=99)
    events = theme_varied_events(workload, combination, EVENT_BUDGET)
    subscriptions = [
        subscription.with_theme(combination.subscription_tags)
        for subscription in workload.subscriptions.approximate
    ]
    matcher_factory = thematic_matcher_factory(workload)
    metrics = {}

    def run():
        reference, reference_eps, points = bench_recall_curve(
            matcher_factory, subscriptions, events
        )
        assert reference, "reference run delivered nothing to recall against"
        metrics["semantic_reference"] = {
            "events_per_second": reference_eps,
            "deliveries": len(reference),
        }
        metrics["recall_curve"] = points
        metrics["recall_at_full_target"] = points[-1]["measured_recall"]
        metrics["warm_tier"] = bench_warm_tier(
            workload, subscriptions, events, combination
        )
        return len(events)

    benchmark.pedantic(run, rounds=1, iterations=1)

    points = metrics["recall_curve"]
    warm = metrics["warm_tier"]
    print()
    print(
        format_comparison(
            [
                (
                    "semantic anchors (exact scan)",
                    "reference",
                    f"{metrics['semantic_reference']['events_per_second']:.0f}"
                    " ev/s",
                ),
                *[
                    (
                        f"ann target {point['ann_recall_target']:.2f}",
                        "recall <= target neighborhood",
                        f"recall {point['measured_recall']:.2f} at "
                        f"{point['events_per_second']:.0f} ev/s",
                    )
                    for point in points
                ],
                (
                    "warmed store vs cold kernel",
                    ">= 2x, identical deliveries",
                    f"{warm['speedup']:.2f}x "
                    f"({warm['warmed_events_per_second']:.0f} vs "
                    f"{warm['unwarmed_events_per_second']:.0f} ev/s)",
                ),
            ],
            title="Sublinear matching tier",
        )
    )

    bench_artifact("ann_prefilter", metrics)

    # The loss-free default must be *exactly* the semantic mode — same
    # deliveries, same scores — not merely recall ~1.
    assert points[-1]["ann_recall_target"] == 1.0
    assert points[-1]["measured_recall"] == 1.0
    assert points[-1]["exact_deliveries"] is True
    # Recall is monotone in the knob (probed bands are a prefix).
    recalls = [point["measured_recall"] for point in points]
    assert recalls == sorted(recalls), f"recall not monotone: {recalls}"
    # Parity is asserted inside the timed run; here we gate the margin.
    # The committed baseline demonstrates the full >= 2x on a quiet
    # machine; in CI (noisy shared runners) we assert a real win, not
    # the full margin.
    assert warm["parity"] is True
    assert warm["speedup"] > 1.2, (
        f"warmed store barely helps: {warm['speedup']:.2f}x"
    )
