"""Ablation — top-k vs top-1 matching.

Section 3.5 (citing [13]): "producing the top-k mappings increases the
chance of hitting the correct mapping". The bench measures exactly that:
for every (subscription, ground-truth-relevant event) pair, does any of
the top-k mappings assign *every* predicate to a thesaurus-compatible
tuple? Hit rate must be non-decreasing in k; the bench also reports the
latency cost of larger k.
"""

import time

import pytest

from repro.evaluation import format_table, thematic_matcher_factory
from repro.evaluation.groundtruth import _predicate_compatible


def correct_mapping_in_topk(result, canonicalizer) -> bool:
    subscription = result.subscription
    event = result.event
    for mapping in result.mappings():
        ok = True
        for corr in mapping.correspondences:
            predicate = subscription.predicates[corr.predicate_index]
            av = event.payload[corr.tuple_index]
            if not _predicate_compatible(
                predicate, av.attribute, av.value, canonicalizer
            ):
                ok = False
                break
        if ok:
            return True
    return False


@pytest.fixture(scope="module")
def relevant_pairs(workload):
    pairs = []
    for sub_index, relevant in enumerate(workload.ground_truth.relevant_sets):
        sub = workload.subscriptions.approximate[sub_index]
        for event_index in sorted(relevant)[:6]:
            pairs.append((sub, workload.events[event_index]))
    return pairs[:120]


def test_topk_hit_rate(benchmark, workload, relevant_pairs, bench_artifact):
    rows = []
    hit_rates = {}
    speeds = {}
    for k in (1, 3, 5):
        factory = thematic_matcher_factory(workload, k=k)
        matcher = factory()
        start = time.perf_counter()
        hits = 0
        for sub, event in relevant_pairs:
            result = matcher.match(sub, event)
            if result is not None and correct_mapping_in_topk(
                result, workload.canonicalizer
            ):
                hits += 1
        elapsed = time.perf_counter() - start
        hit_rates[k] = hits / len(relevant_pairs)
        speeds[k] = len(relevant_pairs) / elapsed
        rows.append(
            (
                f"top-{k}",
                f"{hit_rates[k]:.1%}",
                f"{speeds[k]:.0f} pairs/sec",
            )
        )

    # Timed sample: one top-5 matching pass over the pairs.
    matcher5 = thematic_matcher_factory(workload, k=5)()
    benchmark.pedantic(
        lambda: [matcher5.match(sub, event) for sub, event in relevant_pairs],
        rounds=1,
        iterations=1,
    )

    print()
    print(format_table(("mode", "correct-mapping hit rate", "speed"), rows))

    bench_artifact(
        "ablation_topk",
        {
            "modes": {
                f"top-{k}": {
                    "correct_mapping_hit_rate": hit_rates[k],
                    "pairs_per_second": speeds[k],
                }
                for k in hit_rates
            },
            "pairs": len(relevant_pairs),
        },
    )

    # [13]'s claim: hit rate is non-decreasing in k.
    assert hit_rates[1] <= hit_rates[3] + 1e-9 <= hit_rates[5] + 2e-9
    assert hit_rates[5] > 0.5, "top-5 should usually contain the correct mapping"
