"""Ablation — the design choices inside the parametric space.

DESIGN.md calls out three choices worth ablating:

1. Algorithm 1 recomputes idf over the thematic basis; the naive
   alternative just masks out-of-basis components of the full-space
   vector.
2. Distance: Euclidean (Equations 5-6) vs cosine.
3. Sub-space composition for the distance step: common dimensions
   (default) vs each side in its own sub-space ("own").

Each variant runs the same sweet-spot sub-experiment; the bench reports
the F1 deltas. No paper numbers exist for these (they are our
implementation decisions), so the assertions only require sane output
and that the shipped default is not dominated.
"""

import random

import pytest

from repro.core.matcher import ThematicMatcher
from repro.evaluation import (
    ThemeCombination,
    format_table,
    run_sub_experiment,
    theme_pool,
)
from repro.semantics import (
    CachedMeasure,
    ParametricVectorSpace,
    RelatednessCache,
    ThematicMeasure,
)


@pytest.fixture(scope="module")
def sweet_spot(workload):
    pool = list(theme_pool(workload.thesaurus))
    rng = random.Random(99)
    subscription_tags = tuple(rng.sample(pool, 12))
    event_tags = tuple(rng.sample(subscription_tags, 4))
    return ThemeCombination(
        event_tags=event_tags, subscription_tags=subscription_tags
    )


def variant_factory(space, mode="common"):
    def factory():
        return ThematicMatcher(
            CachedMeasure(ThematicMeasure(space, mode=mode), RelatednessCache())
        )

    return factory


def test_projection_ablation(benchmark, workload, sweet_spot, bench_artifact):
    corpus = workload.corpus
    variants = {
        "default (Algorithm 1, euclid, common)": (
            workload.space, "common",
        ),
        "naive masking (no idf recompute)": (
            ParametricVectorSpace(corpus, recompute_idf=False), "common",
        ),
        "cosine distance": (
            ParametricVectorSpace(corpus, metric="cosine"), "common",
        ),
        "own sub-spaces (literal per-side)": (
            workload.space, "own",
        ),
    }

    results = {}
    names = list(variants)
    for name in names[:-1]:
        space, mode = variants[name]
        results[name] = run_sub_experiment(
            workload, variant_factory(space, mode), sweet_spot
        )
    last = names[-1]
    space, mode = variants[last]
    results[last] = benchmark.pedantic(
        lambda: run_sub_experiment(workload, variant_factory(space, mode), sweet_spot),
        rounds=1,
        iterations=1,
    )

    default_f1 = results[names[0]].f1
    print()
    print(
        format_table(
            ("variant", "F1", "delta vs default", "events/sec"),
            [
                (
                    name,
                    f"{result.f1:.1%}",
                    f"{result.f1 - default_f1:+.1%}",
                    f"{result.events_per_second:.0f}",
                )
                for name, result in results.items()
            ],
        )
    )

    bench_artifact(
        "ablation_projection",
        {
            "variants": {
                name: result.as_metrics() for name, result in results.items()
            },
            "default_f1": default_f1,
        },
    )

    for result in results.values():
        assert 0.0 < result.f1 <= 1.0
    # The shipped default must not be dominated by every ablation.
    assert any(default_f1 >= r.f1 - 0.02 for name, r in results.items()
               if name != names[0])
