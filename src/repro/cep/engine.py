"""Complex event processing over uncertain single-event matches.

The engine consumes raw events, matches each against the subscriptions
of every registered pattern's steps (through the pluggable approximate
matcher — this is where the thematic model's top-k probabilistic output
feeds CEP, Section 6.2), advances partial pattern instances, and emits
:class:`ComplexEvent` notifications whose probability is the
[26]-style conjunction of the constituent match probabilities.

Windows are logical: ``Pattern.within`` bounds how many engine-observed
events the whole sequence may span, which is the natural notion of time
for instantaneous, totally-ordered events.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.cep.patterns import Pattern, Step
from repro.cep.uncertainty import conjunction
from repro.core.events import Event
from repro.core.matcher import MatchResult, ThematicMatcher

__all__ = ["ComplexEvent", "PatternHandle", "CEPEngine"]


@dataclass(frozen=True)
class ComplexEvent:
    """A completed pattern instance."""

    pattern: Pattern
    bindings: dict[str, MatchResult]
    probability: float
    first_sequence: int
    last_sequence: int

    def binding(self, name: str) -> MatchResult:
        return self.bindings[name]


@dataclass
class _Partial:
    next_step: int
    bindings: dict[str, MatchResult]
    first_sequence: int


@dataclass
class PatternHandle:
    """A registered pattern with its callback and live partial instances."""

    pattern_id: int
    pattern: Pattern
    callback: Callable[[ComplexEvent], None] | None = None
    partials: list[_Partial] = field(default_factory=list)
    emitted: int = 0


class CEPEngine:
    """Pattern detection over a stream of (uncertain) events."""

    def __init__(self, matcher: ThematicMatcher):
        self.matcher = matcher
        self._patterns: dict[int, PatternHandle] = {}
        self._next_id = 0
        self._sequence = 0

    def register(
        self,
        pattern: Pattern,
        callback: Callable[[ComplexEvent], None] | None = None,
    ) -> PatternHandle:
        handle = PatternHandle(self._next_id, pattern, callback)
        self._patterns[self._next_id] = handle
        self._next_id += 1
        return handle

    def unregister(self, handle: PatternHandle) -> bool:
        return self._patterns.pop(handle.pattern_id, None) is not None

    def pattern_count(self) -> int:
        return len(self._patterns)

    # -- stream ingestion ---------------------------------------------------

    def _step_match(self, step: Step, event: Event) -> MatchResult | None:
        result = self.matcher.match(step.subscription, event)
        if result is None or not result.is_match(self.matcher.threshold):
            return None
        if not all(value_filter.matches(event) for value_filter in step.filters):
            return None
        return result

    def feed(self, event: Event) -> list[ComplexEvent]:
        """Advance every pattern with one event; returns completions."""
        sequence = self._sequence
        self._sequence += 1
        completions: list[ComplexEvent] = []
        for handle in self._patterns.values():
            completions.extend(self._advance(handle, event, sequence))
        return completions

    def _advance(
        self, handle: PatternHandle, event: Event, sequence: int
    ) -> list[ComplexEvent]:
        pattern = handle.pattern
        # Expire partials whose window has closed.
        if pattern.within is not None:
            handle.partials = [
                partial
                for partial in handle.partials
                if sequence - partial.first_sequence <= pattern.within
            ]
        completions: list[ComplexEvent] = []
        survivors: list[_Partial] = []
        # Existing partials first (advance at most one step per event).
        for partial in handle.partials:
            outcome = self._advance_partial(pattern, partial, event, sequence)
            if outcome == "killed":
                continue
            if isinstance(outcome, _Partial):
                survivors.append(outcome)
                continue
            # outcome is a completed bindings dict
            complex_event = self._complete(
                pattern, outcome, partial.first_sequence, sequence
            )
            if complex_event is not None:
                completions.append(complex_event)
                handle.emitted += 1
        # 'every' semantics: each event may open a fresh instance.
        first = pattern.steps[0]  # never negated (validated)
        result = self._step_match(first, event)
        if result is not None:
            bindings = {first.name: result}
            if len(pattern.positive_steps()) == 1:
                complex_event = self._complete(pattern, bindings, sequence, sequence)
                if complex_event is not None:
                    completions.append(complex_event)
                    handle.emitted += 1
            else:
                survivors.append(
                    _Partial(next_step=1, bindings=bindings, first_sequence=sequence)
                )
        handle.partials = survivors
        if handle.callback is not None:
            for complex_event in completions:
                handle.callback(complex_event)
        return completions

    def _advance_partial(
        self, pattern: Pattern, partial: _Partial, event: Event, sequence: int
    ):
        """One event against one waiting instance.

        Returns ``"killed"`` (a negated guard fired), a new
        :class:`_Partial` (waiting continues or advanced mid-pattern), or
        a completed bindings dict.
        """
        index = partial.next_step
        # Guards between the consumed prefix and the next positive step.
        guards = []
        while pattern.steps[index].negated:
            guards.append(pattern.steps[index])
            index += 1
        for guard in guards:
            if self._step_match(guard, event) is not None:
                return "killed"
        positive = pattern.steps[index]
        result = self._step_match(positive, event)
        if result is None:
            return partial
        bindings = dict(partial.bindings)
        bindings[positive.name] = result
        if index + 1 >= len(pattern.steps):
            return bindings
        return _Partial(
            next_step=index + 1,
            bindings=bindings,
            first_sequence=partial.first_sequence,
        )

    @staticmethod
    def _complete(
        pattern: Pattern,
        bindings: dict[str, MatchResult],
        first_sequence: int,
        last_sequence: int,
    ) -> ComplexEvent | None:
        probability = conjunction(
            result.probability for result in bindings.values()
        )
        if probability < pattern.min_probability:
            return None
        return ComplexEvent(
            pattern=pattern,
            bindings=bindings,
            probability=probability,
            first_sequence=first_sequence,
            last_sequence=last_sequence,
        )
