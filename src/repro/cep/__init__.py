"""Complex event processing over uncertain thematic matches."""

from repro.cep.engine import CEPEngine, ComplexEvent, PatternHandle
from repro.cep.patterns import Pattern, Step, parse_pattern
from repro.cep.predicates import (
    Between,
    Custom,
    Eq,
    Filter,
    Ge,
    Gt,
    Le,
    Lt,
    Ne,
    OneOf,
)
from repro.cep.uncertainty import at_least, conjunction, disjunction, negation

__all__ = [
    "Between",
    "CEPEngine",
    "ComplexEvent",
    "Custom",
    "Eq",
    "Filter",
    "Ge",
    "Gt",
    "Le",
    "Lt",
    "Ne",
    "OneOf",
    "Pattern",
    "PatternHandle",
    "Step",
    "at_least",
    "conjunction",
    "disjunction",
    "negation",
    "parse_pattern",
]
