"""Pattern AST and mini-language for complex event detection.

The motivating scenario (Section 2.1) is an Esper EPL rule::

    pattern [ every a=StreetLightsEvents(a.type= 'energy consumption event'
              and a.area.consumptionPeak='true')]

The CEP layer provides the equivalent: a pattern is a sequence of named
*steps*, each selecting events with a thematic subscription (semantic
part) plus optional value filters (:mod:`repro.cep.predicates`), with an
optional ``within`` horizon bounding how many events the whole sequence
may span. A single-step pattern is Esper's ``every``.

A small text syntax mirrors the paper's examples::

    every a = ({energy}, {type= energy consumption event~, area= town~})
    every a = ({power}, {type= surge event~}) -> b = ({power}, {type= outage event~}) within 50
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.cep.predicates import Filter
from repro.core.language import ParseError, parse_subscription
from repro.core.subscriptions import Subscription

__all__ = ["Step", "Pattern", "parse_pattern"]


@dataclass(frozen=True)
class Step:
    """One named stage of a pattern.

    A ``negated`` step is a *guard*: the pattern instance is killed if an
    event matching it arrives while the instance waits for the next
    positive step ("A then C with no B in between" — the classic absence
    pattern). Negated steps bind no event and cannot be first or last.
    """

    name: str
    subscription: Subscription
    filters: tuple[Filter, ...] = ()
    negated: bool = False

    def __post_init__(self) -> None:
        if not re.fullmatch(r"[a-zA-Z_]\w*", self.name):
            raise ValueError(f"bad step name {self.name!r}")


@dataclass(frozen=True)
class Pattern:
    """A sequence of steps, optionally bounded by a ``within`` horizon.

    ``within`` counts *events seen by the engine* between the first and
    the last step's match (a logical-time window: the model's events are
    instantaneous and totally ordered by arrival). ``min_probability``
    discards complex events whose combined probability ([26]-style
    conjunction of constituent match probabilities) is too low.
    """

    steps: tuple[Step, ...]
    within: int | None = None
    min_probability: float = 0.0

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a pattern needs at least one step")
        names = [step.name for step in self.steps]
        if len(set(names)) != len(names):
            raise ValueError("step names must be unique")
        if self.steps[0].negated or self.steps[-1].negated:
            raise ValueError("negated steps cannot open or close a pattern")
        positive = self.positive_steps()
        if self.within is not None and self.within < len(positive) - 1:
            raise ValueError("within horizon too small for the step count")

    def positive_steps(self) -> tuple[Step, ...]:
        return tuple(step for step in self.steps if not step.negated)

    @classmethod
    def every(cls, name: str, subscription: Subscription, *filters: Filter) -> "Pattern":
        """Esper's ``every``: a single-step pattern."""
        return cls(steps=(Step(name, subscription, tuple(filters)),))


_STEP_RE = re.compile(r"^\s*(?P<name>[a-zA-Z_]\w*)\s*=\s*(?P<body>.+?)\s*$", re.DOTALL)
_WITHIN_RE = re.compile(r"^(?P<body>.*?)\s+within\s+(?P<horizon>\d+)\s*$", re.DOTALL)


def parse_pattern(text: str) -> Pattern:
    """Parse the mini-language described in the module docstring.

    Filters are not expressible in text (they are code-level objects);
    build the :class:`Pattern` programmatically when you need them.
    """
    body = text.strip()
    if not body.startswith("every"):
        raise ParseError("a pattern must start with 'every'")
    body = body[len("every"):].strip()
    within: int | None = None
    within_match = _WITHIN_RE.match(body)
    if within_match:
        within = int(within_match.group("horizon"))
        body = within_match.group("body")
    steps = []
    for part in body.split("->"):
        step_match = _STEP_RE.match(part)
        if not step_match:
            raise ParseError(f"bad pattern step: {part!r}")
        steps.append(
            Step(
                name=step_match.group("name"),
                subscription=parse_subscription(step_match.group("body")),
            )
        )
    return Pattern(steps=tuple(steps), within=within)
