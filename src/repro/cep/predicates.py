"""Value filters for CEP patterns.

The subscription language of Section 3.4 deliberately supports only
(approximate) equality; numeric and Boolean operators "are kept out of
the language for the sake of discourse simplicity". Real deployments
still need them — the motivating Esper rule filters on
``a.area.consumptionPeak = 'true'`` — so the CEP layer reintroduces them
*above* the semantic matcher: a pattern combines a thematic
subscription (semantic selection) with these filters (value logic).
"""

from __future__ import annotations

from collections.abc import Callable, Container
from dataclasses import dataclass

from repro.core.events import Event, Value
from repro.semantics.tokenize import normalize_term

__all__ = ["Filter", "Eq", "Ne", "Gt", "Ge", "Lt", "Le", "Between", "OneOf", "Custom"]


@dataclass(frozen=True)
class Filter:
    """Base: a named attribute plus a test on its value."""

    attribute: str

    def test(self, value: Value) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def matches(self, event: Event) -> bool:
        value = event.value(self.attribute)
        if value is None:
            return False
        return self.test(value)


def _as_number(value: Value) -> float | None:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(str(value))
    except ValueError:
        return None


@dataclass(frozen=True)
class Eq(Filter):
    expected: Value = ""

    def test(self, value: Value) -> bool:
        if isinstance(value, str) and isinstance(self.expected, str):
            return normalize_term(value) == normalize_term(self.expected)
        return value == self.expected


@dataclass(frozen=True)
class Ne(Eq):
    def test(self, value: Value) -> bool:
        return not super().test(value)


@dataclass(frozen=True)
class _Numeric(Filter):
    bound: float = 0.0

    def compare(self, number: float) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def test(self, value: Value) -> bool:
        number = _as_number(value)
        return number is not None and self.compare(number)


@dataclass(frozen=True)
class Gt(_Numeric):
    def compare(self, number: float) -> bool:
        return number > self.bound


@dataclass(frozen=True)
class Ge(_Numeric):
    def compare(self, number: float) -> bool:
        return number >= self.bound


@dataclass(frozen=True)
class Lt(_Numeric):
    def compare(self, number: float) -> bool:
        return number < self.bound


@dataclass(frozen=True)
class Le(_Numeric):
    def compare(self, number: float) -> bool:
        return number <= self.bound


@dataclass(frozen=True)
class Between(Filter):
    low: float = 0.0
    high: float = 0.0

    def test(self, value: Value) -> bool:
        number = _as_number(value)
        return number is not None and self.low <= number <= self.high


@dataclass(frozen=True)
class OneOf(Filter):
    choices: Container[Value] = ()

    def test(self, value: Value) -> bool:
        if isinstance(value, str):
            normalized = normalize_term(value)
            return any(
                isinstance(c, str) and normalize_term(c) == normalized
                for c in self.choices  # type: ignore[union-attr]
            ) or value in self.choices
        return value in self.choices


@dataclass(frozen=True)
class Custom(Filter):
    """Escape hatch: any callable on the raw value."""

    predicate: Callable[[Value], bool] = lambda value: True

    def test(self, value: Value) -> bool:
        return self.predicate(value)
