"""Probability combination for complex events over uncertain matches.

Single-event matching in the thematic model is uncertain — every match
carries a probability (Section 3.5) — and the paper positions it as the
input of a complex event processing stage ([26], Section 6.2: "Single
event matching in our model can feed into a complex event processing
module"). This module provides the standard combinators a CEP engine
needs over such probabilistic inputs, under the usual independence
assumption of [26].
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = ["conjunction", "disjunction", "negation", "at_least"]


def _validate(probabilities: Iterable[float]) -> list[float]:
    values = list(probabilities)
    for p in values:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability out of range: {p}")
    return values


def conjunction(probabilities: Iterable[float]) -> float:
    """P(all constituents occurred), independent: the product."""
    result = 1.0
    for p in _validate(probabilities):
        result *= p
    return result


def disjunction(probabilities: Iterable[float]) -> float:
    """P(at least one occurred), independent: noisy-or."""
    result = 1.0
    for p in _validate(probabilities):
        result *= 1.0 - p
    return 1.0 - result


def negation(probability: float) -> float:
    """P(constituent did not occur)."""
    (p,) = _validate([probability])
    return 1.0 - p


def at_least(probabilities: Iterable[float], k: int) -> float:
    """P(at least ``k`` of the constituents occurred), independent.

    Dynamic program over the Poisson-binomial distribution; exact, not a
    Monte-Carlo estimate.
    """
    values = _validate(probabilities)
    if k <= 0:
        return 1.0
    if k > len(values):
        return 0.0
    # counts[j] = P(exactly j of the processed constituents occurred)
    counts = [1.0] + [0.0] * len(values)
    for p in values:
        for j in range(len(counts) - 1, 0, -1):
            counts[j] = counts[j] * (1.0 - p) + counts[j - 1] * p
        counts[0] *= 1.0 - p
    return sum(counts[k:])
