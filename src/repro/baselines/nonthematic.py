"""The non-thematic approximate matcher — the paper's main baseline.

This is the authors' prior system [16] (Section 5.2.5): the same
approximate probabilistic matcher, but the semantic measure ignores
themes and works on the full, unprojected distributional space. On the
paper's workload it scores 62% F1 at 202 events/sec; every thematic
comparison in Section 5.3 is against these numbers.
"""

from __future__ import annotations

from repro.core.matcher import ThematicMatcher
from repro.semantics.cache import RelatednessCache
from repro.semantics.measures import CachedMeasure, NonThematicMeasure
from repro.semantics.space import DistributionalVectorSpace

__all__ = ["NonThematicMatcher", "make_nonthematic_matcher"]


class NonThematicMatcher(ThematicMatcher):
    """Approximate matcher over the unprojected space (prior work [16])."""

    def __init__(
        self,
        space: DistributionalVectorSpace,
        *,
        k: int = 1,
        threshold: float = 0.5,
        min_relatedness: float = 0.0,
        cached: bool = True,
    ):
        measure = NonThematicMeasure(space)
        if cached:
            measure = CachedMeasure(measure, RelatednessCache())
        super().__init__(
            measure,
            k=k,
            threshold=threshold,
            min_relatedness=min_relatedness,
        )


def make_nonthematic_matcher(
    space: DistributionalVectorSpace, **kwargs
) -> NonThematicMatcher:
    """Factory mirroring the thematic construction sites in the benches."""
    return NonThematicMatcher(space, **kwargs)
