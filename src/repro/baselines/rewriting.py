"""Concept-based query rewriting baseline (Table 1, column 2).

The concept-based approach (S-ToPSS [22], the WordNet comparator of
[16]) keeps exact matching but *rewrites* every approximate subscription
into the set of exact subscriptions obtained by substituting each
approximated term with its knowledge-base synonyms/related terms. The
event side stays untouched; matching is Boolean.

The combinatorics are the approach's weakness the paper points at: the
paper's 94 approximate subscriptions are "equivalent to about 48,000
subscriptions which would be needed by a non-approximate approach".
``max_rewrites_per_subscription`` caps the blow-up (rewrites beyond the
cap are dropped, costing recall — faithfully reproducing why the
rewriting baseline loses F1 in [16]'s comparison).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from itertools import product

from repro.baselines.exact import CountingIndex, ExactMatcher, exact_match_result
from repro.core.api import BatchMatchResult
from repro.core.events import Event
from repro.core.matcher import MatchResult
from repro.core.subscriptions import Predicate, Subscription
from repro.knowledge.rewrite import single_replacements
from repro.knowledge.thesaurus import Thesaurus
from repro.obs import TRACER

__all__ = ["rewrite_subscription", "RewritingMatcher"]


def _side_variants(
    term: str,
    approximate: bool,
    thesaurus: Thesaurus,
    domains: tuple[str, ...] | None,
    include_related: bool,
) -> tuple[str, ...]:
    if not approximate:
        return (term,)
    return (
        term,
        *single_replacements(
            term, thesaurus, domains, include_related=include_related
        ),
    )


def rewrite_subscription(
    subscription: Subscription,
    thesaurus: Thesaurus,
    *,
    domains: Iterable[str] | None = None,
    include_related: bool = True,
    max_rewrites: int = 2000,
) -> tuple[Subscription, ...]:
    """Exact subscriptions covering the approximate one, original first.

    The cross-product over per-predicate variants is enumerated
    deterministically and truncated at ``max_rewrites``.
    """
    domain_tuple = tuple(domains) if domains is not None else None
    per_predicate: list[list[Predicate]] = []
    for predicate in subscription.predicates:
        attrs = _side_variants(
            predicate.attribute,
            predicate.approx_attribute,
            thesaurus,
            domain_tuple,
            include_related,
        )
        if isinstance(predicate.value, str):
            values = _side_variants(
                predicate.value,
                predicate.approx_value,
                thesaurus,
                domain_tuple,
                include_related,
            )
        else:
            values = (predicate.value,)
        per_predicate.append(
            [Predicate(attr, value) for attr in attrs for value in values]
        )

    rewrites: list[Subscription] = []
    for combo in product(*per_predicate):
        rewrites.append(
            Subscription(theme=subscription.theme, predicates=tuple(combo))
        )
        if len(rewrites) >= max_rewrites:
            break
    return tuple(rewrites)


class RewritingMatcher:
    """Boolean matcher running exact matching over rewritten queries.

    Exposes the same ``score``/``matches`` interface as the approximate
    matchers so the harness can rank with it, and implements the full
    :class:`~repro.core.api.MatchEngine` contract: ``match`` reports the
    first matching rewrite as a unit-score result and ``match_batch``
    runs a :class:`~repro.baselines.exact.CountingIndex` over every
    rewrite of the batch's subscriptions (the high-throughput deployment
    mode whose cost is paid in index size; ``index_for`` exposes the
    same index for external use).
    """

    threshold: float = 0.5

    def __init__(
        self,
        thesaurus: Thesaurus,
        *,
        domains: Iterable[str] | None = None,
        include_related: bool = True,
        max_rewrites: int = 2000,
    ):
        self.thesaurus = thesaurus
        self.domains = tuple(domains) if domains is not None else None
        self.include_related = include_related
        self.max_rewrites = max_rewrites
        self._exact = ExactMatcher()
        self._rewrite_cache: dict[int, tuple[Subscription, ...]] = {}

    def rewrites(self, subscription: Subscription) -> tuple[Subscription, ...]:
        key = id(subscription)
        cached = self._rewrite_cache.get(key)
        if cached is None:
            cached = rewrite_subscription(
                subscription,
                self.thesaurus,
                domains=self.domains,
                include_related=self.include_related,
                max_rewrites=self.max_rewrites,
            )
            self._rewrite_cache[key] = cached
        return cached

    def matches(self, subscription: Subscription, event: Event) -> bool:
        return any(
            self._exact.matches(rewrite, event)
            for rewrite in self.rewrites(subscription)
        )

    def score(self, subscription: Subscription, event: Event) -> float:
        return 1.0 if self.matches(subscription, event) else 0.0

    def match(self, subscription: Subscription, event: Event) -> MatchResult | None:
        """Unit-score result via the first matching rewrite, else ``None``.

        The result reports the *original* (approximate) subscription;
        its matrix and mapping come from the rewrite that matched.
        Rewrites beyond ``max_rewrites`` are never enumerated, so —
        consistently with :meth:`matches` — a pair only they would
        accept returns ``None``.
        """
        for rewrite in self.rewrites(subscription):
            if self._exact.matches(rewrite, event):
                return exact_match_result(subscription, event, rewrite.predicates)
        return None

    def match_batch(
        self,
        subscriptions: Sequence[Subscription],
        events: Sequence[Event],
        *,
        scores_only: bool = False,
        prune_zero: bool | None = None,
    ) -> BatchMatchResult:
        """Index-backed batch matching over all rewrites.

        One counting index covers every rewrite of every subscription in
        the batch; each event is looked up once. Index hits are
        confirmed with exact per-pair matching (superset under duplicate
        event attributes), and ties between a subscription's rewrites
        resolve to the earliest enumerated one, so results are
        bit-identical to per-pair :meth:`match`. ``prune_zero`` is
        accepted for interface compatibility.
        """
        subscriptions = tuple(subscriptions)
        events = tuple(events)
        with TRACER.span(
            "rewriting.match_batch",
            subscriptions=len(subscriptions),
            events=len(events),
        ):
            scores = [[0.0] * len(events) for _ in subscriptions]
            results: list[list[MatchResult | None]] | None = (
                None if scores_only
                else [[None] * len(events) for _ in subscriptions]
            )
            index = CountingIndex()
            owners: dict[int, int] = {}
            vacuous: list[int] = []
            for i, subscription in enumerate(subscriptions):
                if not subscription.predicates:
                    vacuous.append(i)  # counting indexes never fire on arity 0
                for rewrite in self.rewrites(subscription):
                    owners[index.add(rewrite)] = i
            for j, event in enumerate(events):
                done: set[int] = set()
                for i in vacuous:
                    scores[i][j] = 1.0
                    done.add(i)
                    if results is not None:
                        results[i][j] = exact_match_result(
                            subscriptions[i],
                            event,
                            self.rewrites(subscriptions[i])[0].predicates,
                        )
                # index.match returns ascending ids = rewrite enumeration
                # order, so the first confirmed hit per subscription is
                # the same rewrite per-pair match() would pick.
                for sub_id in index.match(event):
                    i = owners[sub_id]
                    if i in done:
                        continue
                    rewrite = index.subscription(sub_id)
                    if not self._exact.matches(rewrite, event):
                        continue
                    done.add(i)
                    scores[i][j] = 1.0
                    if results is not None:
                        results[i][j] = exact_match_result(
                            subscriptions[i], event, rewrite.predicates
                        )
        return BatchMatchResult(
            subscriptions=subscriptions,
            events=events,
            scores=scores,
            results=results,
        )

    def index_for(self, subscriptions: Iterable[Subscription]) -> CountingIndex:
        """Counting index over every rewrite of every subscription."""
        index = CountingIndex()
        for subscription in subscriptions:
            for rewrite in self.rewrites(subscription):
                index.add(rewrite)
        return index
