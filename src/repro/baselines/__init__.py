"""Baseline matchers: the non-thematic columns of Table 1."""

from repro.baselines.exact import CountingIndex, ExactMatcher, covers
from repro.baselines.nonthematic import NonThematicMatcher, make_nonthematic_matcher
from repro.baselines.rewriting import RewritingMatcher, rewrite_subscription

__all__ = [
    "CountingIndex",
    "covers",
    "ExactMatcher",
    "NonThematicMatcher",
    "RewritingMatcher",
    "make_nonthematic_matcher",
    "rewrite_subscription",
]
