"""Content-based exact matching (Table 1, column 1).

The classic SIENA-style [7] semantics: a subscription matches an event
iff *every* predicate finds a tuple with string-equal attribute and
equal value. No semantics, no themes; the tilde operator is ignored.

Two implementations:

* :class:`ExactMatcher` — per-pair decision, mirroring the approximate
  matcher's interface (used as the scoring baseline);
* :class:`CountingIndex` — the counting-based matching algorithm used by
  content-based brokers: subscriptions are indexed by their
  (attribute, value) predicates; an event looks up each of its tuples
  once and any subscription whose hit-count reaches its predicate count
  matches. This is why the content-based approach has "high" efficiency
  in Table 1 — matching cost is independent of the subscription count
  for selective workloads.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

import numpy as np

from repro.core.api import BatchMatchResult
from repro.core.events import Event, Value
from repro.core.mapping import Correspondence, Mapping
from repro.core.matcher import MatchResult
from repro.core.similarity import SimilarityMatrix
from repro.core.subscriptions import Predicate, Subscription
from repro.obs import TRACER
from repro.semantics.tokenize import normalize_term

__all__ = ["ExactMatcher", "CountingIndex", "covers", "exact_match_result"]


def _key(attribute: str, value: Value) -> tuple[str, Value]:
    if isinstance(value, str):
        return (normalize_term(attribute), normalize_term(value))
    return (normalize_term(attribute), value)


def exact_match_result(
    subscription: Subscription,
    event: Event,
    predicates: tuple[Predicate, ...],
) -> MatchResult:
    """A unit-score :class:`MatchResult` for a Boolean exact match.

    ``predicates`` are the ones actually matched against the event —
    the subscription's own for :class:`ExactMatcher`, a rewrite's for
    the rewriting baseline (the result still reports the original
    subscription). The matrix marks every exactly-matching
    (predicate, tuple) pair 1.0; the mapping picks one tuple per
    predicate (distinct where possible) with score 1.0, mirroring the
    all-or-nothing semantics of the Boolean approaches.
    """
    n, m = len(predicates), len(event.payload)
    scores = np.zeros((n, m))
    for i, predicate in enumerate(predicates):
        pkey = _key(predicate.attribute, predicate.value)
        for j, av in enumerate(event.payload):
            if _key(av.attribute, av.value) == pkey:
                scores[i, j] = 1.0
    matrix = SimilarityMatrix(
        subscription=subscription, event=event, scores=scores
    )
    used: set[int] = set()
    correspondences = []
    for i in range(n):
        hits = [j for j in range(m) if scores[i, j] == 1.0]
        fresh = [j for j in hits if j not in used]
        choice = (fresh or hits)[0]
        used.add(choice)
        correspondences.append(
            Correspondence(
                predicate_index=i, tuple_index=choice, score=1.0, probability=1.0
            )
        )
    mapping = Mapping(
        correspondences=tuple(correspondences),
        score=1.0,
        weight=1.0,
        probability=1.0,
    )
    return MatchResult(
        subscription=subscription, event=event, matrix=matrix, mapping=mapping
    )


class ExactMatcher:
    """Boolean exact matcher with the approximate matcher's interface.

    ``score`` returns 1.0/0.0 so the evaluation harness can rank with it
    uniformly; any ``threshold`` in ``(0, 1]`` draws the same boundary.
    Implements the :class:`~repro.core.api.MatchEngine` contract:
    ``match`` wraps a match in a unit-score result (``None`` for
    non-matches — a Boolean engine has no partial scores to explain) and
    ``match_batch`` runs the :class:`CountingIndex` so batch cost is
    independent of the subscription count.
    """

    threshold: float = 0.5

    def matches(self, subscription: Subscription, event: Event) -> bool:
        for predicate in subscription.predicates:
            value = event.value(predicate.attribute)
            if value is None:
                return False
            if _key(predicate.attribute, value) != _key(
                predicate.attribute, predicate.value
            ):
                return False
        return True

    def score(self, subscription: Subscription, event: Event) -> float:
        return 1.0 if self.matches(subscription, event) else 0.0

    def match(self, subscription: Subscription, event: Event) -> MatchResult | None:
        """Unit-score result for a match, ``None`` otherwise."""
        if not self.matches(subscription, event):
            return None
        return exact_match_result(subscription, event, subscription.predicates)

    def match_batch(
        self,
        subscriptions: Sequence[Subscription],
        events: Sequence[Event],
        *,
        scores_only: bool = False,
        prune_zero: bool | None = None,
    ) -> BatchMatchResult:
        """Index-backed batch matching (bit-identical to per-pair).

        Builds one counting index over the batch's subscriptions and
        looks each event up once — the "high efficiency" column of
        Table 1. Index hits are confirmed with :meth:`matches` (the
        index sees every payload tuple while per-pair matching consults
        one tuple per attribute, so hits are a superset under duplicate
        attributes). ``prune_zero`` is accepted for interface
        compatibility; exact matching always prunes non-matches.
        """
        subscriptions = tuple(subscriptions)
        events = tuple(events)
        with TRACER.span(
            "exact.match_batch",
            subscriptions=len(subscriptions),
            events=len(events),
        ):
            scores = [[0.0] * len(events) for _ in subscriptions]
            results: list[list[MatchResult | None]] | None = (
                None if scores_only
                else [[None] * len(events) for _ in subscriptions]
            )
            index = CountingIndex()
            owners: dict[int, int] = {}
            vacuous: list[int] = []
            for i, subscription in enumerate(subscriptions):
                if not subscription.predicates:
                    # The counting index never reports a subscription
                    # with zero predicates (nothing increments it), but
                    # per-pair matching is vacuously true.
                    vacuous.append(i)
                owners[index.add(subscription)] = i
            for j, event in enumerate(events):
                hit_owners = [owners[sub_id] for sub_id in index.match(event)]
                for i in [*vacuous, *hit_owners]:
                    subscription = subscriptions[i]
                    if not self.matches(subscription, event):
                        continue
                    scores[i][j] = 1.0
                    if results is not None:
                        results[i][j] = exact_match_result(
                            subscription, event, subscription.predicates
                        )
        return BatchMatchResult(
            subscriptions=subscriptions,
            events=events,
            scores=scores,
            results=results,
        )


def _value_set_implies(specific: Predicate, general: Predicate) -> bool:
    """Does satisfying ``specific`` guarantee satisfying ``general``?

    Compares the value sets the two predicates admit. Conservative: when
    implication cannot be decided (mixed types, semantic approximation),
    returns False.
    """
    s_op, g_op = specific.operator, general.operator
    s_v, g_v = specific.value, general.value

    def norm(value):
        return normalize_term(value) if isinstance(value, str) else value

    if s_op == "=":
        # {v} subset of G: just evaluate G at v.
        if g_op == "=":
            return norm(s_v) == norm(g_v)
        return general.evaluate_value(s_v)
    if g_op == "=":
        return False  # a non-singleton set never fits inside a singleton
    if s_op == "!=" or g_op == "!=":
        # complement sets: s (!= a) implies g (!= b) iff a == b.
        return s_op == g_op == "!=" and norm(s_v) == norm(g_v)
    if isinstance(s_v, str) or isinstance(g_v, str):
        return False
    # Both are numeric half-lines.
    if s_op in (">", ">=") and g_op in (">", ">="):
        if s_v > g_v:
            return True
        return s_v == g_v and not (s_op == ">=" and g_op == ">")
    if s_op in ("<", "<=") and g_op in ("<", "<="):
        if s_v < g_v:
            return True
        return s_v == g_v and not (s_op == "<=" and g_op == "<")
    return False


def covers(general: Subscription, specific: Subscription) -> bool:
    """SIENA-style covering: every event matching ``specific`` also
    matches ``general``.

    Content-based brokers use covering to prune forwarded subscriptions:
    a broker that already forwards ``general`` upstream need not forward
    anything it covers. Decidable only for the exact fragment — a
    semantically approximated (``~``) predicate is covered solely by an
    identical predicate (conservative), because approximate match sets
    have no syntactic containment relation (the reason the paper's
    overlay floods instead of summarizing).
    """
    specific_by_attr: dict[str, list[Predicate]] = defaultdict(list)
    for predicate in specific.predicates:
        specific_by_attr[normalize_term(predicate.attribute)].append(predicate)

    for g in general.predicates:
        candidates = specific_by_attr.get(normalize_term(g.attribute), [])
        if g.approx_attribute or g.approx_value:
            if not any(g == s for s in candidates):
                return False
            continue
        if not any(
            not s.approx_attribute
            and not s.approx_value
            and _value_set_implies(s, g)
            for s in candidates
        ):
            return False
    return True


class CountingIndex:
    """Counting-based subscription index for content-based brokers.

    ``add`` registers subscriptions; ``match`` returns the ids of all
    subscriptions fully satisfied by an event. Cost of ``match`` is
    ``O(tuples x avg-postings)``, independent of total subscriptions.
    """

    def __init__(self) -> None:
        self._by_predicate: dict[tuple[str, Value], list[int]] = defaultdict(list)
        self._predicate_counts: dict[int, int] = {}
        self._subscriptions: dict[int, Subscription] = {}
        self._next_id = 0

    def add(self, subscription: Subscription) -> int:
        """Index a subscription; returns its id."""
        sub_id = self._next_id
        self._next_id += 1
        self._subscriptions[sub_id] = subscription
        self._predicate_counts[sub_id] = len(subscription.predicates)
        for predicate in subscription.predicates:
            self._by_predicate[_key(predicate.attribute, predicate.value)].append(
                sub_id
            )
        return sub_id

    def remove(self, sub_id: int) -> bool:
        """Drop a subscription from the index; True if it was present."""
        subscription = self._subscriptions.pop(sub_id, None)
        if subscription is None:
            return False
        del self._predicate_counts[sub_id]
        for predicate in subscription.predicates:
            key = _key(predicate.attribute, predicate.value)
            self._by_predicate[key] = [
                s for s in self._by_predicate[key] if s != sub_id
            ]
            if not self._by_predicate[key]:
                del self._by_predicate[key]
        return True

    def match(self, event: Event) -> list[int]:
        """Ids of subscriptions whose every predicate the event satisfies."""
        counts: dict[int, int] = defaultdict(int)
        for av in event.payload:
            for sub_id in self._by_predicate.get(_key(av.attribute, av.value), ()):
                counts[sub_id] += 1
        return sorted(
            sub_id
            for sub_id, hit in counts.items()
            if hit >= self._predicate_counts[sub_id]
        )

    def subscription(self, sub_id: int) -> Subscription:
        return self._subscriptions[sub_id]

    def __len__(self) -> int:
        return len(self._subscriptions)
