"""Offline warming of the precomputed-relatedness tier.

The ``repro warm-cache`` pipeline lives here: enumerate the workload's
term vocabulary, plan the deduplicated ``(term, theme)`` cross-product,
score it through the vectorized kernel, and freeze the result into a
:class:`~repro.semantics.cache.PersistentScoreStore` snapshot the
engine's ``score_store_path`` knob attaches at boot.

Scoring shards over the same process-executor seam the sharded broker
uses (:mod:`repro.broker.procshard`): the parent writes the space's
columnar arrays once to a binary snapshot, each spawned worker attaches
zero-copy via ``np.memmap`` and scores its slice of lookups through
:class:`~repro.semantics.kernel.KernelMeasure` — the identical arrays
and float path the in-process kernel takes, so a sharded warm produces
bit-identical scores to ``workers=0``. Scores agree with the scalar
``SparseVector`` path within the documented kernel tolerance (see
:mod:`repro.semantics.kernel`), which is the parity the warmed-store
test suite pins down.
"""

from __future__ import annotations

import os
import tempfile
from collections.abc import Iterable, Sequence

from repro.core.events import Event
from repro.core.subscriptions import Subscription
from repro.semantics.cache import (
    CacheKey,
    PersistentScoreStore,
    PrecomputedScoreTable,
    RelatednessCache,
)
from repro.semantics.pvsm import ParametricVectorSpace, theme_key
from repro.semantics.tokenize import normalize_term

__all__ = [
    "workload_vocabulary",
    "plan_lookups",
    "warm_score_table",
    "build_score_store",
]

#: One scoring call per worker covers this many lookups; small enough to
#: keep all workers busy on uneven tails, large enough that the per-call
#: pickle overhead disappears behind kernel time.
_CHUNK = 2048


def workload_vocabulary(
    subscriptions: Iterable[Subscription], events: Iterable[Event]
) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """``(subscription terms, event terms)`` of a workload, sorted.

    Terms come from :meth:`Subscription.terms` / :meth:`Event.terms`
    (predicate attributes and string values; payload attributes and
    string values). The cross-product of the two sides is exactly the
    lookup population a warmed store can be asked for at match time.
    """
    sub_terms = sorted({t for s in subscriptions for t in s.terms()})
    event_terms = sorted({t for e in events for t in e.terms()})
    return tuple(sub_terms), tuple(event_terms)


def plan_lookups(
    subscription_terms: Sequence[str],
    event_terms: Sequence[str],
    theme_pairs: Iterable[tuple[Iterable[str], Iterable[str]]],
) -> list[tuple[str, tuple[str, ...], str, tuple[str, ...]]]:
    """The deduplicated cross-product of terms and theme pairs.

    One lookup per distinct symmetric cache key: identical normalized
    terms are skipped (every measure short-circuits them to 1.0, so the
    store never needs them) and ``(s, e)`` / ``(e, s)`` collapse to one
    entry, exactly as the store's symmetric ``get`` does.
    """
    cache = RelatednessCache()
    seen: set[CacheKey] = set()
    lookups: list[tuple[str, tuple[str, ...], str, tuple[str, ...]]] = []
    pairs = [
        (theme_key(theme_s), theme_key(theme_e))
        for theme_s, theme_e in theme_pairs
    ]
    for theme_s, theme_e in pairs:
        for term_s in subscription_terms:
            norm_s = normalize_term(term_s)
            for term_e in event_terms:
                if norm_s == normalize_term(term_e):
                    continue
                key = cache.key(term_s, theme_s, term_e, theme_e)
                if key in seen:
                    continue
                seen.add(key)
                lookups.append((term_s, theme_s, term_e, theme_e))
    return lookups


# -- process-executor seam --------------------------------------------------

#: Per-worker kernel measure, built once by the pool initializer so the
#: columnar attach and idf precompute are not repeated per chunk.
_WORKER_MEASURE = None


def _warm_worker_init(
    space_path: str,
    digest: str,
    normalize: bool,
    metric: str,
    recompute_idf: bool,
    mode: str,
) -> None:
    """Pool initializer: attach the columnar snapshot, build the kernel."""
    global _WORKER_MEASURE
    from repro.semantics.kernel import KernelMeasure, RelatednessKernel
    from repro.semantics.persistence import load_columnar

    columnar, _ = load_columnar(space_path, expected_digest=digest)
    kernel = RelatednessKernel(
        columnar,
        normalize=normalize,
        metric=metric,
        recompute_idf=recompute_idf,
    )
    _WORKER_MEASURE = KernelMeasure(kernel, mode=mode)


def _warm_worker_score(chunk: list) -> list[float]:
    """Score one chunk of lookups in the worker's kernel measure."""
    return _WORKER_MEASURE.score_batch(chunk)


def warm_score_table(
    space: ParametricVectorSpace,
    lookups: Sequence[tuple[str, tuple[str, ...], str, tuple[str, ...]]],
    *,
    mode: str = "common",
    workers: int = 0,
) -> PrecomputedScoreTable:
    """Score every lookup through the vectorized kernel, into a table.

    ``workers=0`` scores in-process (one kernel, chunked batches);
    ``workers>0`` spawns that many processes over the columnar-snapshot
    seam described in the module docstring. Both paths take the same
    kernel float path, so the resulting tables are bit-identical.
    """
    lookups = list(lookups)
    cache = RelatednessCache()
    scores: list[float] = []
    chunks = [
        lookups[start : start + _CHUNK]
        for start in range(0, len(lookups), _CHUNK)
    ]
    if workers <= 0 or len(chunks) <= 1:
        from repro.semantics.kernel import KernelMeasure

        measure = KernelMeasure(space.kernel(), mode=mode)
        for chunk in chunks:
            scores.extend(measure.score_batch(chunk))
    else:
        import concurrent.futures
        import multiprocessing

        from repro.semantics.persistence import corpus_digest, save_columnar

        digest = corpus_digest(space.documents)
        handle, space_path = tempfile.mkstemp(suffix=".repro-columnar")
        try:
            # Inside the try: every statement between mkstemp and the
            # finally is a window where an exception would leak the
            # temp file (RL801).
            os.close(handle)
            save_columnar(space.columnar(), space_path, digest=digest)
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(workers, len(chunks)),
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_warm_worker_init,
                initargs=(
                    space_path,
                    digest,
                    space.normalize,
                    space.metric,
                    getattr(space, "recompute_idf", True),
                    mode,
                ),
            ) as pool:
                for part in pool.map(_warm_worker_score, chunks):
                    scores.extend(part)
        finally:
            os.unlink(space_path)
    table = PrecomputedScoreTable()
    for lookup, score in zip(lookups, scores, strict=True):
        table.scores[cache.key(*lookup)] = score
    return table


def build_score_store(
    space: ParametricVectorSpace,
    subscriptions: Iterable[Subscription],
    events: Iterable[Event],
    theme_pairs: Iterable[tuple[Iterable[str], Iterable[str]]],
    *,
    mode: str = "common",
    workers: int = 0,
) -> PersistentScoreStore:
    """The whole offline pipeline in one call.

    Enumerates the vocabulary, warms the space's projection caches
    (:meth:`~ParametricVectorSpace.warm`), plans and scores the
    deduplicated cross-product, and freezes it into a store stamped with
    the space's corpus digest — ready for
    :meth:`~PersistentScoreStore.save`.
    """
    from repro.semantics.persistence import corpus_digest

    theme_pairs = list(theme_pairs)
    sub_terms, event_terms = workload_vocabulary(subscriptions, events)
    themes = [t for pair in theme_pairs for t in pair]
    space.warm(set(sub_terms) | set(event_terms), themes)
    lookups = plan_lookups(sub_terms, event_terms, theme_pairs)
    table = warm_score_table(space, lookups, mode=mode, workers=workers)
    return PersistentScoreStore.from_table(
        table, corpus_digest=corpus_digest(space.documents)
    )
