"""Caching layers for relatedness scores.

Two caches back the efficiency story of the paper:

* :class:`RelatednessCache` — an online memo for ``sm`` calls; the
  matcher repeatedly scores the same (term, theme) pairs across events,
  so hit rates are high on realistic workloads.
* :class:`PrecomputedScoreTable` — an offline table of all pairwise
  scores between a subscription vocabulary and an event vocabulary, the
  mode that lets the prior-work approximate matcher reach ~91,000
  events/sec (Section 5). Built with :func:`precompute_scores`.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.semantics.pvsm import theme_key
from repro.semantics.tokenize import normalize_term

__all__ = ["RelatednessCache", "PrecomputedScoreTable", "precompute_scores"]

#: A fully-normalized cache key: the two (term, theme) halves, sorted so
#: the key is symmetric (the measures are symmetric functions).
CacheKey = tuple[tuple[str, tuple[str, ...]], tuple[str, tuple[str, ...]]]


def _half(term: str, theme: Iterable[str]) -> tuple[str, tuple[str, ...]]:
    return (normalize_term(term), theme_key(theme))


@dataclass
class RelatednessCache:
    """Symmetric memo of relatedness scores with hit counters.

    Unbounded by default (the historical behaviour); pass
    ``max_entries`` to cap memory on long-running brokers — eviction is
    LRU (hits refresh recency), so the working set of a steady workload
    stays resident while one-off pairs age out.

    Lookups and inserts hold an internal lock: a cache is typically the
    one measure-level object *shared* across the sharded broker's worker
    threads, and the bounded mode's delete-and-reinsert recency refresh
    is not atomic without one.
    """

    _scores: dict[CacheKey, float] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    max_entries: int | None = None
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.max_entries is not None and self.max_entries < 1:
            raise ValueError("max_entries must be positive (or None)")

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the memo; 0.0 before any."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def key(
        self,
        term_s: str,
        theme_s: Iterable[str],
        term_e: str,
        theme_e: Iterable[str],
    ) -> CacheKey:
        left, right = _half(term_s, theme_s), _half(term_e, theme_e)
        return (left, right) if left <= right else (right, left)

    def get(self, key: CacheKey) -> float | None:
        with self._lock:
            value = self._scores.get(key)
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
                if self.max_entries is not None:
                    # Refresh recency: dicts iterate in insertion order, so
                    # re-inserting moves the key to the "young" end.
                    del self._scores[key]
                    self._scores[key] = value
            return value

    def put(self, key: CacheKey, value: float) -> None:
        with self._lock:
            if self.max_entries is not None and key not in self._scores:
                while len(self._scores) >= self.max_entries:
                    self._scores.pop(next(iter(self._scores)))
            self._scores[key] = value

    def __len__(self) -> int:
        with self._lock:
            return len(self._scores)

    def clear(self) -> None:
        with self._lock:
            self._scores.clear()
            self.hits = 0
            self.misses = 0


@dataclass
class PrecomputedScoreTable:
    """Immutable-by-convention table of offline-computed scores.

    Keys are symmetric (term, theme)-pair tuples like the online cache's;
    lookups never mutate the table, making it safe to share across
    matcher instances and threads.
    """

    scores: dict[CacheKey, float] = field(default_factory=dict)

    def get(
        self,
        term_s: str,
        theme_s: Iterable[str],
        term_e: str,
        theme_e: Iterable[str],
    ) -> float | None:
        left, right = _half(term_s, theme_s), _half(term_e, theme_e)
        key = (left, right) if left <= right else (right, left)
        return self.scores.get(key)

    def __len__(self) -> int:
        return len(self.scores)


def precompute_scores(
    measure,
    subscription_terms: Iterable[str],
    event_terms: Iterable[str],
    *,
    theme_s: Iterable[str] = (),
    theme_e: Iterable[str] = (),
) -> PrecomputedScoreTable:
    """Score every (subscription term, event term) pair offline.

    ``measure`` is any :class:`~repro.semantics.measures.SemanticMeasure`.
    The result answers exactly the queries the matcher will make for the
    given themes; with empty themes it serves the non-thematic fast mode.
    """
    table = PrecomputedScoreTable()
    ths, the = theme_key(theme_s), theme_key(theme_e)
    sub_terms = sorted({normalize_term(t) for t in subscription_terms})
    ev_terms = sorted({normalize_term(t) for t in event_terms})
    for ts in sub_terms:
        left = (ts, ths)
        for te in ev_terms:
            right = (te, the)
            key = (left, right) if left <= right else (right, left)
            if key not in table.scores:
                table.scores[key] = measure.score(ts, ths, te, the)
    return table
