"""Caching layers for relatedness scores.

Three tiers back the efficiency story of the paper:

* :class:`RelatednessCache` — an online memo for ``sm`` calls; the
  matcher repeatedly scores the same (term, theme) pairs across events,
  so hit rates are high on realistic workloads.
* :class:`PrecomputedScoreTable` — an offline table of all pairwise
  scores between a subscription vocabulary and an event vocabulary, the
  mode that lets the prior-work approximate matcher reach ~91,000
  events/sec (Section 5). Built with :func:`precompute_scores`.
* :class:`PersistentScoreStore` — the durable form of the offline
  table: sorted 128-bit key-hash arrays plus a score column, written
  through the versioned snapshot machinery in
  :mod:`repro.semantics.persistence` and mapped back read-only, so a
  warmed broker boots its precomputed tier from disk without
  rebuilding (``repro warm-cache`` produces the file). Lookups are
  hash + binary search; the snapshot carries the corpus digest so a
  store can never be consulted against a space built from a different
  corpus.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING

import numpy as np

from repro.obs import MetricsRegistry
from repro.semantics.pvsm import theme_key
from repro.semantics.tokenize import normalize_term

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from repro.semantics.measures import SemanticMeasure

__all__ = [
    "RelatednessCache",
    "PrecomputedScoreTable",
    "PersistentScoreStore",
    "precompute_scores",
]

#: A fully-normalized cache key: the two (term, theme) halves, sorted so
#: the key is symmetric (the measures are symmetric functions).
CacheKey = tuple[tuple[str, tuple[str, ...]], tuple[str, tuple[str, ...]]]


def _half(term: str, theme: Iterable[str]) -> tuple[str, tuple[str, ...]]:
    return (normalize_term(term), theme_key(theme))


@dataclass
class RelatednessCache:
    """Symmetric memo of relatedness scores with hit counters.

    Unbounded by default (the historical behaviour); pass
    ``max_entries`` to cap memory on long-running brokers — eviction is
    LRU (hits refresh recency), so the working set of a steady workload
    stays resident while one-off pairs age out.

    Lookups and inserts hold an internal lock: a cache is typically the
    one measure-level object *shared* across the sharded broker's worker
    threads, and the bounded mode's delete-and-reinsert recency refresh
    is not atomic without one.
    """

    _scores: dict[CacheKey, float] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    max_entries: int | None = None
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.max_entries is not None and self.max_entries < 1:
            raise ValueError("max_entries must be positive (or None)")

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the memo; 0.0 before any."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def key(
        self,
        term_s: str,
        theme_s: Iterable[str],
        term_e: str,
        theme_e: Iterable[str],
    ) -> CacheKey:
        left, right = _half(term_s, theme_s), _half(term_e, theme_e)
        return (left, right) if left <= right else (right, left)

    def get(self, key: CacheKey) -> float | None:
        with self._lock:
            value = self._scores.get(key)
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
                if self.max_entries is not None:
                    # Refresh recency: dicts iterate in insertion order, so
                    # re-inserting moves the key to the "young" end.
                    del self._scores[key]
                    self._scores[key] = value
            return value

    def put(self, key: CacheKey, value: float) -> None:
        with self._lock:
            if self.max_entries is not None and key not in self._scores:
                while len(self._scores) >= self.max_entries:
                    self._scores.pop(next(iter(self._scores)))
            self._scores[key] = value

    def __len__(self) -> int:
        with self._lock:
            return len(self._scores)

    def clear(self) -> None:
        with self._lock:
            self._scores.clear()
            self.hits = 0
            self.misses = 0


@dataclass
class PrecomputedScoreTable:
    """Immutable-by-convention table of offline-computed scores.

    Keys are symmetric (term, theme)-pair tuples like the online cache's;
    lookups never mutate the table, making it safe to share across
    matcher instances and threads.
    """

    scores: dict[CacheKey, float] = field(default_factory=dict)

    def get(
        self,
        term_s: str,
        theme_s: Iterable[str],
        term_e: str,
        theme_e: Iterable[str],
    ) -> float | None:
        left, right = _half(term_s, theme_s), _half(term_e, theme_e)
        key = (left, right) if left <= right else (right, left)
        return self.scores.get(key)

    def __len__(self) -> int:
        return len(self.scores)


#: Distinguishes "memoized as a miss" (None) from "never looked up".
_UNRESOLVED = object()

#: Big-endian (hi, lo) split of a 16-byte digest.
_UNPACK_HILO = struct.Struct(">QQ").unpack


@lru_cache(maxsize=65536)
def _encode_half(half: tuple[str, tuple[str, ...]]) -> str:
    """Wire form of one (term, theme) key half; memoized — halves repeat
    across lookups far more than whole keys do (the subscription side of
    a stream is often one vocabulary under one theme set)."""
    term, theme = half
    return term + "\x1f" + "\x1e".join(theme)


def _hash_key(key: CacheKey) -> tuple[int, int]:
    """128-bit content hash of a canonical cache key (hi, lo halves).

    The encoding separates terms, theme tags, and the two halves with
    distinct control characters so no two well-formed keys share an
    encoding; blake2b at 16 bytes makes accidental collisions across
    even billion-entry stores negligible.
    """
    left, right = key
    payload = _encode_half(left) + "\x1d" + _encode_half(right)
    digest = hashlib.blake2b(payload.encode("utf-8"), digest_size=16).digest()
    hi, lo = _UNPACK_HILO(digest)
    return hi, lo


class PersistentScoreStore:
    """Sorted-array score tier, mmap-friendly and corpus-digest-checked.

    The same symmetric (term-pair, theme-set) keys as
    :class:`PrecomputedScoreTable`, but hashed to 128 bits and held in
    three parallel arrays (``key_hi`` sorted, ``key_lo`` tie-break,
    ``scores``) instead of a dict — exactly the layout the binary
    snapshot persists, so :func:`~repro.semantics.persistence.load_score_store`
    can attach the arrays as read-only ``np.memmap`` views and lookups
    page in lazily. :meth:`warm` materializes the arrays into RAM for
    benchmark-steady access times.

    Lookups never mutate the arrays; hit/miss counters live in a
    :class:`~repro.obs.MetricsRegistry` (``score_store.*``), so sharing
    a store across broker threads is safe. Resolved keys are memoized in
    a plain dict (idempotent inserts of immutable values — GIL-safe), so
    the hash + binary search is paid once per distinct key; the memo is
    bounded by the distinct keys actually queried, the same order as the
    store itself.
    """

    def __init__(
        self,
        key_hi: np.ndarray,
        key_lo: np.ndarray,
        scores: np.ndarray,
        *,
        corpus_digest: str,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if not (len(key_hi) == len(key_lo) == len(scores)):
            raise ValueError("key/score arrays must have equal lengths")
        self._key_hi = key_hi
        self._key_lo = key_lo
        self._scores = scores
        self.corpus_digest = corpus_digest
        self.registry = registry if registry is not None else MetricsRegistry()
        self._hits = self.registry.counter("score_store.hits")
        self._misses = self.registry.counter("score_store.misses")
        self._memo: dict[CacheKey, float | None] = {}

    @classmethod
    def build(
        cls,
        scores: Mapping[CacheKey, float],
        *,
        corpus_digest: str,
        registry: MetricsRegistry | None = None,
    ) -> "PersistentScoreStore":
        """Sort a key->score mapping into the persistent array layout."""
        count = len(scores)
        key_hi = np.empty(count, dtype=np.uint64)
        key_lo = np.empty(count, dtype=np.uint64)
        values = np.empty(count, dtype=np.float64)
        for row, (key, value) in enumerate(scores.items()):
            hi, lo = _hash_key(key)
            key_hi[row] = hi
            key_lo[row] = lo
            values[row] = value
        order = np.lexsort((key_lo, key_hi))
        return cls(
            key_hi[order],
            key_lo[order],
            values[order],
            corpus_digest=corpus_digest,
            registry=registry,
        )

    @classmethod
    def from_table(
        cls,
        table: PrecomputedScoreTable,
        *,
        corpus_digest: str,
        registry: MetricsRegistry | None = None,
    ) -> "PersistentScoreStore":
        return cls.build(
            table.scores, corpus_digest=corpus_digest, registry=registry
        )

    def arrays(self) -> dict[str, np.ndarray]:
        """The persisted columns, in snapshot layout order."""
        return {
            "key_hi": self._key_hi,
            "key_lo": self._key_lo,
            "scores": self._scores,
        }

    def get(
        self,
        term_s: str,
        theme_s: Iterable[str],
        term_e: str,
        theme_e: Iterable[str],
    ) -> float | None:
        left, right = _half(term_s, theme_s), _half(term_e, theme_e)
        key = (left, right) if left <= right else (right, left)
        memo = self._memo
        if key in memo:
            value = memo[key]
            (self._misses if value is None else self._hits).inc()
            return value
        hi, lo = _hash_key(key)
        row = int(np.searchsorted(self._key_hi, np.uint64(hi), side="left"))
        count = len(self._key_hi)
        while row < count and self._key_hi[row] == hi:
            if self._key_lo[row] == lo:
                self._hits.inc()
                value = float(self._scores[row])
                memo[key] = value
                return value
            row += 1
        self._misses.inc()
        memo[key] = None
        return None

    def get_batch(
        self,
        lookups: Sequence[tuple[str, Iterable[str], str, Iterable[str]]],
    ) -> list[float | None]:
        """Vectorized :meth:`get`: one array probe for the whole batch.

        Unmemoized keys are hashed in one pass and located with a single
        ``searchsorted`` call instead of one per key; symmetry, hit/miss
        counters, and memoization are per-key identical to :meth:`get`.
        This is the probe the pipeline's block-fill stage rides.
        """
        results: list[float | None] = [None] * len(lookups)
        memo = self._memo
        hit_count = 0
        pending: list[int] = []
        keys: list[CacheKey] = []
        for i, (term_s, theme_s, term_e, theme_e) in enumerate(lookups):
            left, right = _half(term_s, theme_s), _half(term_e, theme_e)
            key = (left, right) if left <= right else (right, left)
            value = memo.get(key, _UNRESOLVED)
            if value is _UNRESOLVED:
                pending.append(i)
                keys.append(key)
            else:
                results[i] = value
                hit_count += value is not None
        if pending and len(self._key_hi):
            hashed = [_hash_key(key) for key in keys]
            his = np.fromiter(
                (hi for hi, _ in hashed), dtype=np.uint64, count=len(hashed)
            )
            los = np.fromiter(
                (lo for _, lo in hashed), dtype=np.uint64, count=len(hashed)
            )
            key_hi, key_lo, scores = self._key_hi, self._key_lo, self._scores
            count = len(key_hi)
            rows = np.searchsorted(key_hi, his, side="left")
            guarded = np.minimum(rows, count - 1)
            in_range = rows < count
            hi_match = in_range & (key_hi[guarded] == his)
            lo_ok = key_lo[guarded] == los
            first_hit = (hi_match & lo_ok).tolist()
            run_start = (hi_match & ~lo_ok).tolist()
            values = scores[guarded].tolist()
            for j, (i, key) in enumerate(zip(pending, keys, strict=True)):
                if first_hit[j]:
                    value = float(values[j])
                elif run_start[j]:
                    # Duplicate-hi run whose first row's lo mismatched:
                    # walk the run for the real entry (vanishingly rare
                    # with 128-bit hashes, but correctness-mandatory).
                    value = None
                    row, hi, lo = int(rows[j]), int(his[j]), int(los[j])
                    while row < count and key_hi[row] == hi:
                        if key_lo[row] == lo:
                            value = float(scores[row])
                            break
                        row += 1
                else:
                    value = None
                memo[key] = value
                results[i] = value
                hit_count += value is not None
        if hit_count:
            self._hits.inc(hit_count)
        if len(lookups) - hit_count:
            self._misses.inc(len(lookups) - hit_count)
        return results

    def warm(self) -> "PersistentScoreStore":
        """Copy memmap-backed columns into RAM; returns self."""
        self._key_hi = np.array(self._key_hi)
        self._key_lo = np.array(self._key_lo)
        self._scores = np.array(self._scores)
        return self

    def stats(self) -> dict[str, int]:
        return {"hits": self._hits.value, "misses": self._misses.value}

    def __len__(self) -> int:
        return len(self._scores)

    def save(self, path: str | Path) -> None:
        """Write the store as a versioned binary snapshot."""
        from repro.semantics.persistence import save_score_store

        save_score_store(self, path)

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        expected_digest: str | None = None,
        registry: MetricsRegistry | None = None,
    ) -> "PersistentScoreStore":
        """Attach a snapshot zero-copy (arrays stay on disk until read)."""
        from repro.semantics.persistence import load_score_store

        return load_score_store(
            path, expected_digest=expected_digest, registry=registry
        )


def precompute_scores(
    measure: SemanticMeasure,
    subscription_terms: Iterable[str],
    event_terms: Iterable[str],
    *,
    theme_s: Iterable[str] = (),
    theme_e: Iterable[str] = (),
) -> PrecomputedScoreTable:
    """Score every (subscription term, event term) pair offline.

    ``measure`` is any :class:`~repro.semantics.measures.SemanticMeasure`.
    The result answers exactly the queries the matcher will make for the
    given themes; with empty themes it serves the non-thematic fast mode.
    """
    table = PrecomputedScoreTable()
    ths, the = theme_key(theme_s), theme_key(theme_e)
    sub_terms = sorted({normalize_term(t) for t in subscription_terms})
    ev_terms = sorted({normalize_term(t) for t in event_terms})
    for ts in sub_terms:
        left = (ts, ths)
        for te in ev_terms:
            right = (te, the)
            key = (left, right) if left <= right else (right, left)
            if key not in table.scores:
                table.scores[key] = measure.score(ts, ths, te, the)
    return table
