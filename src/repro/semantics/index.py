"""Term indexes over a :class:`~repro.semantics.documents.DocumentSet`.

Step 1 of Figure 5: the corpus is tokenized and an inverted index built
with one entry per term. Crucially (Section 4.1) the index stores the
*raw* term frequencies and per-document maxima, not only the final tf/idf
weights, because thematic projection (Algorithm 1) recomputes idf over
the thematic basis at use time.

On top of the exact index sits :class:`ApproxNeighborIndex` — the
candidate-generation tier of the sublinear matching story (S-ToPSS-style
layered matching): random-hyperplane LSH signatures over the full-space
token vectors bucket the vocabulary so a token's neighborhood query
scans a handful of candidates instead of the whole vocabulary. Survivors
are always re-checked against the exact relatedness test, so *precision*
is exact by construction; *recall* is tuned through ``recall_target``,
and at ``recall_target=1.0`` the index bypasses the signatures entirely
and runs the same exact vocabulary scan as
:class:`~repro.core.prefilter.TokenNeighborhoods` — bit-identical
neighborhoods, which the hypothesis suite pins down.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.obs import MetricsRegistry
from repro.semantics.documents import DocumentSet
from repro.semantics.tokenize import tokenize

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.semantics.space import DistributionalVectorSpace
    from repro.semantics.vectors import SparseVector

__all__ = [
    "Posting",
    "InvertedIndex",
    "ApproxNeighborIndex",
    "DEFAULT_NEIGHBOR_THRESHOLD",
]

#: Just above the orthogonal floor of the normalized-Euclidean
#: relatedness (1/(1+sqrt(2)) ≈ 0.4142): prunes only pairs with
#: essentially no full-space evidence. ``core.prefilter`` re-exports it
#: as ``DEFAULT_PREFILTER_THRESHOLD`` (the historical name).
DEFAULT_NEIGHBOR_THRESHOLD = 0.435


@dataclass(frozen=True)
class Posting:
    """One (term, document) entry: the raw in-document frequency."""

    doc_id: int
    frequency: int


@dataclass
class InvertedIndex:
    """Term -> postings map plus the per-document statistics tf/idf needs.

    Attributes
    ----------
    postings:
        ``term -> {doc_id: raw frequency}``.
    max_frequency:
        ``doc_id -> frequency of the most frequent term in the document``
        (the denominator of Equation 2).
    corpus_size:
        ``|D|``.
    """

    postings: dict[str, dict[int, int]] = field(default_factory=dict)
    max_frequency: dict[int, int] = field(default_factory=dict)
    corpus_size: int = 0

    @classmethod
    def build(cls, documents: DocumentSet) -> "InvertedIndex":
        """Index every document; deterministic for a given document set."""
        index = cls(corpus_size=len(documents))
        for doc_id, doc in enumerate(documents):
            counts = Counter(doc.tokens())
            if not counts:
                index.max_frequency[doc_id] = 1
                continue
            index.max_frequency[doc_id] = max(counts.values())
            for token, freq in counts.items():
                index.postings.setdefault(token, {})[doc_id] = freq
        return index

    def document_frequency(self, token: str) -> int:
        """Number of documents containing ``token`` (0 if unseen)."""
        return len(self.postings.get(token, ()))

    def frequency(self, token: str, doc_id: int) -> int:
        """Raw count of ``token`` in document ``doc_id`` (0 if absent)."""
        return self.postings.get(token, {}).get(doc_id, 0)

    def documents_containing(self, token: str) -> frozenset[int]:
        return frozenset(self.postings.get(token, ()))

    def vocabulary(self) -> frozenset[str]:
        return frozenset(self.postings)

    def __contains__(self, token: str) -> bool:
        return token in self.postings

    @staticmethod
    def tokens_of(term: str) -> list[str]:
        """Tokenize a (possibly multi-word) term with index rules."""
        return tokenize(term)


class ApproxNeighborIndex:
    """Approximate token-neighborhood index (LSH candidate generation).

    The exact neighborhood query — "which corpus tokens have full-space
    relatedness ≥ ``threshold`` to this token?" — costs one distance per
    vocabulary entry. This index answers the same query sublinearly:

    1. every vocabulary token's tf/idf vector is signed against
       ``planes`` random hyperplanes (deterministic ``seed``, so two
       indexes over the same space agree bit-for-bit);
    2. the sign bits split into ``bands``; tokens sharing a band bucket
       with the query are *candidates*;
    3. candidates (only) run the exact relatedness test, so every
       returned neighbor is a true neighbor — the approximation can
       only *miss* neighbors, never invent them.

    ``recall_target`` tunes how many of the ``bands`` are probed
    (``ceil(recall_target * bands)``, at least one): probing more bands
    raises the collision chance for genuinely close vectors — the
    classical banding amplification — at the cost of more candidates.
    ``recall_target=1.0`` is the documented loss-free mode: it skips the
    signatures and scans the full vocabulary exactly like
    :class:`~repro.core.prefilter.TokenNeighborhoods`, so neighborhoods
    are bit-identical to the exact path. Achieved recall at lower
    targets is workload-dependent; ``benchmarks/bench_ann_prefilter.py``
    measures the recall/throughput trade-off curve.

    Neighborhoods are cached per token (like the exact class); the index
    is read-only after construction apart from those caches, and safe to
    share across matcher instances on one thread.
    """

    def __init__(
        self,
        space: "DistributionalVectorSpace",
        *,
        threshold: float = DEFAULT_NEIGHBOR_THRESHOLD,
        recall_target: float = 1.0,
        planes: int = 64,
        bands: int = 16,
        seed: int = 0x7E57,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if not 0.0 < recall_target <= 1.0:
            raise ValueError("recall_target must be in (0, 1]")
        if planes < bands or planes % bands:
            raise ValueError("planes must be a positive multiple of bands")
        self.space = space
        self.threshold = threshold
        self.recall_target = recall_target
        self.planes = planes
        self.bands = bands
        self.seed = seed
        self.registry = registry if registry is not None else MetricsRegistry()
        self._queries = self.registry.counter("index.queries")
        self._candidates = self.registry.counter("index.candidates")
        self._exact_scans = self.registry.counter("index.exact_scans")
        self._by_token: dict[str, frozenset[str]] = {}
        self._vocabulary = sorted(space.vocabulary())
        self._row_of = {token: row for row, token in enumerate(self._vocabulary)}
        self._probe_bands = max(1, min(bands, round(recall_target * bands)))
        # Signatures build lazily: the exact-fallback mode never needs
        # them, and construction cost should land on first approximate
        # query, mirroring the lazy exact scans.
        self._hyperplanes: np.ndarray | None = None
        self._row_keys: list[tuple[bytes, ...]] | None = None
        self._buckets: list[dict[bytes, list[int]]] | None = None

    # -- signature construction --------------------------------------------

    def _signature_keys(self, vector: SparseVector) -> tuple[bytes, ...]:
        """Per-band bucket keys of one vector's bit signature."""
        assert self._hyperplanes is not None
        doc_ids = np.fromiter((d for d, _ in vector.items()), dtype=np.int64)
        weights = np.fromiter((w for _, w in vector.items()), dtype=np.float64)
        signs = (weights @ self._hyperplanes[doc_ids]) > 0.0
        width = self.planes // self.bands
        return tuple(
            np.packbits(signs[band * width : (band + 1) * width]).tobytes()
            for band in range(self.bands)
        )

    def _build_buckets(self) -> list[dict[bytes, list[int]]]:
        if self._buckets is not None:
            return self._buckets
        rng = np.random.default_rng(self.seed)
        # One Gaussian hyperplane per signature bit; sign(v @ plane) is
        # invariant to the positive rescaling normalization applies, so
        # signatures work on the raw tf/idf weights.
        self._hyperplanes = rng.standard_normal(
            (self.space.index.corpus_size, self.planes)
        )
        row_keys: list[tuple[bytes, ...]] = []
        buckets: list[dict[bytes, list[int]]] = [{} for _ in range(self.bands)]
        for row, token in enumerate(self._vocabulary):
            keys = self._signature_keys(self.space.token_vector(token))
            row_keys.append(keys)
            for band, key in enumerate(keys):
                buckets[band].setdefault(key, []).append(row)
        self._row_keys = row_keys
        self._buckets = buckets
        return buckets

    # -- queries ------------------------------------------------------------

    def _exact_neighborhood(self, token: str) -> frozenset[str]:
        """Full vocabulary scan — the ``recall_target=1.0`` reference.

        Byte-for-byte the same loop as
        :class:`~repro.core.prefilter.TokenNeighborhoods`, so the two
        produce identical frozensets for identical inputs.
        """
        self._exact_scans.inc()
        vector = self.space.token_vector(token)
        if not vector:
            return frozenset({token})
        related = {token}
        for candidate in self._vocabulary:
            other = self.space.token_vector(candidate)
            if other and self.space.vector_relatedness(vector, other) >= self.threshold:
                related.add(candidate)
        return frozenset(related)

    def _approximate_neighborhood(self, token: str) -> frozenset[str]:
        vector = self.space.token_vector(token)
        if not vector:
            return frozenset({token})
        buckets = self._build_buckets()
        row = self._row_of.get(token)
        if row is not None:
            assert self._row_keys is not None
            keys = self._row_keys[row]
        else:
            keys = self._signature_keys(vector)
        candidate_rows: set[int] = set()
        for band in range(self._probe_bands):
            candidate_rows.update(buckets[band].get(keys[band], ()))
        self._candidates.inc(len(candidate_rows))
        related = {token}
        for candidate_row in candidate_rows:
            candidate = self._vocabulary[candidate_row]
            other = self.space.token_vector(candidate)
            if other and self.space.vector_relatedness(vector, other) >= self.threshold:
                related.add(candidate)
        return frozenset(related)

    def _token_neighborhood(self, token: str) -> frozenset[str]:
        cached = self._by_token.get(token)
        if cached is not None:
            return cached
        self._queries.inc()
        if self.recall_target >= 1.0:
            neighborhood = self._exact_neighborhood(token)
        else:
            neighborhood = self._approximate_neighborhood(token)
        self._by_token[token] = neighborhood
        return neighborhood

    def neighbors(self, term: str) -> frozenset[str]:
        """Union of the term's tokens' neighborhoods (always ⊇ tokens)."""
        out: set[str] = set()
        for token in tokenize(term):
            out |= self._token_neighborhood(token)
        return frozenset(out)
