"""Inverted index over a :class:`~repro.semantics.documents.DocumentSet`.

Step 1 of Figure 5: the corpus is tokenized and an inverted index built
with one entry per term. Crucially (Section 4.1) the index stores the
*raw* term frequencies and per-document maxima, not only the final tf/idf
weights, because thematic projection (Algorithm 1) recomputes idf over
the thematic basis at use time.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.semantics.documents import DocumentSet
from repro.semantics.tokenize import tokenize

__all__ = ["Posting", "InvertedIndex"]


@dataclass(frozen=True)
class Posting:
    """One (term, document) entry: the raw in-document frequency."""

    doc_id: int
    frequency: int


@dataclass
class InvertedIndex:
    """Term -> postings map plus the per-document statistics tf/idf needs.

    Attributes
    ----------
    postings:
        ``term -> {doc_id: raw frequency}``.
    max_frequency:
        ``doc_id -> frequency of the most frequent term in the document``
        (the denominator of Equation 2).
    corpus_size:
        ``|D|``.
    """

    postings: dict[str, dict[int, int]] = field(default_factory=dict)
    max_frequency: dict[int, int] = field(default_factory=dict)
    corpus_size: int = 0

    @classmethod
    def build(cls, documents: DocumentSet) -> "InvertedIndex":
        """Index every document; deterministic for a given document set."""
        index = cls(corpus_size=len(documents))
        for doc_id, doc in enumerate(documents):
            counts = Counter(doc.tokens())
            if not counts:
                index.max_frequency[doc_id] = 1
                continue
            index.max_frequency[doc_id] = max(counts.values())
            for token, freq in counts.items():
                index.postings.setdefault(token, {})[doc_id] = freq
        return index

    def document_frequency(self, token: str) -> int:
        """Number of documents containing ``token`` (0 if unseen)."""
        return len(self.postings.get(token, ()))

    def frequency(self, token: str, doc_id: int) -> int:
        """Raw count of ``token`` in document ``doc_id`` (0 if absent)."""
        return self.postings.get(token, {}).get(doc_id, 0)

    def documents_containing(self, token: str) -> frozenset[int]:
        return frozenset(self.postings.get(token, ()))

    def vocabulary(self) -> frozenset[str]:
        return frozenset(self.postings)

    def __contains__(self, token: str) -> bool:
        return token in self.postings

    @staticmethod
    def tokens_of(term: str) -> list[str]:
        """Tokenize a (possibly multi-word) term with index rules."""
        return tokenize(term)
