"""Distributional-semantics substrate (Section 4 of the paper).

Builds ESA-style vector spaces from a document corpus, adds the
Parametric Vector Space Model with thematic projection (Algorithm 1),
and exposes the semantic measures and caches the matcher consumes.
"""

from repro.semantics.cache import (
    PersistentScoreStore,
    PrecomputedScoreTable,
    RelatednessCache,
    precompute_scores,
)
from repro.semantics.documents import Document, DocumentSet
from repro.semantics.index import ApproxNeighborIndex, InvertedIndex, Posting
from repro.semantics.measures import (
    CachedMeasure,
    ExactMeasure,
    NonThematicMeasure,
    PrecomputedMeasure,
    SemanticMeasure,
    ThematicMeasure,
)
from repro.semantics.persistence import (
    corpus_digest,
    load_corpus,
    load_space,
    save_corpus,
)
from repro.semantics.pvsm import ParametricVectorSpace, Theme, theme_key
from repro.semantics.space import DistributionalVectorSpace, relatedness_from_distance
from repro.semantics.tokenize import STOP_WORDS, normalize_term, tokenize
from repro.semantics.vectors import ZERO_VECTOR, SparseVector
from repro.semantics.weighting import augmented_tf, idf, tf_idf

__all__ = [
    "ApproxNeighborIndex",
    "CachedMeasure",
    "DistributionalVectorSpace",
    "Document",
    "DocumentSet",
    "ExactMeasure",
    "InvertedIndex",
    "NonThematicMeasure",
    "ParametricVectorSpace",
    "PersistentScoreStore",
    "Posting",
    "PrecomputedMeasure",
    "PrecomputedScoreTable",
    "RelatednessCache",
    "STOP_WORDS",
    "SemanticMeasure",
    "SparseVector",
    "ThematicMeasure",
    "Theme",
    "ZERO_VECTOR",
    "augmented_tf",
    "corpus_digest",
    "idf",
    "load_corpus",
    "load_space",
    "normalize_term",
    "save_corpus",
    "precompute_scores",
    "relatedness_from_distance",
    "theme_key",
    "tf_idf",
    "tokenize",
]
