"""Save/load the distributional substrate.

Indexing a corpus is the expensive, one-off part of deployment; matchers
should boot from a snapshot. This module serializes a
:class:`~repro.semantics.documents.DocumentSet` (and therefore any space
built over it) to a single JSON file, versioned and checksummed.

Only the corpus is persisted — spaces rebuild their indexes
deterministically from it, and caches re-warm on use. That keeps the
format trivial to inspect and independent of internal cache layouts.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.semantics.documents import Document, DocumentSet
from repro.semantics.pvsm import ParametricVectorSpace

__all__ = ["FORMAT_VERSION", "save_corpus", "load_corpus", "load_space", "corpus_digest"]

FORMAT_VERSION = 1


def corpus_digest(documents: DocumentSet) -> str:
    """Stable content digest of a corpus (sha256 over names and texts)."""
    hasher = hashlib.sha256()
    for doc in documents:
        hasher.update(doc.name.encode())
        hasher.update(b"\x00")
        hasher.update(doc.text.encode())
        hasher.update(b"\x01")
    return hasher.hexdigest()


def save_corpus(documents: DocumentSet, path: str | Path) -> None:
    """Write the corpus snapshot to ``path`` (JSON)."""
    payload = {
        "format": "repro-corpus",
        "version": FORMAT_VERSION,
        "digest": corpus_digest(documents),
        "documents": [
            {"name": doc.name, "text": doc.text} for doc in documents
        ],
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_corpus(path: str | Path) -> DocumentSet:
    """Read a corpus snapshot; verifies format, version and digest."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != "repro-corpus":
        raise ValueError(f"{path}: not a repro corpus snapshot")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: snapshot version {payload.get('version')} "
            f"(this build reads {FORMAT_VERSION})"
        )
    documents = DocumentSet.from_documents(
        [Document(d["name"], d["text"]) for d in payload["documents"]]
    )
    digest = corpus_digest(documents)
    if digest != payload.get("digest"):
        raise ValueError(f"{path}: digest mismatch, snapshot is corrupt")
    return documents


def load_space(path: str | Path, **space_kwargs) -> ParametricVectorSpace:
    """Load a snapshot and build a parametric space over it."""
    return ParametricVectorSpace(load_corpus(path), **space_kwargs)
