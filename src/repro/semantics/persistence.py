"""Save/load the distributional substrate.

Indexing a corpus is the expensive, one-off part of deployment; matchers
should boot from a snapshot. This module serializes a
:class:`~repro.semantics.documents.DocumentSet` (and therefore any space
built over it) to a single JSON file, versioned and checksummed.

Only the corpus is persisted in the JSON snapshot — spaces rebuild their
indexes deterministically from it, and caches re-warm on use. That keeps
the format trivial to inspect and independent of internal cache layouts.

A second, binary format serves the process-shard executor: the columnar
CSR arrays of a built space (:mod:`repro.semantics.columnar`) written as
one versioned file whose array payloads are attached **zero-copy** via
``np.memmap`` — worker processes map the same pages the parent wrote
instead of pickling the space. Layout::

    bytes 0..7    magic  b"REPROCOL"
    bytes 8..9    format version   (uint16, native order)
    bytes 10..11  endianness probe (uint16 0xFEFF, native order — a
                  snapshot written on a machine of the other endianness
                  reads back as 0xFFFE and is rejected)
    bytes 12..75  corpus digest    (64 hex ascii bytes, ties the arrays
                  to the exact corpus they were built from)
    bytes 76..79  TOC length       (uint32)
    ...           JSON TOC: corpus_size, vocabulary, and per-array
                  {dtype, shape, offset} entries (offsets 16-aligned)
    ...           raw array bytes

Array weights are bit-exact across the round trip (raw buffer copies,
no re-serialization), so a kernel over a loaded snapshot scores
identically to one over the in-memory build — the property the
process-executor parity suite pins down.
"""

from __future__ import annotations

import hashlib
import json
import struct
from pathlib import Path

import numpy as np

from repro.semantics.columnar import ColumnarIndex
from repro.semantics.documents import Document, DocumentSet
from repro.semantics.pvsm import ParametricVectorSpace

__all__ = [
    "FORMAT_VERSION",
    "COLUMNAR_FORMAT_VERSION",
    "save_corpus",
    "load_corpus",
    "load_space",
    "corpus_digest",
    "save_columnar",
    "load_columnar",
]

FORMAT_VERSION = 1

#: Version of the binary columnar layout (bumped on any layout change).
COLUMNAR_FORMAT_VERSION = 1

_COLUMNAR_MAGIC = b"REPROCOL"
#: Written in native byte order; reads back byte-swapped on the other
#: endianness, which is exactly the rejection we want (the raw array
#: payloads would be byte-swapped too).
_ENDIAN_PROBE = 0xFEFF
_ALIGN = 16


def corpus_digest(documents: DocumentSet) -> str:
    """Stable content digest of a corpus (sha256 over names and texts)."""
    hasher = hashlib.sha256()
    for doc in documents:
        hasher.update(doc.name.encode())
        hasher.update(b"\x00")
        hasher.update(doc.text.encode())
        hasher.update(b"\x01")
    return hasher.hexdigest()


def save_corpus(documents: DocumentSet, path: str | Path) -> None:
    """Write the corpus snapshot to ``path`` (JSON)."""
    payload = {
        "format": "repro-corpus",
        "version": FORMAT_VERSION,
        "digest": corpus_digest(documents),
        "documents": [
            {"name": doc.name, "text": doc.text} for doc in documents
        ],
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_corpus(path: str | Path) -> DocumentSet:
    """Read a corpus snapshot; verifies format, version and digest."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != "repro-corpus":
        raise ValueError(f"{path}: not a repro corpus snapshot")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: snapshot version {payload.get('version')} "
            f"(this build reads {FORMAT_VERSION})"
        )
    documents = DocumentSet.from_documents(
        [Document(d["name"], d["text"]) for d in payload["documents"]]
    )
    digest = corpus_digest(documents)
    if digest != payload.get("digest"):
        raise ValueError(f"{path}: digest mismatch, snapshot is corrupt")
    return documents


def load_space(path: str | Path, **space_kwargs) -> ParametricVectorSpace:
    """Load a snapshot and build a parametric space over it."""
    return ParametricVectorSpace(load_corpus(path), **space_kwargs)


# -- binary columnar layout (zero-copy worker attach) ----------------------


def save_columnar(
    columnar: ColumnarIndex, path: str | Path, *, digest: str
) -> None:
    """Write the columnar arrays as one binary snapshot (see module doc).

    ``digest`` must be the :func:`corpus_digest` of the corpus the
    arrays were built from; :func:`load_columnar` verifies it so workers
    can never attach to a space built over a different corpus.
    """
    if len(digest) != 64:
        raise ValueError("digest must be a 64-char sha256 hexdigest")
    arrays = columnar.arrays()
    toc_arrays: dict[str, dict] = {}
    header_probe_len = len(_COLUMNAR_MAGIC) + 2 + 2 + 64 + 4
    # The TOC length depends on the offsets, which depend on the TOC
    # length; offsets are computed against a fixed-width rendering so
    # one pass suffices.
    offset_field = "{:>12d}"
    entries = {}
    for name, array in arrays.items():
        entries[name] = {
            "dtype": str(array.dtype),
            "shape": list(array.shape),
            "offset": offset_field.format(0),
        }
    skeleton = {
        "corpus_size": columnar.corpus_size,
        "vocabulary": list(columnar.vocabulary),
        "arrays": entries,
    }
    toc_len = len(json.dumps(skeleton).encode())
    cursor = header_probe_len + toc_len
    for name, array in arrays.items():
        cursor += (-cursor) % _ALIGN
        entries[name]["offset"] = offset_field.format(cursor)
        cursor += array.nbytes
    payload = json.dumps(skeleton).encode()
    if len(payload) != toc_len:
        raise AssertionError("columnar TOC length drifted during layout")
    with open(path, "wb") as handle:
        handle.write(_COLUMNAR_MAGIC)
        handle.write(struct.pack("=HH", COLUMNAR_FORMAT_VERSION, _ENDIAN_PROBE))
        handle.write(digest.encode("ascii"))
        handle.write(struct.pack("=I", toc_len))
        handle.write(payload)
        for name, array in arrays.items():
            offset = int(entries[name]["offset"])
            handle.write(b"\x00" * (offset - handle.tell()))
            handle.write(np.ascontiguousarray(array).tobytes())


def load_columnar(
    path: str | Path, *, expected_digest: str | None = None
) -> tuple[ColumnarIndex, str]:
    """Attach a columnar snapshot zero-copy; returns ``(index, digest)``.

    Array payloads come back as read-only ``np.memmap`` views — worker
    processes share the page cache instead of materializing copies.
    Verifies magic, layout version, endianness probe, and (when
    ``expected_digest`` is given) the corpus digest.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        magic = handle.read(len(_COLUMNAR_MAGIC))
        if magic != _COLUMNAR_MAGIC:
            raise ValueError(f"{path}: not a repro columnar snapshot")
        version, probe = struct.unpack("=HH", handle.read(4))
        if probe != _ENDIAN_PROBE:
            raise ValueError(
                f"{path}: endianness mismatch — snapshot written on a "
                "machine of the opposite byte order"
            )
        if version != COLUMNAR_FORMAT_VERSION:
            raise ValueError(
                f"{path}: columnar layout version {version} "
                f"(this build reads {COLUMNAR_FORMAT_VERSION})"
            )
        digest = handle.read(64).decode("ascii")
        (toc_len,) = struct.unpack("=I", handle.read(4))
        toc = json.loads(handle.read(toc_len).decode())
    if expected_digest is not None and digest != expected_digest:
        raise ValueError(
            f"{path}: corpus digest mismatch — snapshot was built from a "
            "different corpus"
        )
    views: dict[str, np.ndarray] = {}
    for name, entry in toc["arrays"].items():
        views[name] = np.memmap(
            path,
            dtype=np.dtype(entry["dtype"]),
            mode="r",
            offset=int(entry["offset"]),
            shape=tuple(entry["shape"]),
        )
    columnar = ColumnarIndex(
        tuple(toc["vocabulary"]),
        views["indptr"],
        views["doc_ids"],
        views["freqs"],
        views["tfidf"],
        views["max_frequency"],
        int(toc["corpus_size"]),
    )
    return columnar, digest
