"""Save/load the distributional substrate.

Indexing a corpus is the expensive, one-off part of deployment; matchers
should boot from a snapshot. This module serializes a
:class:`~repro.semantics.documents.DocumentSet` (and therefore any space
built over it) to a single JSON file, versioned and checksummed.

Only the corpus is persisted in the JSON snapshot — spaces rebuild their
indexes deterministically from it, and caches re-warm on use. That keeps
the format trivial to inspect and independent of internal cache layouts.

A second, binary format family serves zero-copy attach: named numpy
arrays written as one versioned file whose payloads map back via
read-only ``np.memmap`` — consumers share the page cache instead of
materializing copies. Two snapshot kinds use it, each with its own
magic and version: the columnar CSR arrays of a built space
(:mod:`repro.semantics.columnar`, attached by process-shard workers)
and the persistent precomputed-score store
(:class:`~repro.semantics.cache.PersistentScoreStore`, produced by
``repro warm-cache``). Shared layout::

    bytes 0..7    magic  (b"REPROCOL" columnar / b"REPROSCT" score store)
    bytes 8..9    format version   (uint16, native order)
    bytes 10..11  endianness probe (uint16 0xFEFF, native order — a
                  snapshot written on a machine of the other endianness
                  reads back as 0xFFFE and is rejected)
    bytes 12..75  corpus digest    (64 hex ascii bytes, ties the arrays
                  to the exact corpus they were built from)
    bytes 76..79  TOC length       (uint32)
    ...           JSON TOC: kind-specific metadata plus per-array
                  {dtype, shape, offset} entries (offsets 16-aligned)
    ...           raw array bytes

Array weights are bit-exact across the round trip (raw buffer copies,
no re-serialization), so a kernel over a loaded snapshot scores
identically to one over the in-memory build — the property the
process-executor parity suite pins down, and likewise a loaded score
store answers bit-identically to the in-memory table it was built from.
"""

from __future__ import annotations

import hashlib
import json
import struct
from pathlib import Path
from typing import Any

import numpy as np

from repro.obs import MetricsRegistry
from repro.semantics.cache import PersistentScoreStore
from repro.semantics.columnar import ColumnarIndex
from repro.semantics.documents import Document, DocumentSet
from repro.semantics.pvsm import ParametricVectorSpace

__all__ = [
    "FORMAT_VERSION",
    "COLUMNAR_FORMAT_VERSION",
    "SCORE_STORE_FORMAT_VERSION",
    "save_corpus",
    "load_corpus",
    "load_space",
    "corpus_digest",
    "save_columnar",
    "load_columnar",
    "save_score_store",
    "load_score_store",
]

FORMAT_VERSION = 1

#: Version of the binary columnar layout (bumped on any layout change).
COLUMNAR_FORMAT_VERSION = 1

#: Version of the binary score-store layout (bumped on any layout change).
SCORE_STORE_FORMAT_VERSION = 1

_COLUMNAR_MAGIC = b"REPROCOL"
_SCORE_MAGIC = b"REPROSCT"
#: Written in native byte order; reads back byte-swapped on the other
#: endianness, which is exactly the rejection we want (the raw array
#: payloads would be byte-swapped too).
_ENDIAN_PROBE = 0xFEFF
_ALIGN = 16


def corpus_digest(documents: DocumentSet) -> str:
    """Stable content digest of a corpus (sha256 over names and texts)."""
    hasher = hashlib.sha256()
    for doc in documents:
        hasher.update(doc.name.encode())
        hasher.update(b"\x00")
        hasher.update(doc.text.encode())
        hasher.update(b"\x01")
    return hasher.hexdigest()


def save_corpus(documents: DocumentSet, path: str | Path) -> None:
    """Write the corpus snapshot to ``path`` (JSON)."""
    payload = {
        "format": "repro-corpus",
        "version": FORMAT_VERSION,
        "digest": corpus_digest(documents),
        "documents": [
            {"name": doc.name, "text": doc.text} for doc in documents
        ],
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_corpus(path: str | Path) -> DocumentSet:
    """Read a corpus snapshot; verifies format, version and digest."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != "repro-corpus":
        raise ValueError(f"{path}: not a repro corpus snapshot")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: snapshot version {payload.get('version')} "
            f"(this build reads {FORMAT_VERSION})"
        )
    documents = DocumentSet.from_documents(
        [Document(d["name"], d["text"]) for d in payload["documents"]]
    )
    digest = corpus_digest(documents)
    if digest != payload.get("digest"):
        raise ValueError(f"{path}: digest mismatch, snapshot is corrupt")
    return documents


def load_space(path: str | Path, **space_kwargs: Any) -> ParametricVectorSpace:
    """Load a snapshot and build a parametric space over it."""
    return ParametricVectorSpace(load_corpus(path), **space_kwargs)


# -- binary array snapshots (zero-copy attach) ------------------------------


def _write_snapshot(
    path: str | Path,
    *,
    magic: bytes,
    version: int,
    digest: str,
    meta: dict,
    arrays: dict[str, np.ndarray],
) -> None:
    """Write one named-array snapshot in the shared binary layout."""
    if len(digest) != 64:
        raise ValueError("digest must be a 64-char sha256 hexdigest")
    header_probe_len = len(magic) + 2 + 2 + 64 + 4
    # The TOC length depends on the offsets, which depend on the TOC
    # length; offsets are computed against a fixed-width rendering so
    # one pass suffices.
    offset_field = "{:>12d}"
    entries = {}
    for name, array in arrays.items():
        entries[name] = {
            "dtype": str(array.dtype),
            "shape": list(array.shape),
            "offset": offset_field.format(0),
        }
    skeleton = dict(meta)
    skeleton["arrays"] = entries
    toc_len = len(json.dumps(skeleton).encode())
    cursor = header_probe_len + toc_len
    for name, array in arrays.items():
        cursor += (-cursor) % _ALIGN
        entries[name]["offset"] = offset_field.format(cursor)
        cursor += array.nbytes
    payload = json.dumps(skeleton).encode()
    if len(payload) != toc_len:
        raise AssertionError("snapshot TOC length drifted during layout")
    with open(path, "wb") as handle:
        handle.write(magic)
        handle.write(struct.pack("=HH", version, _ENDIAN_PROBE))
        handle.write(digest.encode("ascii"))
        handle.write(struct.pack("=I", toc_len))
        handle.write(payload)
        for name, array in arrays.items():
            offset = int(entries[name]["offset"])
            handle.write(b"\x00" * (offset - handle.tell()))
            handle.write(np.ascontiguousarray(array).tobytes())


def _read_snapshot(
    path: str | Path,
    *,
    magic: bytes,
    version: int,
    kind: str,
    expected_digest: str | None = None,
) -> tuple[dict, dict[str, np.ndarray], str]:
    """Attach one snapshot zero-copy; returns ``(toc, views, digest)``.

    Array payloads come back as read-only ``np.memmap`` views. Verifies
    magic, layout version, endianness probe, and (when
    ``expected_digest`` is given) the corpus digest.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        found = handle.read(len(magic))
        if found != magic:
            raise ValueError(f"{path}: not a repro {kind} snapshot")
        found_version, probe = struct.unpack("=HH", handle.read(4))
        if probe != _ENDIAN_PROBE:
            raise ValueError(
                f"{path}: endianness mismatch — snapshot written on a "
                "machine of the opposite byte order"
            )
        if found_version != version:
            raise ValueError(
                f"{path}: {kind} layout version {found_version} "
                f"(this build reads {version})"
            )
        digest = handle.read(64).decode("ascii")
        (toc_len,) = struct.unpack("=I", handle.read(4))
        toc = json.loads(handle.read(toc_len).decode())
    if expected_digest is not None and digest != expected_digest:
        raise ValueError(
            f"{path}: corpus digest mismatch — snapshot was built from a "
            "different corpus"
        )
    views: dict[str, np.ndarray] = {}
    for name, entry in toc["arrays"].items():
        views[name] = np.memmap(
            path,
            dtype=np.dtype(entry["dtype"]),
            mode="r",
            offset=int(entry["offset"]),
            shape=tuple(entry["shape"]),
        )
    return toc, views, digest


def save_columnar(
    columnar: ColumnarIndex, path: str | Path, *, digest: str
) -> None:
    """Write the columnar arrays as one binary snapshot (see module doc).

    ``digest`` must be the :func:`corpus_digest` of the corpus the
    arrays were built from; :func:`load_columnar` verifies it so workers
    can never attach to a space built over a different corpus.
    """
    _write_snapshot(
        path,
        magic=_COLUMNAR_MAGIC,
        version=COLUMNAR_FORMAT_VERSION,
        digest=digest,
        meta={
            "corpus_size": columnar.corpus_size,
            "vocabulary": list(columnar.vocabulary),
        },
        arrays=columnar.arrays(),
    )


def load_columnar(
    path: str | Path, *, expected_digest: str | None = None
) -> tuple[ColumnarIndex, str]:
    """Attach a columnar snapshot zero-copy; returns ``(index, digest)``.

    Array payloads come back as read-only ``np.memmap`` views — worker
    processes share the page cache instead of materializing copies.
    Verifies magic, layout version, endianness probe, and (when
    ``expected_digest`` is given) the corpus digest.
    """
    toc, views, digest = _read_snapshot(
        path,
        magic=_COLUMNAR_MAGIC,
        version=COLUMNAR_FORMAT_VERSION,
        kind="columnar",
        expected_digest=expected_digest,
    )
    columnar = ColumnarIndex(
        tuple(toc["vocabulary"]),
        views["indptr"],
        views["doc_ids"],
        views["freqs"],
        views["tfidf"],
        views["max_frequency"],
        int(toc["corpus_size"]),
    )
    return columnar, digest


def save_score_store(store: PersistentScoreStore, path: str | Path) -> None:
    """Write a score store as one binary snapshot (see module doc).

    The store's own :attr:`~PersistentScoreStore.corpus_digest` goes in
    the header, so the loader can refuse a store warmed against a
    different corpus. Parent directories are created as needed — the
    warmer CLI points ``--out`` at artifact paths that may not exist
    yet.
    """
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    _write_snapshot(
        path,
        magic=_SCORE_MAGIC,
        version=SCORE_STORE_FORMAT_VERSION,
        digest=store.corpus_digest,
        meta={"entries": len(store)},
        arrays=store.arrays(),
    )


def load_score_store(
    path: str | Path,
    *,
    expected_digest: str | None = None,
    registry: MetricsRegistry | None = None,
) -> PersistentScoreStore:
    """Attach a score-store snapshot zero-copy.

    The key/score columns come back as read-only ``np.memmap`` views —
    pages load on first probe. Call
    :meth:`~PersistentScoreStore.warm` to materialize them into RAM.
    """
    _toc, views, digest = _read_snapshot(
        path,
        magic=_SCORE_MAGIC,
        version=SCORE_STORE_FORMAT_VERSION,
        kind="score-store",
        expected_digest=expected_digest,
    )
    return PersistentScoreStore(
        views["key_hi"],
        views["key_lo"],
        views["scores"],
        corpus_digest=digest,
        registry=registry,
    )
