"""Tokenization and stop-word removal for the distributional substrate.

Section 4.1 of the paper: "each document is tokenized into terms, stop
words are removed, and an inverted index is built". This module provides
that first stage. The tokenizer is deliberately simple and deterministic:
lowercase, split on non-alphanumeric boundaries, drop stop words and
one-character fragments. Multi-word terms (e.g. ``"energy consumption"``)
tokenize into their constituent words; vector composition for multi-word
terms happens in :mod:`repro.semantics.space`.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator
from functools import lru_cache

__all__ = ["STOP_WORDS", "stem", "tokenize", "normalize_term", "iter_terms"]

#: Minimal English stop-word list. Kept small on purpose: the synthetic
#: corpus (see :mod:`repro.knowledge.corpus`) is built from controlled
#: vocabulary, so an exhaustive list buys nothing but risk of dropping a
#: domain word.
STOP_WORDS: frozenset[str] = frozenset(
    {
        "a", "an", "and", "are", "as", "at", "be", "but", "by", "for",
        "from", "has", "have", "if", "in", "into", "is", "it", "its",
        "no", "not", "of", "on", "or", "s", "such", "t", "that", "the",
        "their", "then", "there", "these", "they", "this", "to", "was",
        "were", "will", "with",
    }
)

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def stem(token: str) -> str:
    """Light plural stemmer so ``computers`` and ``computer`` coincide.

    The paper's own example themes use plural tags ("computers") against
    singular corpus terms; Wikipedia-scale corpora absorb that morphology
    naturally, our controlled corpus needs this standard IR conflation
    step instead. Rules are intentionally conservative: ``-ies -> -y``,
    drop a trailing ``-s`` unless the word is short or ends in ``-ss``,
    ``-us`` or ``-is`` (bus, glass, analysis).
    """
    if len(token) > 4 and token.endswith("ies"):
        return token[:-3] + "y"
    if (
        len(token) > 3
        and token.endswith("s")
        and not token.endswith(("ss", "us", "is"))
    ):
        return token[:-1]
    return token


def tokenize(text: str, *, stop_words: frozenset[str] = STOP_WORDS) -> list[str]:
    """Split ``text`` into lowercase stemmed tokens, dropping stop words.

    >>> tokenize("Increased Energy-Consumption event!")
    ['increased', 'energy', 'consumption', 'event']
    >>> tokenize("computers")
    ['computer']
    """
    tokens = _TOKEN_RE.findall(text.lower())
    return [
        stem(tok) for tok in tokens if len(tok) > 1 and tok not in stop_words
    ]


@lru_cache(maxsize=262144)
def normalize_term(term: str) -> str:
    """Canonical single-string form of a (possibly multi-word) term.

    Terms compare case-insensitively with collapsed whitespace and
    punctuation. ``normalize_term("Energy_Consumption ")`` ==
    ``"energy consumption"``. Used wherever terms act as dictionary keys
    (exact matching, caches, thesaurus lookup); it sits on the matcher's
    hottest path, hence the memoization.
    """
    return " ".join(_TOKEN_RE.findall(term.lower()))


def iter_terms(texts: Iterable[str]) -> Iterator[str]:
    """Yield every token from every text in ``texts`` in order."""
    for text in texts:
        yield from tokenize(text)
