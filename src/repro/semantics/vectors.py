"""Sparse vector algebra over the document basis.

Term vectors in the distributional space (Equation 1) are extremely
sparse — a term touches a handful of documents out of thousands — so we
represent them as immutable mappings ``doc_id -> weight`` and implement
exactly the operations the matcher needs: addition, scaling, restriction
to a basis (the projection primitive of Algorithm 1), Euclidean distance
(Equation 5) and cosine similarity.

Zero weights are never stored; ``support()`` is therefore the set of
documents with strictly positive or negative weight.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from typing import Any

__all__ = ["SparseVector", "ZERO_VECTOR"]


class SparseVector:
    """Immutable sparse vector keyed by integer document ids."""

    __slots__ = ("_components", "_norm", "_normalized")

    def __init__(
        self, components: Mapping[int, float] | Iterable[tuple[int, float]] = ()
    ) -> None:
        items = components.items() if isinstance(components, Mapping) else components
        self._components: dict[int, float] = {
            dim: float(w) for dim, w in items if w != 0.0
        }
        # `w != 0.0` is True for NaN, so a poisoned weight would be
        # *stored* and silently corrupt every downstream norm/dot —
        # worse, the scalar and vectorized kernels would disagree on how
        # the poison propagates. Reject it at the boundary instead.
        for dim, w in self._components.items():
            if w != w:
                raise ValueError(f"NaN weight at dimension {dim}")
        self._norm: float | None = None
        self._normalized: "SparseVector | None" = None

    # -- basic accessors -------------------------------------------------

    def __getitem__(self, dim: int) -> float:
        return self._components.get(dim, 0.0)

    def __len__(self) -> int:
        return len(self._components)

    def __bool__(self) -> bool:
        return bool(self._components)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return self._components == other._components

    def __hash__(self) -> int:
        return hash(frozenset(self._components.items()))

    def __repr__(self) -> str:
        head = sorted(self._components.items())[:4]
        more = "" if len(self._components) <= 4 else f", ... {len(self) - 4} more"
        inner = ", ".join(f"{d}: {w:.4g}" for d, w in head)
        return f"SparseVector({{{inner}{more}}})"

    def items(self) -> Iterable[tuple[int, float]]:
        return self._components.items()

    def support(self) -> frozenset[int]:
        """Dimensions (document ids) with non-zero weight."""
        return frozenset(self._components)

    def to_dict(self) -> dict[int, float]:
        return dict(self._components)

    # -- algebra ---------------------------------------------------------

    def add(self, other: "SparseVector") -> "SparseVector":
        if not other:
            return self
        merged = dict(self._components)
        for dim, weight in other._components.items():
            merged[dim] = merged.get(dim, 0.0) + weight
        return SparseVector(merged)

    def scale(self, factor: float) -> "SparseVector":
        if factor == 0.0:
            return ZERO_VECTOR
        return SparseVector({d: w * factor for d, w in self._components.items()})

    def dot(self, other: "SparseVector") -> float:
        small, large = self._components, other._components
        if len(large) < len(small):
            small, large = large, small
        return sum(w * large[d] for d, w in small.items() if d in large)

    def norm(self) -> float:
        """Euclidean (L2) norm; cached because vectors are immutable.

        ``math.hypot`` rather than ``sqrt(sum(w*w))``: it rescales
        internally, so components near the float extremes neither
        underflow to subnormals nor overflow when squared.
        """
        if self._norm is None:
            self._norm = math.hypot(*self._components.values())
        return self._norm

    def normalized(self) -> "SparseVector":
        """Unit-length copy; the zero vector normalizes to itself.

        Memoized, like :meth:`norm` — distance computations normalize
        their operands on every call, and the operands are long-lived
        cached projections, so without memoization the same scaled copy
        is rebuilt for every term pair that touches the vector. (The
        benign-race caveat of CPython attribute stores applies: two
        threads may build the copy concurrently; both results are
        identical and either may win.)
        """
        if self._normalized is None:
            norm = self.norm()
            if norm == 0.0:
                self._normalized = ZERO_VECTOR
            else:
                components = self._components
                if norm < 2.0**-1022:
                    # Subnormal norm: dividing subnormal components by a
                    # subnormal norm quantizes to the 5e-324 grid and the
                    # "unit" result can be off by a whole ulp ratio.
                    # Scaling by an exact power of two first lifts every
                    # component onto the normal grid (no overflow: all
                    # components are < 2**-1022, so scaled < 2**-510).
                    components = {
                        d: w * 2.0**512 for d, w in components.items()
                    }
                    norm = math.hypot(*components.values())
                # Divide rather than scale by 1/norm: the reciprocal of
                # a tiny norm overflows to inf.
                self._normalized = SparseVector(
                    {d: w / norm for d, w in components.items()}
                )
        return self._normalized

    def restrict(self, basis: frozenset[int] | set[int]) -> "SparseVector":
        """Zero every component outside ``basis`` (projection primitive)."""
        return SparseVector(
            {d: w for d, w in self._components.items() if d in basis}
        )

    # -- distances (Equation 5) -------------------------------------------

    def euclidean_distance(self, other: "SparseVector") -> float:
        """Plain Euclidean distance over the union of supports."""
        # ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b  — cheaper than iterating
        # the union of supports and numerically fine at our magnitudes.
        squared = self.norm() ** 2 + other.norm() ** 2 - 2.0 * self.dot(other)
        return math.sqrt(max(squared, 0.0))

    def cosine_similarity(self, other: "SparseVector") -> float:
        denom = self.norm() * other.norm()
        if denom == 0.0:
            return 0.0
        # Clamp for floating error so callers can rely on [-1, 1].
        return max(-1.0, min(1.0, self.dot(other) / denom))


#: Shared empty vector; also what a projection returns when a term has no
#: overlap with the thematic basis.
ZERO_VECTOR = SparseVector()
