"""Columnar (CSR) backing for the distributional space.

The scalar path stores one ``dict[int, float]`` per term vector — ideal
for incremental, cache-friendly single-pair scoring, hopeless for bulk
work: every batch re-walks thousands of tiny dicts through the
interpreter. This module lays the *same* information out once per corpus
as a term-by-document CSR matrix:

* ``indptr`` (int64, ``V + 1``) — row extents, one row per vocabulary
  token in sorted token order;
* ``doc_ids`` (int32, nnz) — column indices, sorted within each row;
* ``freqs`` (int32, nnz) — the *raw* in-document frequencies, kept (like
  :class:`~repro.semantics.index.InvertedIndex` keeps them) because
  thematic projection recomputes idf against the sub-corpus at use time;
* ``tfidf`` (float64, nnz) — the full-space Equation 4 weights,
  element-for-element bit-identical to the scalar
  :meth:`~repro.semantics.space.DistributionalVectorSpace.token_vector`
  weights (same augmented-tf expression, same ``math.log`` idf);
* ``max_frequency`` (int32, ``|D|``) — the Equation 2 denominators.

The arrays are plain numpy buffers, so the whole structure can be
written to disk once and attached zero-copy by worker processes via
``np.memmap`` (see :mod:`repro.semantics.persistence`) — construction
from existing buffers never copies.
"""

from __future__ import annotations

import math

import numpy as np

from repro.semantics.index import InvertedIndex

__all__ = ["ColumnarIndex"]


class ColumnarIndex:
    """Immutable CSR view of an inverted index (see module docstring).

    Rows are vocabulary tokens in sorted order; :meth:`row` resolves a
    token to its ``(doc_ids, freqs, tfidf)`` slices without copying.
    """

    __slots__ = (
        "vocabulary",
        "indptr",
        "doc_ids",
        "freqs",
        "tfidf",
        "max_frequency",
        "corpus_size",
        "_row_of",
    )

    def __init__(
        self,
        vocabulary: tuple[str, ...],
        indptr: np.ndarray,
        doc_ids: np.ndarray,
        freqs: np.ndarray,
        tfidf: np.ndarray,
        max_frequency: np.ndarray,
        corpus_size: int,
    ) -> None:
        if len(indptr) != len(vocabulary) + 1:
            raise ValueError("indptr length must be len(vocabulary) + 1")
        if not (len(doc_ids) == len(freqs) == len(tfidf)):
            raise ValueError("doc_ids, freqs and tfidf must be aligned")
        self.vocabulary = vocabulary
        self.indptr = indptr
        self.doc_ids = doc_ids
        self.freqs = freqs
        self.tfidf = tfidf
        self.max_frequency = max_frequency
        self.corpus_size = corpus_size
        self._row_of = {token: i for i, token in enumerate(vocabulary)}

    @classmethod
    def build(cls, index: InvertedIndex) -> "ColumnarIndex":
        """Lay out ``index`` as CSR arrays; deterministic per corpus."""
        vocabulary = tuple(sorted(index.postings))
        size = index.corpus_size
        max_frequency = np.zeros(size, dtype=np.int32)
        for doc_id, max_freq in index.max_frequency.items():
            max_frequency[doc_id] = max_freq
        indptr = np.zeros(len(vocabulary) + 1, dtype=np.int64)
        chunks_docs: list[np.ndarray] = []
        chunks_freqs: list[np.ndarray] = []
        chunks_tfidf: list[np.ndarray] = []
        total = 0
        for i, token in enumerate(vocabulary):
            postings = index.postings[token]
            docs = np.fromiter(postings, dtype=np.int32, count=len(postings))
            order = np.argsort(docs, kind="stable")
            docs = docs[order]
            freqs = np.fromiter(
                postings.values(), dtype=np.int32, count=len(postings)
            )[order]
            # Same float expression as the scalar tf_idf(): the augmented
            # tf term `0.5 + 0.5 * freq / max_freq` evaluates with the
            # identical IEEE operation order elementwise, and idf uses
            # the same math.log over a Python true division, so every
            # stored weight is bit-identical to the dict path's.
            token_idf = math.log(size / len(postings))
            tf = 0.5 + 0.5 * freqs / max_frequency[docs]
            chunks_docs.append(docs)
            chunks_freqs.append(freqs)
            chunks_tfidf.append(tf * token_idf)
            total += len(postings)
            indptr[i + 1] = total
        if chunks_docs:
            doc_ids = np.concatenate(chunks_docs)
            freqs_all = np.concatenate(chunks_freqs)
            tfidf = np.concatenate(chunks_tfidf)
        else:
            doc_ids = np.zeros(0, dtype=np.int32)
            freqs_all = np.zeros(0, dtype=np.int32)
            tfidf = np.zeros(0, dtype=np.float64)
        return cls(
            vocabulary,
            indptr,
            doc_ids,
            freqs_all,
            tfidf,
            max_frequency,
            size,
        )

    # -- accessors ---------------------------------------------------------

    @property
    def nnz(self) -> int:
        return len(self.doc_ids)

    def __len__(self) -> int:
        return len(self.vocabulary)

    def __contains__(self, token: str) -> bool:
        return token in self._row_of

    def row(self, token: str) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """``(doc_ids, freqs, tfidf)`` slices of one token; None if unseen."""
        i = self._row_of.get(token)
        if i is None:
            return None
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        return (
            self.doc_ids[lo:hi],
            self.freqs[lo:hi],
            self.tfidf[lo:hi],
        )

    def arrays(self) -> dict[str, np.ndarray]:
        """The five backing arrays, keyed by their on-disk names."""
        return {
            "indptr": self.indptr,
            "doc_ids": self.doc_ids,
            "freqs": self.freqs,
            "tfidf": self.tfidf,
            "max_frequency": self.max_frequency,
        }
