"""The Parametric Vector Space Model (PVSM) of Section 4.

The PVSM is built exactly like the non-thematic space — index the corpus
once — but at *use* time every term vector is first **projected** onto
the thematic sub-space spanned by the documents that define the theme
tags (Figure 5, steps 2–3; Algorithm 1). Projection both disambiguates
(only in-theme senses of a term survive) and shrinks vectors (fewer
dimensions → faster distance computation), which is the mechanism behind
both headline results of the paper.

Algorithm 1, restated:

1. ``th_vec`` = distributional vector of the theme (sum over its tags);
2. the thematic basis ``B`` = documents where ``th_vec`` > 0;
3. the projected term vector has 0 outside ``B``; inside ``B`` it keeps
   the original augmented tf but *recomputes idf against the sub-corpus*:
   ``idf = log(|B| / |{d in B : t in d}|)``.

Projection is ``O(|V|)`` in the non-zero components, as the paper notes.
Projected vectors are cached per ``(term, theme)``; themes are canonical
frozensets so tag order and case never split the cache.
"""

from __future__ import annotations

from collections.abc import Iterable
from functools import lru_cache

from repro.obs import TRACER
from repro.semantics.documents import DocumentSet
from repro.semantics.space import DistributionalVectorSpace
from repro.semantics.tokenize import normalize_term, tokenize
from repro.semantics.vectors import ZERO_VECTOR, SparseVector
from repro.semantics.weighting import augmented_tf, idf

__all__ = ["Theme", "theme_key", "ParametricVectorSpace"]

#: A theme is a set of free-form tags (single- or multi-word terms).
Theme = frozenset[str]


@lru_cache(maxsize=65536)
def _theme_key_cached(tags: frozenset) -> tuple[str, ...]:
    return tuple(sorted({normalize_term(t) for t in tags} - {""}))


def theme_key(tags: Iterable[str]) -> tuple[str, ...]:
    """Canonical, hashable, order/case-insensitive form of a theme.

    Empty strings normalize away entirely and are dropped. Memoized:
    events and subscriptions carry themes as (often shared) frozensets,
    and this function runs once per semantic-measure call.
    """
    if not isinstance(tags, frozenset):
        tags = frozenset(tags)
    return _theme_key_cached(tags)


class ParametricVectorSpace(DistributionalVectorSpace):
    """Distributional space whose vectors can be thematically projected.

    Extends :class:`DistributionalVectorSpace`; with an empty theme every
    operation degenerates to the non-thematic behaviour, so a single
    space instance serves both the thematic matcher and the non-thematic
    baseline.
    """

    def __init__(
        self,
        documents: DocumentSet,
        *,
        normalize: bool = True,
        metric: str = "euclidean",
        recompute_idf: bool = True,
    ) -> None:
        """``recompute_idf=False`` replaces Algorithm 1's sub-corpus idf
        recomputation with naive masking (keep the full-space tf/idf
        weight, zero out-of-basis components) — the ablation variant of
        the design choice DESIGN.md calls out."""
        super().__init__(documents, normalize=normalize, metric=metric)
        self.recompute_idf = recompute_idf
        self._bases: dict[tuple[str, ...], frozenset[int]] = {}
        self._projections: dict[tuple[str, tuple[str, ...]], SparseVector] = {}
        self._common_bases: dict[
            tuple[tuple[str, ...], tuple[str, ...]], frozenset[int]
        ] = {}
        self._restricted: dict[
            tuple[str, tuple[str, ...], tuple[str, ...]], SparseVector
        ] = {}

    # -- thematic basis (Figure 5, steps 2-3) ------------------------------

    def theme_basis(self, theme: Iterable[str]) -> frozenset[int]:
        """Documents spanning the theme: support of the theme's vector.

        The theme vector is the sum of its tags' vectors, so the basis is
        the union of the tags' supports. An empty theme spans the whole
        corpus (no filtering); a theme of entirely unknown tags spans
        nothing and every projection through it is the zero vector.
        """
        key = theme_key(theme)
        cached = self._bases.get(key)
        if cached is not None:
            return cached
        if not key:
            basis = frozenset(range(self.index.corpus_size))
        else:
            support: set[int] = set()
            for tag in key:
                support |= self.term_vector(tag).support()
            basis = frozenset(support)
        self._bases[key] = basis
        return basis

    # -- Algorithm 1 -------------------------------------------------------

    def project(self, term: str, theme: Iterable[str]) -> SparseVector:
        """Thematic projection of ``term`` given ``theme`` (Algorithm 1).

        Multi-word terms are projected token-by-token and summed, matching
        the additive composition of
        :meth:`~repro.semantics.space.DistributionalVectorSpace.term_vector`.
        """
        key = theme_key(theme)
        term_norm = normalize_term(term)
        cache_key = (term_norm, key)
        cached = self._projections.get(cache_key)
        if cached is not None:
            return cached
        if not key:
            vector = self.term_vector(term_norm)
        else:
            # The span covers only the cache-miss work: repeated lookups
            # are dict hits and would drown the projection timings.
            with TRACER.span("semantics.project", tags=len(key)):
                basis = self.theme_basis(key)
                vector = ZERO_VECTOR
                for token in tokenize(term_norm):
                    vector = vector.add(self._project_token(token, basis))
        self._projections[cache_key] = vector
        return vector

    def _project_token(self, token: str, basis: frozenset[int]) -> SparseVector:
        if not basis:
            return ZERO_VECTOR
        postings = self.index.postings.get(token)
        if not postings:
            return ZERO_VECTOR
        in_basis = [doc_id for doc_id in postings if doc_id in basis]
        if not in_basis:
            return ZERO_VECTOR
        if not self.recompute_idf:  # naive-masking ablation
            return self.token_vector(token).restrict(basis)
        sub_idf = idf(len(basis), len(in_basis))
        return SparseVector(
            {
                doc_id: augmented_tf(postings[doc_id], self.index.max_frequency[doc_id])
                * sub_idf
                for doc_id in in_basis
            }
        )

    # -- thematic relatedness (Figure 5, step 4) ---------------------------

    def thematic_relatedness(
        self,
        term_s: str,
        theme_s: Iterable[str],
        term_e: str,
        theme_e: Iterable[str],
        *,
        mode: str = "common",
    ) -> float:
        """``sm(th_s, t_s, th_e, t_e)`` of Section 4.3.

        Projects the subscription term by the subscription theme and the
        event term by the event theme, then measures vector distance and
        maps it to relatedness (Equations 5–6).

        ``mode`` selects how the two thematic sub-spaces combine for the
        distance step:

        * ``"common"`` (default) — the distance is computed over the
          *common dimensions* of the two thematic bases: each projected
          vector is restricted to the intersection before normalization.
          This matches the paper's own account of its cost behaviour
          ("two equal sets of thematic tags ... causes more common
          dimensions for the semantic measure to be calculated") and of
          the diagonal's reduced discriminativeness; with nested themes
          it removes the norm penalty a wider-themed vector would
          otherwise pay for mass the other side cannot see.
        * ``"own"`` — the literal per-side reading of Algorithm 1: each
          vector stays in its own thematic sub-space. Kept for the
          ablation bench.
        """
        if mode not in ("common", "own"):
            raise ValueError(f"unknown thematic mode {mode!r}")
        with TRACER.span("semantics.relatedness"):
            key_s, key_e = theme_key(theme_s), theme_key(theme_e)
            if mode == "common" and key_s != key_e:
                left = self._project_common(term_s, key_s, key_e)
                right = self._project_common(term_e, key_e, key_s)
            else:
                left = self.project(term_s, key_s)
                right = self.project(term_e, key_e)
            return self.vector_relatedness(left, right)

    def common_basis(
        self, theme_a: Iterable[str], theme_b: Iterable[str]
    ) -> frozenset[int]:
        """Common dimensions of two themes' bases (cached, symmetric)."""
        key_a, key_b = theme_key(theme_a), theme_key(theme_b)
        cache_key = (key_a, key_b) if key_a <= key_b else (key_b, key_a)
        cached = self._common_bases.get(cache_key)
        if cached is None:
            cached = self.theme_basis(key_a) & self.theme_basis(key_b)
            self._common_bases[cache_key] = cached
        return cached

    def _project_common(
        self,
        term: str,
        own_key: tuple[str, ...],
        other_key: tuple[str, ...],
    ) -> SparseVector:
        """Own-theme projection restricted to the common basis (cached)."""
        cache_key = (normalize_term(term), own_key, other_key)
        cached = self._restricted.get(cache_key)
        if cached is None:
            cached = self.project(term, own_key).restrict(
                self.common_basis(own_key, other_key)
            )
            self._restricted[cache_key] = cached
        return cached

    def warm(
        self, terms: Iterable[str], themes: Iterable[Iterable[str]]
    ) -> dict[str, int]:
        """Precompute theme bases and ``(term, theme)`` projections.

        The scalar scoring path pays its projection cost on first use of
        each pair; warming moves that cost offline (the
        ``repro warm-cache`` pipeline calls this before scoring the
        vocabulary cross-product, and cross-theme runs additionally warm
        the pairwise common bases). Returns :meth:`cache_stats` so
        callers can report what was materialized.
        """
        terms = list(terms)
        keys = sorted({theme_key(theme) for theme in themes})
        for key in keys:
            self.theme_basis(key)
            for term in terms:
                self.project(term, key)
        for i, key_a in enumerate(keys):
            for key_b in keys[i + 1 :]:
                self.common_basis(key_a, key_b)
                for term in terms:
                    self._project_common(term, key_a, key_b)
                    self._project_common(term, key_b, key_a)
        return self.cache_stats()

    def cache_stats(self) -> dict[str, int]:
        """Sizes of the internal caches (for tests and benchmarks)."""
        return {
            "bases": len(self._bases),
            "common_bases": len(self._common_bases),
            "projections": len(self._projections),
            "restricted": len(self._restricted),
            "term_vectors": len(self._term_vectors),
            "token_vectors": len(self._token_vectors),
        }
