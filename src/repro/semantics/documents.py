"""Document abstraction for the distributional corpus.

The vector space of Section 4.1 is spanned by unit vectors of documents
``{d_i : d_i in D}``. A :class:`Document` is an identified bag of text; a
:class:`DocumentSet` is the ordered, immutable collection ``D`` handed to
the index builder. Document identity is positional (``doc_id`` is the
index into the set) which keeps vector components compact integers.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.semantics.tokenize import tokenize

__all__ = ["Document", "DocumentSet"]


@dataclass(frozen=True)
class Document:
    """One corpus document.

    Parameters
    ----------
    name:
        Stable human-readable identifier (e.g. the synthetic article
        title). Unique within a :class:`DocumentSet`.
    text:
        The raw body. Tokenized lazily via :meth:`tokens`.
    """

    name: str
    text: str

    def tokens(self) -> list[str]:
        """Stop-word-filtered lowercase tokens of :attr:`text`."""
        return tokenize(self.text)


@dataclass(frozen=True)
class DocumentSet:
    """Immutable ordered corpus ``D``; the basis of the vector space."""

    documents: tuple[Document, ...]
    _name_to_id: dict[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        mapping: dict[str, int] = {}
        for doc_id, doc in enumerate(self.documents):
            if doc.name in mapping:
                raise ValueError(f"duplicate document name: {doc.name!r}")
            mapping[doc.name] = doc_id
        object.__setattr__(self, "_name_to_id", mapping)

    @classmethod
    def from_documents(cls, documents: Sequence[Document]) -> "DocumentSet":
        return cls(tuple(documents))

    @classmethod
    def from_texts(cls, texts: Sequence[str]) -> "DocumentSet":
        """Build a set with auto-generated names ``doc-0 .. doc-N``."""
        docs = tuple(
            Document(name=f"doc-{i}", text=text) for i, text in enumerate(texts)
        )
        return cls(docs)

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self.documents)

    def __getitem__(self, doc_id: int) -> Document:
        return self.documents[doc_id]

    def doc_id(self, name: str) -> int:
        """Positional id of the document called ``name``."""
        return self._name_to_id[name]

    def names(self) -> tuple[str, ...]:
        return tuple(doc.name for doc in self.documents)
