"""Semantic measures ``sm : T x 2^TH x T x 2^TH -> [0, 1]`` (Section 4.3).

A semantic measure scores how related a subscription term and an event
term are, given the themes of both sides. Three concrete measures cover
the approaches of Table 1:

* :class:`ExactMeasure` — string identity; the content-based approach.
* :class:`NonThematicMeasure` — distributional relatedness ignoring
  themes; the approximate approach of the authors' prior work [16].
* :class:`ThematicMeasure` — thematic projection then distance; the
  contribution of this paper.

:class:`CachedMeasure` memoizes any measure (symmetric keys), and
:class:`PrecomputedMeasure` serves scores from a pre-built table — the
"precomputed esa scores" fast mode that reaches ~91k events/sec in the
prior-work comparison (Section 5, P16 bench).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING, Protocol

from repro.semantics.cache import PrecomputedScoreTable, RelatednessCache
from repro.semantics.pvsm import ParametricVectorSpace
from repro.semantics.space import DistributionalVectorSpace
from repro.semantics.tokenize import normalize_term

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.semantics.kernel import KernelMeasure

__all__ = [
    "SemanticMeasure",
    "ExactMeasure",
    "NonThematicMeasure",
    "ThematicMeasure",
    "CachedMeasure",
    "PrecomputedMeasure",
]


class SemanticMeasure(Protocol):
    """Callable scoring relatedness of a subscription/event term pair."""

    def score(
        self,
        term_s: str,
        theme_s: Iterable[str],
        term_e: str,
        theme_e: Iterable[str],
    ) -> float:
        """Relatedness in ``[0, 1]``; 1 means identical meaning."""
        ...


class ExactMeasure:
    """String identity after normalization; no semantics involved."""

    def score(
        self,
        term_s: str,
        theme_s: Iterable[str],
        term_e: str,
        theme_e: Iterable[str],
    ) -> float:
        return 1.0 if normalize_term(term_s) == normalize_term(term_e) else 0.0


class NonThematicMeasure:
    """Distributional relatedness on the full space; themes are ignored.

    Identical strings short-circuit to 1.0 so exact hits always dominate
    merely-related terms regardless of the distance floor.

    ``vectorized=True`` routes scoring (single and batched) through the
    space's numpy kernel instead of the scalar ``SparseVector`` path —
    same semantics, documented float tolerance (see
    :mod:`repro.semantics.kernel`).
    """

    def __init__(
        self, space: DistributionalVectorSpace, *, vectorized: bool = False
    ) -> None:
        self.space = space
        self.vectorized = vectorized
        self._kernel_measure: KernelMeasure | None = None

    def _kernel(self) -> KernelMeasure:
        if self._kernel_measure is None:
            from repro.semantics.kernel import KernelMeasure

            self._kernel_measure = KernelMeasure(
                self.space.kernel(), thematic=False
            )
        return self._kernel_measure

    def score(
        self,
        term_s: str,
        theme_s: Iterable[str],
        term_e: str,
        theme_e: Iterable[str],
    ) -> float:
        if normalize_term(term_s) == normalize_term(term_e):
            return 1.0
        if self.vectorized:
            return self._kernel().score(term_s, theme_s, term_e, theme_e)
        return self.space.relatedness(term_s, term_e)

    def score_batch(
        self,
        lookups: Iterable[tuple[str, Iterable[str], str, Iterable[str]]],
    ) -> list[float]:
        """Batched :meth:`score`; one kernel call when vectorized."""
        lookups = list(lookups)
        if self.vectorized:
            return self._kernel().score_batch(lookups)
        return [self.score(*lookup) for lookup in lookups]


class ThematicMeasure:
    """The paper's measure: project by themes, then distance (Figure 5).

    ``mode`` selects the sub-space composition for the distance step —
    ``"common"`` (default) or ``"own"``; see
    :meth:`repro.semantics.pvsm.ParametricVectorSpace.thematic_relatedness`.
    """

    def __init__(
        self,
        space: ParametricVectorSpace,
        *,
        mode: str = "common",
        vectorized: bool = False,
    ) -> None:
        """``vectorized=True`` routes scoring (single and batched)
        through the space's numpy kernel instead of the scalar
        ``SparseVector`` path — same semantics, documented float
        tolerance (see :mod:`repro.semantics.kernel`). Off by default:
        the scalar path keeps its bit-exact batch-vs-pair guarantee."""
        self.space = space
        self.mode = mode
        self.vectorized = vectorized
        self._kernel_measure: KernelMeasure | None = None

    def _kernel(self) -> KernelMeasure:
        if self._kernel_measure is None:
            from repro.semantics.kernel import KernelMeasure

            self._kernel_measure = KernelMeasure(
                self.space.kernel(), mode=self.mode
            )
        return self._kernel_measure

    def score(
        self,
        term_s: str,
        theme_s: Iterable[str],
        term_e: str,
        theme_e: Iterable[str],
    ) -> float:
        if normalize_term(term_s) == normalize_term(term_e):
            return 1.0
        if self.vectorized:
            return self._kernel().score(term_s, theme_s, term_e, theme_e)
        return self.space.thematic_relatedness(
            term_s, theme_s, term_e, theme_e, mode=self.mode
        )

    def score_batch(
        self,
        lookups: Iterable[tuple[str, Iterable[str], str, Iterable[str]]],
    ) -> list[float]:
        """Batched :meth:`score`; one kernel call when vectorized."""
        lookups = list(lookups)
        if self.vectorized:
            return self._kernel().score_batch(lookups)
        return [self.score(*lookup) for lookup in lookups]


class CachedMeasure:
    """Memoizing wrapper around any measure.

    The underlying measures are symmetric in their (term, theme) pairs,
    so the cache key is order-insensitive; hit statistics are exposed for
    the throughput benchmarks.
    """

    def __init__(
        self, inner: SemanticMeasure, cache: RelatednessCache | None = None
    ) -> None:
        self.inner = inner
        self.cache = cache if cache is not None else RelatednessCache()

    @property
    def hit_rate(self) -> float:
        return self.cache.hit_rate

    @property
    def vectorized(self) -> bool:
        """Proxies the wrapped measure's batch-vectorization flag."""
        return bool(getattr(self.inner, "vectorized", False))

    def score(
        self,
        term_s: str,
        theme_s: Iterable[str],
        term_e: str,
        theme_e: Iterable[str],
    ) -> float:
        key = self.cache.key(term_s, theme_s, term_e, theme_e)
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        value = self.inner.score(term_s, theme_s, term_e, theme_e)
        self.cache.put(key, value)
        return value

    def score_batch(
        self,
        lookups: Iterable[tuple[str, Iterable[str], str, Iterable[str]]],
    ) -> list[float]:
        """Batched :meth:`score`: cache hits served, misses scored once.

        Misses go to the wrapped measure's ``score_batch`` when it has
        one (one kernel call for a vectorized inner measure), otherwise
        per-lookup ``score`` — value-identical either way.
        """
        lookups = list(lookups)
        out: list[float] = [0.0] * len(lookups)
        missing: list[int] = []
        keys = []
        for i, lookup in enumerate(lookups):
            key = self.cache.key(*lookup)
            keys.append(key)
            hit = self.cache.get(key)
            if hit is not None:
                out[i] = hit
            else:
                missing.append(i)
        if missing:
            inner_batch = getattr(self.inner, "score_batch", None)
            if inner_batch is not None:
                values = inner_batch([lookups[i] for i in missing])
            else:
                values = [self.inner.score(*lookups[i]) for i in missing]
            for i, value in zip(missing, values, strict=True):
                self.cache.put(keys[i], value)
                out[i] = value
        return out


class PrecomputedMeasure:
    """Measure answering from a precomputed score tier.

    Models the prior-work fast mode where all pairwise esa scores are
    computed offline. ``table`` is anything with the symmetric
    ``get(term_s, theme_s, term_e, theme_e)`` signature — the in-memory
    :class:`PrecomputedScoreTable` or the mmap-backed
    :class:`~repro.semantics.cache.PersistentScoreStore`. Pairs missing
    from the table fall back to ``fallback`` (default: score 0.0, i.e.
    unknown pairs are unrelated, matching an offline table that
    enumerated the whole vocabulary); layering the store over a
    :class:`CachedMeasure` gives the full tier order the engine uses —
    store, then online memo, then kernel.
    """

    def __init__(
        self,
        table: PrecomputedScoreTable,
        fallback: SemanticMeasure | None = None,
    ) -> None:
        self.table = table
        self.fallback = fallback

    @property
    def vectorized(self) -> bool:
        """Proxies the fallback's batch-vectorization flag."""
        return bool(getattr(self.fallback, "vectorized", False))

    def score(
        self,
        term_s: str,
        theme_s: Iterable[str],
        term_e: str,
        theme_e: Iterable[str],
    ) -> float:
        if normalize_term(term_s) == normalize_term(term_e):
            return 1.0
        hit = self.table.get(term_s, theme_s, term_e, theme_e)
        if hit is not None:
            return hit
        if self.fallback is not None:
            return self.fallback.score(term_s, theme_s, term_e, theme_e)
        return 0.0

    def score_batch(
        self,
        lookups: Iterable[tuple[str, Iterable[str], str, Iterable[str]]],
    ) -> list[float]:
        """Batched :meth:`score`: table hits served, misses in one batch.

        Misses go to the fallback's ``score_batch`` when it has one (one
        kernel call for a vectorized fallback), otherwise per-lookup
        ``score`` — value-identical either way. This is what routes the
        precomputed tier through the pipeline's block-fill stage, not
        just the scalar path.
        """
        lookups = list(lookups)
        out: list[float] = [0.0] * len(lookups)
        probe: list[int] = []
        for i, (term_s, theme_s, term_e, theme_e) in enumerate(lookups):
            if normalize_term(term_s) == normalize_term(term_e):
                out[i] = 1.0
            else:
                probe.append(i)
        missing: list[int] = []
        if probe:
            get_batch = getattr(self.table, "get_batch", None)
            if get_batch is not None:
                hits = get_batch([lookups[i] for i in probe])
            else:
                hits = [self.table.get(*lookups[i]) for i in probe]
            for i, hit in zip(probe, hits, strict=True):
                if hit is not None:
                    out[i] = hit
                elif self.fallback is not None:
                    missing.append(i)
        if missing:
            fallback_batch = getattr(self.fallback, "score_batch", None)
            if fallback_batch is not None:
                values = fallback_batch([lookups[i] for i in missing])
            else:
                values = [self.fallback.score(*lookups[i]) for i in missing]
            for i, value in zip(missing, values, strict=True):
                out[i] = value
        return out
