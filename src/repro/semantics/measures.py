"""Semantic measures ``sm : T x 2^TH x T x 2^TH -> [0, 1]`` (Section 4.3).

A semantic measure scores how related a subscription term and an event
term are, given the themes of both sides. Three concrete measures cover
the approaches of Table 1:

* :class:`ExactMeasure` — string identity; the content-based approach.
* :class:`NonThematicMeasure` — distributional relatedness ignoring
  themes; the approximate approach of the authors' prior work [16].
* :class:`ThematicMeasure` — thematic projection then distance; the
  contribution of this paper.

:class:`CachedMeasure` memoizes any measure (symmetric keys), and
:class:`PrecomputedMeasure` serves scores from a pre-built table — the
"precomputed esa scores" fast mode that reaches ~91k events/sec in the
prior-work comparison (Section 5, P16 bench).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Protocol

from repro.semantics.cache import PrecomputedScoreTable, RelatednessCache
from repro.semantics.pvsm import ParametricVectorSpace
from repro.semantics.space import DistributionalVectorSpace
from repro.semantics.tokenize import normalize_term

__all__ = [
    "SemanticMeasure",
    "ExactMeasure",
    "NonThematicMeasure",
    "ThematicMeasure",
    "CachedMeasure",
    "PrecomputedMeasure",
]


class SemanticMeasure(Protocol):
    """Callable scoring relatedness of a subscription/event term pair."""

    def score(
        self,
        term_s: str,
        theme_s: Iterable[str],
        term_e: str,
        theme_e: Iterable[str],
    ) -> float:
        """Relatedness in ``[0, 1]``; 1 means identical meaning."""
        ...


class ExactMeasure:
    """String identity after normalization; no semantics involved."""

    def score(
        self,
        term_s: str,
        theme_s: Iterable[str],
        term_e: str,
        theme_e: Iterable[str],
    ) -> float:
        return 1.0 if normalize_term(term_s) == normalize_term(term_e) else 0.0


class NonThematicMeasure:
    """Distributional relatedness on the full space; themes are ignored.

    Identical strings short-circuit to 1.0 so exact hits always dominate
    merely-related terms regardless of the distance floor.
    """

    def __init__(self, space: DistributionalVectorSpace):
        self.space = space

    def score(
        self,
        term_s: str,
        theme_s: Iterable[str],
        term_e: str,
        theme_e: Iterable[str],
    ) -> float:
        if normalize_term(term_s) == normalize_term(term_e):
            return 1.0
        return self.space.relatedness(term_s, term_e)


class ThematicMeasure:
    """The paper's measure: project by themes, then distance (Figure 5).

    ``mode`` selects the sub-space composition for the distance step —
    ``"common"`` (default) or ``"own"``; see
    :meth:`repro.semantics.pvsm.ParametricVectorSpace.thematic_relatedness`.
    """

    def __init__(self, space: ParametricVectorSpace, *, mode: str = "common"):
        self.space = space
        self.mode = mode

    def score(
        self,
        term_s: str,
        theme_s: Iterable[str],
        term_e: str,
        theme_e: Iterable[str],
    ) -> float:
        if normalize_term(term_s) == normalize_term(term_e):
            return 1.0
        return self.space.thematic_relatedness(
            term_s, theme_s, term_e, theme_e, mode=self.mode
        )


class CachedMeasure:
    """Memoizing wrapper around any measure.

    The underlying measures are symmetric in their (term, theme) pairs,
    so the cache key is order-insensitive; hit statistics are exposed for
    the throughput benchmarks.
    """

    def __init__(self, inner: SemanticMeasure, cache: RelatednessCache | None = None):
        self.inner = inner
        self.cache = cache if cache is not None else RelatednessCache()

    @property
    def hit_rate(self) -> float:
        return self.cache.hit_rate

    def score(
        self,
        term_s: str,
        theme_s: Iterable[str],
        term_e: str,
        theme_e: Iterable[str],
    ) -> float:
        key = self.cache.key(term_s, theme_s, term_e, theme_e)
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        value = self.inner.score(term_s, theme_s, term_e, theme_e)
        self.cache.put(key, value)
        return value


class PrecomputedMeasure:
    """Measure answering from a :class:`PrecomputedScoreTable`.

    Models the prior-work fast mode where all pairwise esa scores are
    computed offline. Pairs missing from the table fall back to
    ``fallback`` (default: score 0.0, i.e. unknown pairs are unrelated,
    matching an offline table that enumerated the whole vocabulary).
    """

    def __init__(
        self,
        table: PrecomputedScoreTable,
        fallback: SemanticMeasure | None = None,
    ):
        self.table = table
        self.fallback = fallback

    def score(
        self,
        term_s: str,
        theme_s: Iterable[str],
        term_e: str,
        theme_e: Iterable[str],
    ) -> float:
        if normalize_term(term_s) == normalize_term(term_e):
            return 1.0
        hit = self.table.get(term_s, theme_s, term_e, theme_e)
        if hit is not None:
            return hit
        if self.fallback is not None:
            return self.fallback.score(term_s, theme_s, term_e, theme_e)
        return 0.0
