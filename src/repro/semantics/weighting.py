"""TF/IDF weighting exactly as Equations 2–4 of the paper.

The paper keeps the *raw* ``tf`` and ``idf`` inputs in the inverted index
"so they can be used later for thematic projection" (Section 4.1): the
projection of Algorithm 1 re-uses the original augmented term frequency
but recomputes ``idf`` against the thematic sub-corpus. These functions
are therefore pure, taking raw counts, so both the full space and every
projected space share one implementation.
"""

from __future__ import annotations

import math

__all__ = ["augmented_tf", "idf", "tf_idf"]


def augmented_tf(freq: int, max_freq: int) -> float:
    """Equation 2: ``tf(t, d) = 0.5 + 0.5 * freq(t, d) / max_freq(d)``.

    ``freq`` is the raw count of the term in the document and ``max_freq``
    the count of the most frequent term in that document. Augmentation
    bounds the value in ``(0.5, 1.0]`` which prevents long documents from
    dominating.
    """
    if freq < 0 or max_freq <= 0:
        raise ValueError("freq must be >= 0 and max_freq > 0")
    if freq == 0:
        return 0.0
    return 0.5 + 0.5 * freq / max_freq


def idf(corpus_size: int, document_frequency: int) -> float:
    """Equation 3: ``idf(t, D) = log(|D| / |{d in D : t in d}|)``.

    A term appearing in every document scores 0; a term appearing in no
    document has no defined idf and callers must not ask (the index
    returns empty vectors for unknown terms instead).
    """
    if corpus_size <= 0:
        raise ValueError("corpus_size must be positive")
    if document_frequency <= 0:
        raise ValueError("document_frequency must be positive")
    if document_frequency > corpus_size:
        raise ValueError("document_frequency cannot exceed corpus_size")
    return math.log(corpus_size / document_frequency)


def tf_idf(freq: int, max_freq: int, corpus_size: int, document_frequency: int) -> float:
    """Equation 4: ``tfidf = tf * idf``."""
    return augmented_tf(freq, max_freq) * idf(corpus_size, document_frequency)
