"""The (non-thematic) distributional vector space model of Section 4.1.

This is the Explicit-Semantic-Analysis-style space: every term is a
tf/idf-weighted vector over the corpus documents (Equation 1), and the
semantic relatedness of two terms is derived from the distance between
their vectors (Equations 5 and 6).

Multi-word terms ("energy consumption") are composed additively from
their token vectors, the standard ESA treatment for phrases. Term vectors
are cached — the space is immutable once built.

Implementation note on Equation 5/6: the paper measures plain Euclidean
distance between tf/idf vectors. Raw tf/idf magnitudes make that distance
dominated by vector norms rather than direction, which flattens the
relatedness scale; like most ESA implementations we L2-normalize vectors
before measuring (``normalize=True``, the default). Set
``normalize=False`` for the literal reading; the ablation bench compares
both.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.semantics.documents import DocumentSet
from repro.semantics.index import InvertedIndex
from repro.semantics.tokenize import normalize_term, tokenize
from repro.semantics.vectors import ZERO_VECTOR, SparseVector
from repro.semantics.weighting import tf_idf

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.semantics.columnar import ColumnarIndex
    from repro.semantics.kernel import RelatednessKernel

__all__ = ["DistributionalVectorSpace", "relatedness_from_distance"]


def relatedness_from_distance(distance: float) -> float:
    """Equation 6: ``relatedness = 1 / (distance + 1)`` in ``(0, 1]``."""
    if distance < 0:
        raise ValueError("distance must be non-negative")
    return 1.0 / (distance + 1.0)


class DistributionalVectorSpace:
    """ESA-style vector space built from a document corpus.

    Parameters
    ----------
    documents:
        The corpus ``D``. Use :func:`repro.knowledge.corpus.build_corpus`
        for the paper-shaped synthetic Wikipedia substitute.
    normalize:
        L2-normalize term vectors before distance computation (see module
        docstring). Default ``True``.
    metric:
        ``"euclidean"`` (Equation 5, default) or ``"cosine"`` for the
        ablation variant.
    """

    def __init__(
        self,
        documents: DocumentSet,
        *,
        normalize: bool = True,
        metric: str = "euclidean",
    ) -> None:
        if metric not in ("euclidean", "cosine"):
            raise ValueError(f"unknown metric: {metric!r}")
        self.documents = documents
        self.index = InvertedIndex.build(documents)
        self.normalize = normalize
        self.metric = metric
        self._token_vectors: dict[str, SparseVector] = {}
        self._term_vectors: dict[str, SparseVector] = {}
        self._columnar: ColumnarIndex | None = None
        self._kernel: RelatednessKernel | None = None

    # -- columnar backing (vectorized kernel) ------------------------------

    def columnar(self) -> ColumnarIndex:
        """CSR backing of this space's index, built once on first use.

        The arrays carry the same information as the dict-based index
        (raw frequencies, per-document maxima, full-space tf/idf
        weights); see :class:`~repro.semantics.columnar.ColumnarIndex`.
        """
        if self._columnar is None:
            from repro.semantics.columnar import ColumnarIndex

            self._columnar = ColumnarIndex.build(self.index)
        return self._columnar

    def kernel(self) -> RelatednessKernel:
        """The vectorized relatedness kernel over :meth:`columnar`.

        Shared per space (its projection caches mirror the scalar
        caches); honors this space's ``normalize``/``metric`` and — for
        :class:`~repro.semantics.pvsm.ParametricVectorSpace` — its
        ``recompute_idf`` ablation flag.
        """
        if self._kernel is None:
            from repro.semantics.kernel import RelatednessKernel

            self._kernel = RelatednessKernel(
                self.columnar(),
                normalize=self.normalize,
                metric=self.metric,
                recompute_idf=getattr(self, "recompute_idf", True),
            )
        return self._kernel

    # -- vector construction (Equation 1) ---------------------------------

    def token_vector(self, token: str) -> SparseVector:
        """tf/idf vector of a single corpus token; zero if unseen."""
        cached = self._token_vectors.get(token)
        if cached is not None:
            return cached
        postings = self.index.postings.get(token)
        if not postings:
            vector = ZERO_VECTOR
        else:
            size = self.index.corpus_size
            df = len(postings)
            vector = SparseVector(
                {
                    doc_id: tf_idf(freq, self.index.max_frequency[doc_id], size, df)
                    for doc_id, freq in postings.items()
                }
            )
        self._token_vectors[token] = vector
        return vector

    def term_vector(self, term: str) -> SparseVector:
        """Vector of a possibly multi-word term (sum of token vectors)."""
        key = normalize_term(term)
        cached = self._term_vectors.get(key)
        if cached is not None:
            return cached
        vector = ZERO_VECTOR
        for token in tokenize(key):
            vector = vector.add(self.token_vector(token))
        self._term_vectors[key] = vector
        return vector

    # -- distances and relatedness (Equations 5 and 6) --------------------

    def distance(self, left: SparseVector, right: SparseVector) -> float:
        """Distance between two prepared vectors under this space's metric.

        With ``normalize=True`` both vectors are normalized first; a zero
        vector is infinitely far from everything (relatedness 0) because
        an unseen term carries no distributional evidence at all.
        """
        if not left or not right:
            return float("inf")
        if self.normalize:
            left, right = left.normalized(), right.normalized()
        if self.metric == "cosine":
            return 1.0 - left.cosine_similarity(right)
        return left.euclidean_distance(right)

    def vector_relatedness(self, left: SparseVector, right: SparseVector) -> float:
        distance = self.distance(left, right)
        if distance == float("inf"):
            return 0.0
        return relatedness_from_distance(distance)

    def relatedness(self, term_a: str, term_b: str) -> float:
        """Semantic relatedness of two terms in ``[0, 1]``; symmetric."""
        return self.vector_relatedness(
            self.term_vector(term_a), self.term_vector(term_b)
        )

    def vocabulary(self) -> frozenset[str]:
        return self.index.vocabulary()

    def __len__(self) -> int:
        return len(self.documents)
