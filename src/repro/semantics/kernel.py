"""Vectorized relatedness kernel over the columnar space.

The scalar scoring stack — :class:`~repro.semantics.vectors.SparseVector`
dict algebra driven per term pair — is the reference semantics; this
module computes the *same* scores in bulk with numpy over the
:class:`~repro.semantics.columnar.ColumnarIndex` CSR arrays. One kernel
call scores every (term, theme, term, theme) combination of a batch:
projections are gathered as dense rows over the document axis, norms and
dots are row-wise ``einsum`` reductions, and the Equation 5/6 distance →
relatedness arithmetic runs elementwise across all pairs at once.

Parity with the scalar path, by construction:

* projected *weights* are bit-identical — the projection mirrors
  Algorithm 1 with the same augmented-tf expression, the same
  ``math.log`` sub-corpus idf and the same token accumulation order, so
  every nonzero component equals the dict path's component exactly;
* norms and dots use row-wise ``einsum`` reductions (never BLAS matmul),
  so each pair's reduction is independent of batch shape — scoring a
  pair alone or inside any batch yields the identical float, which is
  what makes batch-vs-single exactness testable;
* the only divergence from the scalar path is summation *order* inside
  norm/dot reductions (``math.hypot`` / dict-ordered sums vs ``einsum``)
  — on L2-normalized inputs this bounds the relatedness difference by
  ~1e-9 (observed ~1e-15); the hypothesis suite in
  ``tests/semantics/test_kernel.py`` asserts that tolerance, and exact
  zero/one cases (empty vectors, identical terms) agree exactly.

The kernel is **opt-in** (``ThematicMeasure(..., vectorized=True)``):
the scalar path stays the default so existing bit-exact batch-vs-pair
guarantees are untouched, and when the kernel is enabled it serves both
single and batched calls so those guarantees hold *within* the kernel
path too.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.obs import TRACER, MetricsRegistry
from repro.semantics.columnar import ColumnarIndex
from repro.semantics.pvsm import theme_key
from repro.semantics.tokenize import normalize_term, tokenize

__all__ = ["KernelMeasure", "RelatednessKernel"]

#: Absolute tolerance the hypothesis parity suite asserts between kernel
#: and scalar relatedness (see module docstring; observed error ~1e-15).
PARITY_TOLERANCE = 1e-9

_EMPTY_IDS = np.zeros(0, dtype=np.int64)
_EMPTY_WEIGHTS = np.zeros(0, dtype=np.float64)


class RelatednessKernel:
    """Batch thematic/non-thematic relatedness over a columnar index.

    Mirrors :class:`~repro.semantics.pvsm.ParametricVectorSpace`
    semantics — ``normalize``/``metric``/``recompute_idf`` and the
    common/own sub-space modes — with per-``(term, theme)`` projection
    caches, like the scalar space's.
    """

    def __init__(
        self,
        columnar: ColumnarIndex,
        *,
        normalize: bool = True,
        metric: str = "euclidean",
        recompute_idf: bool = True,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if metric not in ("euclidean", "cosine"):
            raise ValueError(f"unknown metric: {metric!r}")
        self.columnar = columnar
        self.normalize = normalize
        self.metric = metric
        self.recompute_idf = recompute_idf
        self.registry = registry if registry is not None else MetricsRegistry()
        self._batches = self.registry.counter("kernel.batches")
        self._pairs = self.registry.counter("kernel.pairs")
        self._bases: dict[tuple[str, ...], np.ndarray] = {}
        self._projections: dict[
            tuple[str, tuple[str, ...]], tuple[np.ndarray, np.ndarray]
        ] = {}
        self._common_bases: dict[
            tuple[tuple[str, ...], tuple[str, ...]], np.ndarray
        ] = {}
        self._restricted: dict[
            tuple[str, tuple[str, ...], tuple[str, ...]],
            tuple[np.ndarray, np.ndarray],
        ] = {}
        # (term, own key, other key, restrict) -> fully prepared dense
        # row: (row, nnz size, norm, norm squared). Rows are reused
        # across batches, so steady-state per-pair cost is one einsum
        # reduction — the projection/normalization arithmetic runs once
        # per distinct term/theme combination, producing the identical
        # floats every later batch reads back.
        self._rows: dict[
            tuple[str, tuple[str, ...], tuple[str, ...], bool],
            tuple[np.ndarray, int, float, float],
        ] = {}

    # -- bases (Figure 5, steps 2-3) ---------------------------------------

    def theme_basis(self, key: tuple[str, ...]) -> np.ndarray:
        """Sorted doc ids spanning the theme (union of tag supports)."""
        cached = self._bases.get(key)
        if cached is not None:
            return cached
        if not key:
            basis = np.arange(self.columnar.corpus_size, dtype=np.int64)
        else:
            supports: list[np.ndarray] = []
            for tag in key:
                for token in tokenize(tag):
                    row = self.columnar.row(token)
                    if row is None:
                        continue
                    doc_ids, _, tfidf = row
                    # A token appearing in every document has idf 0 —
                    # its tfidf weights are all zero and the scalar
                    # support() excludes those docs.
                    supports.append(doc_ids[tfidf != 0.0])
            if supports:
                basis = np.unique(np.concatenate(supports)).astype(np.int64)
            else:
                basis = _EMPTY_IDS
        self._bases[key] = basis
        return basis

    def common_basis(
        self, key_a: tuple[str, ...], key_b: tuple[str, ...]
    ) -> np.ndarray:
        """Intersection of two theme bases (cached, symmetric)."""
        cache_key = (key_a, key_b) if key_a <= key_b else (key_b, key_a)
        cached = self._common_bases.get(cache_key)
        if cached is None:
            cached = np.intersect1d(
                self.theme_basis(key_a), self.theme_basis(key_b)
            )
            self._common_bases[cache_key] = cached
        return cached

    # -- projection (Algorithm 1) ------------------------------------------

    def project(
        self, term_norm: str, key: tuple[str, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Projected vector of a normalized term as ``(doc_ids, weights)``.

        ``doc_ids`` are sorted absolute document ids; zero weights are
        dropped, mirroring :class:`~repro.semantics.vectors.SparseVector`
        never storing them (the emptiness tests below depend on it).
        """
        cache_key = (term_norm, key)
        cached = self._projections.get(cache_key)
        if cached is not None:
            return cached
        basis = self.theme_basis(key)
        dense = np.zeros(self.columnar.corpus_size)
        if basis.size:
            for token in tokenize(term_norm):
                row = self.columnar.row(token)
                if row is None:
                    continue
                doc_ids, freqs, tfidf = row
                if key:
                    pos = np.searchsorted(basis, doc_ids)
                    pos[pos == basis.size] = 0
                    in_basis = basis[pos] == doc_ids
                    df = int(np.count_nonzero(in_basis))
                    if df == 0:
                        continue
                    docs = doc_ids[in_basis]
                    if self.recompute_idf:
                        sub_idf = math.log(basis.size / df)
                        tf = (
                            0.5
                            + 0.5
                            * freqs[in_basis]
                            / self.columnar.max_frequency[docs]
                        )
                        dense[docs] += tf * sub_idf
                    else:  # naive-masking ablation
                        dense[docs] += tfidf[in_basis]
                else:
                    # Empty theme: the full-space term vector.
                    dense[doc_ids] += tfidf
        ids = np.nonzero(dense)[0]
        projected = (ids, dense[ids])
        self._projections[cache_key] = projected
        return projected

    def _restrict_common(
        self,
        term_norm: str,
        own_key: tuple[str, ...],
        other_key: tuple[str, ...],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Own-theme projection restricted to the common basis (cached)."""
        cache_key = (term_norm, own_key, other_key)
        cached = self._restricted.get(cache_key)
        if cached is None:
            ids, weights = self.project(term_norm, own_key)
            common = self.common_basis(own_key, other_key)
            if ids.size and common.size:
                pos = np.searchsorted(common, ids)
                pos[pos == common.size] = 0
                keep = common[pos] == ids
                cached = (ids[keep], weights[keep])
            else:
                cached = (_EMPTY_IDS, _EMPTY_WEIGHTS)
            self._restricted[cache_key] = cached
        return cached

    # -- batch scoring (Equations 5-6 over all pairs at once) --------------

    def score_pairs(
        self,
        key_s: tuple[str, ...],
        key_e: tuple[str, ...],
        pairs: Sequence[tuple[str, str]],
        *,
        mode: str = "common",
    ) -> np.ndarray:
        """Relatedness of normalized ``(term_s, term_e)`` pairs sharing
        one theme-key combination. Identity short-circuits are the
        measure's job; every pair given here is scored through vectors.
        """
        if mode not in ("common", "own"):
            raise ValueError(f"unknown thematic mode {mode!r}")
        self._batches.inc()
        self._pairs.inc(len(pairs))
        restrict = mode == "common" and key_s != key_e
        with TRACER.span("kernel.score", pairs=len(pairs)):
            left_terms = list(dict.fromkeys(ts for ts, _ in pairs))
            right_terms = list(dict.fromkeys(te for _, te in pairs))
            left = self._gather(left_terms, key_s, key_e, restrict)
            right = self._gather(right_terms, key_e, key_s, restrict)
            li = np.fromiter(
                (left.index[ts] for ts, _ in pairs),
                dtype=np.int64,
                count=len(pairs),
            )
            ri = np.fromiter(
                (right.index[te] for _, te in pairs),
                dtype=np.int64,
                count=len(pairs),
            )
            dots = np.einsum("ij,ij->i", left.rows[li], right.rows[ri])
            if self.metric == "cosine":
                denom = left.norms[li] * right.norms[ri]
                sims = np.zeros(len(pairs))
                np.divide(dots, denom, out=sims, where=denom != 0.0)
                np.clip(sims, -1.0, 1.0, out=sims)
                distances = 1.0 - sims
            else:
                squared = (
                    left.norms_sq[li] + right.norms_sq[ri] - 2.0 * dots
                )
                distances = np.sqrt(np.maximum(squared, 0.0))
            relatedness = 1.0 / (distances + 1.0)
            # An empty (projected) vector is infinitely far from
            # everything: relatedness 0, exactly like the scalar path.
            empty = (left.sizes[li] == 0) | (right.sizes[ri] == 0)
            relatedness[empty] = 0.0
        return relatedness

    def _gather(
        self,
        terms: list[str],
        own_key: tuple[str, ...],
        other_key: tuple[str, ...],
        restrict: bool,
    ) -> "_Side":
        """Dense rows + per-term reductions for one side of a group."""
        rows = np.empty((len(terms), self.columnar.corpus_size))
        sizes = np.empty(len(terms), dtype=np.int64)
        norms = np.empty(len(terms))
        norms_sq = np.empty(len(terms))
        for i, term in enumerate(terms):
            cache_key = (term, own_key, other_key, restrict)
            prepared = self._rows.get(cache_key)
            if prepared is None:
                prepared = self._prepare_row(term, own_key, other_key, restrict)
                self._rows[cache_key] = prepared
            rows[i] = prepared[0]
            sizes[i] = prepared[1]
            norms[i] = prepared[2]
            norms_sq[i] = prepared[3]
        return _Side(
            index={term: i for i, term in enumerate(terms)},
            rows=rows,
            sizes=sizes,
            norms=norms,
            norms_sq=norms_sq,
        )

    def _prepare_row(
        self,
        term: str,
        own_key: tuple[str, ...],
        other_key: tuple[str, ...],
        restrict: bool,
    ) -> tuple[np.ndarray, int, float, float]:
        """Dense (optionally normalized) row of one term, with reductions.

        Runs the identical 1-row matrix arithmetic the batched gather
        used to run per call, so cached floats equal freshly computed
        ones bit for bit.
        """
        if restrict:
            ids, weights = self._restrict_common(term, own_key, other_key)
        else:
            ids, weights = self.project(term, own_key)
        row = np.zeros((1, self.columnar.corpus_size))
        row[0, ids] = weights
        norms_sq = np.einsum("ij,ij->i", row, row)
        norms = np.sqrt(norms_sq)
        if self.normalize:
            safe = np.where(norms == 0.0, 1.0, norms)
            row = row / safe[:, None]
            norms_sq = np.einsum("ij,ij->i", row, row)
            norms = np.sqrt(norms_sq)
        return row[0], int(ids.size), float(norms[0]), float(norms_sq[0])

    def cache_stats(self) -> dict[str, int]:
        """Sizes of the kernel's internal caches (tests/benchmarks)."""
        return {
            "bases": len(self._bases),
            "common_bases": len(self._common_bases),
            "projections": len(self._projections),
            "restricted": len(self._restricted),
            "rows": len(self._rows),
        }


class _Side:
    """One side of a scoring group: dense rows plus per-term reductions."""

    __slots__ = ("index", "rows", "sizes", "norms", "norms_sq")

    def __init__(
        self,
        index: dict[str, int],
        rows: np.ndarray,
        sizes: np.ndarray,
        norms: np.ndarray,
        norms_sq: np.ndarray,
    ) -> None:
        self.index = index
        self.rows = rows
        self.sizes = sizes
        self.norms = norms
        self.norms_sq = norms_sq


class KernelMeasure:
    """Semantic measure backed by a :class:`RelatednessKernel`.

    The drop-in vectorized counterpart of
    :class:`~repro.semantics.measures.ThematicMeasure` (or, with
    ``thematic=False``, of
    :class:`~repro.semantics.measures.NonThematicMeasure` — themes are
    then ignored and every term scores in the full space). Identical
    normalized terms short-circuit to 1.0 exactly like the scalar
    measures, before any kernel work.
    """

    #: Marks this measure (and wrappers proxying the flag) as batch-
    #: vectorized; the staged pipeline keys its bulk-scoring mode on it.
    vectorized = True

    def __init__(
        self,
        kernel: RelatednessKernel,
        *,
        mode: str = "common",
        thematic: bool = True,
    ) -> None:
        if mode not in ("common", "own"):
            raise ValueError(f"unknown thematic mode {mode!r}")
        self.kernel = kernel
        self.mode = mode
        self.thematic = thematic

    def score(
        self,
        term_s: str,
        theme_s: Iterable[str],
        term_e: str,
        theme_e: Iterable[str],
    ) -> float:
        return self.score_batch([(term_s, theme_s, term_e, theme_e)])[0]

    def score_batch(
        self,
        lookups: Sequence[tuple[str, Iterable[str], str, Iterable[str]]],
    ) -> list[float]:
        """Scores for all lookups, grouped by theme-key combination.

        Group scoring uses per-row reductions only, so results are
        independent of how lookups are batched together — a lookup
        scores the same alone and inside any batch.
        """
        out: list[float] = [0.0] * len(lookups)
        groups: dict[
            tuple[tuple[str, ...], tuple[str, ...]],
            list[tuple[int, str, str]],
        ] = {}
        for i, (term_s, theme_s, term_e, theme_e) in enumerate(lookups):
            ts, te = normalize_term(term_s), normalize_term(term_e)
            if ts == te:
                out[i] = 1.0
                continue
            if self.thematic:
                key_s, key_e = theme_key(theme_s), theme_key(theme_e)
            else:
                key_s = key_e = ()
            groups.setdefault((key_s, key_e), []).append((i, ts, te))
        for (key_s, key_e), entries in groups.items():
            pairs = [(ts, te) for _, ts, te in entries]
            scores = self.kernel.score_pairs(
                key_s, key_e, pairs, mode=self.mode
            )
            for (i, _, _), value in zip(entries, scores, strict=True):
                out[i] = float(value)
        return out
