"""The supported public surface of :mod:`repro`, in one place.

Downstream code should import from here (or from the top-level
:mod:`repro` package, which overlaps for the most common names): every
name in this module's ``__all__`` is covered by the deprecation policy —
it changes only behind a shim plus a :class:`DeprecationWarning` for at
least one release. Anything importable from submodules but absent here
is internal and may change without notice.

The surface is pinned by ``tests/test_public_api.py``: adding, renaming,
or removing a name here fails that test until its snapshot is updated —
so API changes are always a visible, reviewed diff, never an accident.
"""

from repro.baselines import (
    CountingIndex,
    ExactMatcher,
    NonThematicMatcher,
    RewritingMatcher,
)
from repro.broker import (
    BrokerConfig,
    BrokerMetrics,
    BrokerOverlay,
    CallbackFault,
    CircuitBreaker,
    DeadLetterQueue,
    DeadLetterRecord,
    Delivery,
    DeliveryPolicy,
    FaultInjector,
    FaultPlan,
    FaultyCallbackError,
    HashSharding,
    OverlayMetrics,
    ReliableDelivery,
    ScorerFault,
    ShardedBroker,
    SizeBalancedSharding,
    ThematicBroker,
    ThreadedBroker,
)
from repro.cep import CEPEngine, Pattern, parse_pattern
from repro.datasets import generate_seed_events
from repro.core import (
    AttributeValue,
    BatchMatchResult,
    Calibration,
    DegradedMode,
    DegradedPolicy,
    DowngradeEvent,
    EngineConfig,
    EngineStats,
    Event,
    MatchEngine,
    MatchResult,
    Predicate,
    Subscription,
    SubscriptionHandle,
    ThematicEventEngine,
    ThematicMatcher,
    format_event,
    format_subscription,
    parse_event,
    parse_subscription,
)
from repro.evaluation import (
    Workload,
    WorkloadConfig,
    build_workload,
    compare_broker_throughput,
    run_fault_injection,
)
from repro.knowledge import (
    Thesaurus,
    build_corpus,
    default_corpus,
    default_thesaurus,
)
from repro.obs import (
    Clock,
    FakeClock,
    MetricsRegistry,
    MonotonicClock,
)
from repro.semantics import (
    DistributionalVectorSpace,
    ExactMeasure,
    NonThematicMeasure,
    ParametricVectorSpace,
    SparseVector,
    ThematicMeasure,
)

__all__ = [
    "AttributeValue",
    "BatchMatchResult",
    "BrokerConfig",
    "BrokerMetrics",
    "BrokerOverlay",
    "CEPEngine",
    "Calibration",
    "CallbackFault",
    "CircuitBreaker",
    "Clock",
    "CountingIndex",
    "DeadLetterQueue",
    "DeadLetterRecord",
    "DegradedMode",
    "DegradedPolicy",
    "Delivery",
    "DeliveryPolicy",
    "DistributionalVectorSpace",
    "DowngradeEvent",
    "EngineConfig",
    "EngineStats",
    "Event",
    "ExactMatcher",
    "ExactMeasure",
    "FakeClock",
    "FaultInjector",
    "FaultPlan",
    "FaultyCallbackError",
    "HashSharding",
    "MatchEngine",
    "MatchResult",
    "MetricsRegistry",
    "MonotonicClock",
    "NonThematicMatcher",
    "NonThematicMeasure",
    "OverlayMetrics",
    "ParametricVectorSpace",
    "Pattern",
    "Predicate",
    "ReliableDelivery",
    "RewritingMatcher",
    "ScorerFault",
    "ShardedBroker",
    "SizeBalancedSharding",
    "SparseVector",
    "Subscription",
    "SubscriptionHandle",
    "ThematicBroker",
    "ThematicEventEngine",
    "ThematicMatcher",
    "ThematicMeasure",
    "Thesaurus",
    "ThreadedBroker",
    "Workload",
    "WorkloadConfig",
    "build_corpus",
    "build_workload",
    "compare_broker_throughput",
    "default_corpus",
    "default_thesaurus",
    "format_event",
    "format_subscription",
    "generate_seed_events",
    "parse_event",
    "parse_pattern",
    "parse_subscription",
    "run_fault_injection",
]
