"""Deprecation shims, consolidated.

Every supported legacy alias routes through :func:`warn_deprecated`, and
every legacy-keyword constructor shim routes through
:func:`config_from_kwargs` — one place to grep for what is deprecated,
one warning shape for callers to filter on, and one test suite
(``tests/test_compat.py``) asserting each alias still warns.

Current shims (all scheduled for removal one release after their
replacement shipped):

========================  ==================================================
alias                     replacement
========================  ==================================================
``SubscriberHandle``      ``repro.core.engine.SubscriptionHandle``
``dispatch_delivery``     ``ReliableDelivery.dispatch``
broker keyword args       ``BrokerConfig`` (pass as ``config=``)
engine keyword args       ``EngineConfig`` (pass as ``config=``)
========================  ==================================================
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import TypeVar

__all__ = ["warn_deprecated", "config_from_kwargs"]

ConfigT = TypeVar("ConfigT")


def warn_deprecated(message: str, *, stacklevel: int = 3) -> None:
    """Emit the one deprecation-warning shape every shim uses.

    ``stacklevel`` defaults to 3 — warn site -> alias frame -> caller —
    so the warning points at the user's code, not the shim.
    """
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def config_from_kwargs(
    config: ConfigT | None,
    default: ConfigT,
    allowed: tuple[str, ...],
    kwargs: dict,
    *,
    scope: str,
    stacklevel: int = 3,
) -> ConfigT:
    """Fold legacy keyword arguments into a frozen config dataclass.

    ``allowed`` names the legacy keywords this constructor historically
    accepted; anything else raises :class:`TypeError` immediately (the
    typo would otherwise vanish into the shim). Known keywords warn
    once and overlay ``config`` (or ``default`` when no config was
    passed) via :func:`dataclasses.replace`. ``scope`` is the prose
    name used in both messages (``"broker"``, ``"engine"``); the config
    class name and its article come from ``default``'s type, keeping
    the historical warning texts byte-identical.
    """
    if not kwargs:
        return config if config is not None else default
    cls_name = type(default).__name__
    unknown = set(kwargs) - set(allowed)
    if unknown:
        raise TypeError(
            f"unexpected keyword arguments {sorted(unknown)} "
            f"({scope} options now live on {cls_name})"
        )
    article = "an" if cls_name[0] in "AEIOU" else "a"
    warn_deprecated(
        f"passing {scope} options as keyword arguments is deprecated; "
        f"pass {article} {cls_name} instead",
        stacklevel=stacklevel + 1,
    )
    return replace(config if config is not None else default, **kwargs)
