"""Thematic event processing.

A production-quality reproduction of *Thematic Event Processing*
(Souleiman Hasan and Edward Curry, Middleware 2014): approximate
semantic publish/subscribe matching in which events and subscriptions
carry free-form **theme tags**, and a distributional vector space —
parametrized by those themes through thematic projection — scores the
semantic relatedness of heterogeneous attribute/value vocabularies.

Quickstart::

    from repro import (
        ParametricVectorSpace, ThematicMeasure, ThematicMatcher,
        parse_event, parse_subscription, default_corpus,
    )

    space = ParametricVectorSpace(default_corpus())
    matcher = ThematicMatcher(ThematicMeasure(space))

    event = parse_event(
        "({energy, appliances, building},"
        " {type: increased energy consumption event,"
        "  device: computer, office: room 112})"
    )
    subscription = parse_subscription(
        "({power, computers},"
        " {type= increased energy usage event~, device~= laptop~,"
        "  office= room 112})"
    )
    result = matcher.match(subscription, event)
    assert result is not None and result.is_match(matcher.threshold)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` — events, subscriptions, the tilde language, the
  approximate probabilistic matcher (top-1/top-k);
* :mod:`repro.semantics` — distributional spaces, thematic projection
  (Algorithm 1), semantic measures and caches;
* :mod:`repro.knowledge` — the EuroVoc-like thesaurus and the synthetic
  Wikipedia-like corpus generator;
* :mod:`repro.datasets` — the IoT vocabulary pools and seed events;
* :mod:`repro.baselines` — exact, query-rewriting, and non-thematic
  matchers (Table 1's comparison systems);
* :mod:`repro.broker` — a pub/sub broker and multi-broker overlay;
* :mod:`repro.cep` — complex event processing over uncertain matches;
* :mod:`repro.evaluation` — the full Section 5 evaluation framework.
"""

from repro.baselines import (
    CountingIndex,
    ExactMatcher,
    NonThematicMatcher,
    RewritingMatcher,
)
from repro.broker import (
    BrokerConfig,
    BrokerOverlay,
    DeadLetterQueue,
    DeliveryPolicy,
    FaultPlan,
    ThematicBroker,
)
from repro.cep import CEPEngine, Pattern, parse_pattern
from repro.core import (
    AttributeValue,
    BatchMatchResult,
    Calibration,
    DegradedPolicy,
    EngineConfig,
    Event,
    MatchEngine,
    MatchResult,
    Predicate,
    Subscription,
    SubscriptionHandle,
    ThematicEventEngine,
    ThematicMatcher,
    format_event,
    format_subscription,
    parse_event,
    parse_subscription,
)
from repro.datasets import generate_seed_events
from repro.evaluation import Workload, WorkloadConfig, build_workload
from repro.knowledge import (
    Thesaurus,
    build_corpus,
    default_corpus,
    default_thesaurus,
)
from repro.semantics import (
    DistributionalVectorSpace,
    ExactMeasure,
    NonThematicMeasure,
    ParametricVectorSpace,
    SparseVector,
    ThematicMeasure,
)

__version__ = "1.0.0"

__all__ = [
    "AttributeValue",
    "BatchMatchResult",
    "BrokerConfig",
    "BrokerOverlay",
    "CEPEngine",
    "Calibration",
    "CountingIndex",
    "DeadLetterQueue",
    "DegradedPolicy",
    "DeliveryPolicy",
    "DistributionalVectorSpace",
    "EngineConfig",
    "Event",
    "FaultPlan",
    "ExactMatcher",
    "ExactMeasure",
    "MatchEngine",
    "MatchResult",
    "NonThematicMatcher",
    "NonThematicMeasure",
    "ParametricVectorSpace",
    "Pattern",
    "Predicate",
    "RewritingMatcher",
    "SparseVector",
    "Subscription",
    "SubscriptionHandle",
    "ThematicBroker",
    "ThematicEventEngine",
    "ThematicMatcher",
    "ThematicMeasure",
    "Thesaurus",
    "Workload",
    "WorkloadConfig",
    "build_workload",
    "build_corpus",
    "default_corpus",
    "default_thesaurus",
    "format_event",
    "format_subscription",
    "generate_seed_events",
    "parse_event",
    "parse_pattern",
    "parse_subscription",
    "__version__",
]
