"""Flight recorder: a bounded ring buffer of sampled spans, dumpable.

The tracer's full mode is for experiments; production brokers cannot
afford a JSONL line per span. The flight recorder is the always-on
counterpart: it continuously records *sampled* span tuples into a
bounded ``deque`` (append is a few hundred nanoseconds; nothing is
formatted until a dump), so when something goes wrong — degraded mode
trips, a circuit breaker opens, a fault-plan no-loss check fails — the
last ``window`` seconds of causal history can be dumped as a
Chrome-trace/Perfetto-compatible JSON file and the incident becomes an
actionable postmortem artifact instead of a bare counter increment.

Dumps are rate-limited (``min_dump_interval``) so a trip storm produces
one artifact, not thousands; suppressed triggers are counted on the
process registry (``flightrec.suppressed``). The dump format is the
Chrome ``traceEvents`` JSON array — open it at ``ui.perfetto.dev`` or
``chrome://tracing``; trace/span/parent ids ride in each event's
``args`` so ``repro trace <id>`` can read dumps too.

Trigger sites (all fire through :func:`trigger_dump`, a no-op while the
recorder is disabled):

* :class:`~repro.core.degrade.DegradedMode` tripping to the fallback;
* :class:`~repro.broker.reliability.ReliableDelivery` opening a
  circuit breaker;
* :func:`~repro.evaluation.faults.run_fault_injection` observing a
  no-loss violation.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Any

from repro.obs.clock import MONOTONIC_CLOCK, Clock, iso_time
from repro.obs.registry import get_registry

__all__ = ["FLIGHT_RECORDER", "FlightRecorder", "trigger_dump"]

#: One recorded span: (start, duration, name, trace_id, span_id,
#: parent_span_id, thread_name, attributes).
SpanRecord = tuple[
    float, float, str, str | None, str | None, str | None, str, dict[str, Any] | None
]


class FlightRecorder:
    """Ring buffer of recent sampled spans with Chrome-trace dumps.

    Parameters
    ----------
    capacity:
        Maximum spans retained (oldest evicted first).
    window:
        Seconds of history a dump includes, measured back from the
        dump's clock reading.
    min_dump_interval:
        Minimum seconds between *triggered* dumps; triggers inside the
        interval are counted (``flightrec.suppressed``) and dropped.
        Explicit :meth:`dump` calls are never rate-limited.
    clock:
        Injectable time source (window arithmetic and rate limiting).
    """

    def __init__(
        self,
        *,
        capacity: int = 8192,
        window: float = 30.0,
        min_dump_interval: float = 5.0,
        clock: Clock | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if window <= 0:
            raise ValueError("window must be positive")
        self.capacity = capacity
        self.window = window
        self.min_dump_interval = min_dump_interval
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self.enabled = False
        self._dump_dir: Path | None = None
        self._buffer: deque[SpanRecord] = deque(maxlen=capacity)
        self._dump_lock = threading.Lock()
        self._last_dump = -float("inf")
        self._dump_seq = 0

    # -- lifecycle ----------------------------------------------------------

    def enable(
        self, dump_dir: str | Path, *, clock: Clock | None = None
    ) -> None:
        """Start recording; triggered dumps land in ``dump_dir``."""
        self._dump_dir = Path(dump_dir)
        if clock is not None:
            self.clock = clock
        self._buffer.clear()
        self._last_dump = -float("inf")
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False
        self._dump_dir = None
        self._buffer.clear()

    def __len__(self) -> int:
        return len(self._buffer)

    # -- the hot path -------------------------------------------------------

    def record(
        self,
        start: float,
        duration: float,
        name: str,
        trace_id: str | None,
        span_id: str | None,
        parent_span_id: str | None,
        thread_name: str,
        attributes: dict[str, Any] | None,
    ) -> None:
        """Append one finished span (lock-free: deque appends are atomic)."""
        self._buffer.append(
            (
                start,
                duration,
                name,
                trace_id,
                span_id,
                parent_span_id,
                thread_name,
                attributes,
            )
        )

    # -- dumping ------------------------------------------------------------

    def trigger(self, reason: str, detail: str = "") -> Path | None:
        """Rate-limited dump for an incident trigger; None when suppressed."""
        if not self.enabled or self._dump_dir is None:
            return None
        with self._dump_lock:
            now = self.clock.monotonic()
            if now - self._last_dump < self.min_dump_interval:
                get_registry().counter("flightrec.suppressed").inc()
                return None
            self._last_dump = now
            self._dump_seq += 1
            seq = self._dump_seq
        safe_reason = "".join(
            ch if ch.isalnum() or ch in "-_" else "-" for ch in reason
        )
        path = self._dump_dir / f"flightrec_{seq:03d}_{safe_reason}.json"
        return self.dump(path, reason=reason, detail=detail)

    def dump(
        self, path: str | Path, *, reason: str = "manual", detail: str = ""
    ) -> Path:
        """Write the last ``window`` seconds as Chrome-trace JSON."""
        path = Path(path)
        now = self.clock.monotonic()
        horizon = now - self.window
        # list(deque) is atomic under the GIL; recording continues freely.
        records = [rec for rec in list(self._buffer) if rec[0] >= horizon]
        trace_events: list[dict[str, Any]] = []
        tids: dict[str, int] = {}
        for start, duration, name, trace_id, span_id, parent_id, thread, attrs in records:
            tid = tids.setdefault(thread, len(tids) + 1)
            args: dict[str, Any] = dict(attrs) if attrs else {}
            if trace_id is not None:
                args["trace_id"] = trace_id
            if span_id is not None:
                args["span_id"] = span_id
            if parent_id is not None:
                args["parent_span_id"] = parent_id
            trace_events.append(
                {
                    "name": name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": start * 1e6,
                    "dur": duration * 1e6,
                    "pid": 1,
                    "tid": tid,
                    "args": args,
                }
            )
        for thread, tid in tids.items():
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": thread},
                }
            )
        document = {
            "displayTimeUnit": "ms",
            "otherData": {
                "reason": reason,
                "detail": detail,
                "spans": len(records),
                "window_seconds": self.window,
                "dumped_at": iso_time(self.clock.wall()),
            },
            "traceEvents": trace_events,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1)
            handle.write("\n")
        get_registry().counter("flightrec.dumps").inc()
        return path


#: The process-wide flight recorder the global tracer feeds.
FLIGHT_RECORDER = FlightRecorder()


def trigger_dump(reason: str, detail: str = "") -> Path | None:
    """Fire the process-wide recorder's trigger; no-op while disabled.

    The one-liner incident hooks call — cheap enough (one attribute
    check) to sit on failure paths unconditionally.
    """
    if not FLIGHT_RECORDER.enabled:
        return None
    return FLIGHT_RECORDER.trigger(reason, detail)
