"""Machine-readable benchmark artifacts (``BENCH_<name>.json``).

Every benchmark driver reports through :func:`write_bench_artifact`, so
all artifacts share one schema (``repro.bench/v1``)::

    {
      "schema": "repro.bench/v1",
      "bench": "fig9_throughput",
      "created_unix": 1754500000.0,
      "scale": "small",
      "metrics": { ... bench-specific numbers ... }
    }

Standard metric shapes — throughput, latency percentiles, cache hit
rate, F1 — come from the small helpers below so downstream tooling
(trend dashboards, regression gates) can parse any artifact without
per-bench special cases. :class:`LatencySummary` is the exact-percentile
companion to the registry's streaming histograms: benches hold all
their samples in memory anyway, so they report exact p50/p90/p99.
"""

from __future__ import annotations

import json
import os
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.obs.clock import wall_time

__all__ = [
    "SCHEMA",
    "LatencySummary",
    "artifact_path",
    "write_bench_artifact",
    "load_bench_artifact",
]

SCHEMA = "repro.bench/v1"

#: Environment variable overriding where artifacts land (default: cwd).
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def _exact_percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted samples."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


@dataclass(frozen=True)
class LatencySummary:
    """Exact latency percentiles over a finished sample set (seconds)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    @classmethod
    def from_seconds(cls, samples: Sequence[float]) -> "LatencySummary":
        if not samples:
            return cls(count=0, mean=0.0, p50=0.0, p90=0.0, p99=0.0, max=0.0)
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=_exact_percentile(ordered, 0.50),
            p90=_exact_percentile(ordered, 0.90),
            p99=_exact_percentile(ordered, 0.99),
            max=ordered[-1],
        )

    def as_dict(self, *, unit: str = "seconds") -> dict[str, Any]:
        scale = 1000.0 if unit == "ms" else 1.0
        return {
            "unit": unit,
            "count": self.count,
            "mean": self.mean * scale,
            "p50": self.p50 * scale,
            "p90": self.p90 * scale,
            "p99": self.p99 * scale,
            "max": self.max * scale,
        }


def artifact_path(name: str, directory: str | Path | None = None) -> Path:
    """Where ``BENCH_<name>.json`` lives for the current configuration."""
    if directory is None:
        directory = os.environ.get(BENCH_DIR_ENV, ".")
    return Path(directory) / f"BENCH_{name}.json"


def write_bench_artifact(
    name: str,
    metrics: dict[str, Any],
    *,
    directory: str | Path | None = None,
    extra: dict[str, Any] | None = None,
) -> Path:
    """Write one benchmark's machine-readable result document.

    ``metrics`` is the bench-specific payload; ``extra`` adds top-level
    context fields (workload summary, grid shape, …). Returns the path
    written.
    """
    document: dict[str, Any] = {
        "schema": SCHEMA,
        "bench": name,
        "created_unix": wall_time(),
        "scale": os.environ.get("REPRO_SCALE", "small"),
    }
    if extra:
        document.update(extra)
    document["metrics"] = metrics
    path = artifact_path(name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False, default=float)
        handle.write("\n")
    return path


def load_bench_artifact(name: str, directory: str | Path | None = None) -> dict:
    """Read an artifact back; raises if it is missing or off-schema."""
    with open(artifact_path(name, directory), encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema") != SCHEMA:
        raise ValueError(
            f"artifact {name!r} has schema {document.get('schema')!r},"
            f" expected {SCHEMA!r}"
        )
    return document
