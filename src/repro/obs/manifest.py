"""Canonical manifest of every metric the system may register.

A metric that is not declared here does not exist: the metrics-manifest
lint rule (RL400/RL401 in :mod:`repro.analysis`) rejects any
``counter(...)`` / ``gauge(...)`` / ``histogram(...)`` registration in
``src/`` whose name is absent from this table or whose instrument kind
disagrees with the declaration. That makes this file the single
reviewed inventory operators can trust — no undocumented series, no
typo silently forking a second time series next to the real one, and no
hand-maintained mirrors of state that already exists (the PR-4
``breakers_open`` drift bug).

Names ending in ``.*`` declare a *family*: a dynamically named series
whose prefix is fixed (per-stage span histograms, per-space cache
gauges). Dynamic registrations must land inside a declared family.

The same table is rendered as the metrics reference in
``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["METRICS", "MetricSpec", "metric_names", "spec_for"]


@dataclass(frozen=True)
class MetricSpec:
    """One declared metric: name (or ``prefix.*`` family), kind, meaning."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    description: str


METRICS: tuple[MetricSpec, ...] = (
    # -- broker (serial/threaded/sharded dispatch) -------------------------
    MetricSpec(
        "broker.published", "counter", "Events accepted by publish()."
    ),
    MetricSpec(
        "broker.evaluations",
        "counter",
        "Subscription evaluations performed while matching.",
    ),
    MetricSpec(
        "broker.deliveries", "counter", "Deliveries handed to subscriber callbacks."
    ),
    MetricSpec(
        "broker.replayed",
        "counter",
        "Deliveries produced by replay for late subscribers.",
    ),
    MetricSpec(
        "broker.callback_errors",
        "counter",
        "Subscriber callbacks that raised (swallowed after logging).",
    ),
    MetricSpec(
        "broker.batch_errors",
        "counter",
        "Ingress micro-batches whose engine pass raised.",
    ),
    MetricSpec(
        "broker.queue_depth", "gauge", "Current ingress queue depth (sharded broker)."
    ),
    MetricSpec(
        "broker.queue_wait_seconds",
        "histogram",
        "Per-event wait between enqueue and batch pickup.",
    ),
    MetricSpec(
        "broker.batch_size", "histogram", "Events per drained ingress micro-batch."
    ),
    # -- engine (matching core + degraded mode) ----------------------------
    MetricSpec(
        "engine.events_processed", "counter", "Events run through the match pipeline."
    ),
    MetricSpec(
        "engine.evaluations", "counter", "Event/subscription pairs evaluated."
    ),
    MetricSpec(
        "engine.deliveries", "counter", "Match results delivered to subscriptions."
    ),
    MetricSpec(
        "engine.pruned",
        "counter",
        "Event/subscription pairs skipped by the prefilter.",
    ),
    MetricSpec(
        "engine.degraded_trips",
        "counter",
        "Transitions into exact-anchor fallback (incl. failed probes).",
    ),
    MetricSpec(
        "engine.degraded_recoveries",
        "counter",
        "Recoveries from fallback to the full thematic path.",
    ),
    MetricSpec(
        "engine.degraded_batches", "counter", "Batches served by the fallback."
    ),
    MetricSpec(
        "engine.degraded_matches",
        "counter",
        "Single-pair matches served by the fallback.",
    ),
    MetricSpec(
        "engine.degraded_active",
        "gauge",
        "1 while the engine is in degraded mode, else 0.",
    ),
    # -- reliable delivery --------------------------------------------------
    MetricSpec(
        "reliability.retries", "counter", "Callback attempts after the first."
    ),
    MetricSpec(
        "reliability.dead_letters", "counter", "Deliveries routed to the DLQ."
    ),
    MetricSpec(
        "reliability.deadline_exceeded",
        "counter",
        "Deliveries abandoned at their deadline.",
    ),
    MetricSpec(
        "reliability.breaker_opens", "counter", "Circuit-breaker open transitions."
    ),
    MetricSpec(
        "reliability.breaker_short_circuits",
        "counter",
        "Deliveries skipped because a breaker was open.",
    ),
    MetricSpec(
        "reliability.breakers_open",
        "gauge",
        "Breakers currently open (recomputed from breaker state).",
    ),
    MetricSpec(
        "reliability.backoff_seconds", "histogram", "Backoff slept between attempts."
    ),
    MetricSpec(
        "reliability.callback_seconds", "histogram", "Callback execution time."
    ),
    # -- durability (write-ahead log + snapshots) ---------------------------
    MetricSpec(
        "durability.records", "counter", "Records appended to the write-ahead log."
    ),
    MetricSpec(
        "durability.bytes", "counter", "Framed bytes appended to the write-ahead log."
    ),
    MetricSpec(
        "durability.fsyncs", "counter", "fsync(2) calls issued by the journal."
    ),
    MetricSpec(
        "durability.snapshots", "counter", "Snapshots written (rotation + recovery)."
    ),
    MetricSpec(
        "durability.recoveries",
        "counter",
        "Journal recoveries performed at broker construction.",
    ),
    MetricSpec(
        "durability.replayed_records",
        "counter",
        "WAL records replayed on top of a snapshot during recovery.",
    ),
    MetricSpec(
        "durability.corrupt_records",
        "counter",
        "CRC-failed frames found during recovery (reported, not replayed).",
    ),
    MetricSpec(
        "durability.truncated_tails",
        "counter",
        "Segments whose final frame was torn (recovered to last full record).",
    ),
    MetricSpec(
        "durability.duplicates_suppressed",
        "counter",
        "Re-dispatches skipped because the (subscriber, sequence) key was settled.",
    ),
    MetricSpec(
        "durability.restore_misses",
        "counter",
        "Journaled deliveries that no longer matched on restore (skipped).",
    ),
    MetricSpec(
        "durability.append_seconds",
        "histogram",
        "Wall time of one journal append (framing + write + fsync policy).",
    ),
    # -- flight recorder ----------------------------------------------------
    MetricSpec(
        "flightrec.dumps", "counter", "Flight-recorder dumps written to disk."
    ),
    MetricSpec(
        "flightrec.suppressed",
        "counter",
        "Triggered dumps dropped by the rate limiter.",
    ),
    # -- vectorized kernel + process shards ---------------------------------
    MetricSpec(
        "kernel.batches",
        "counter",
        "Batched relatedness-kernel invocations (score_pairs calls).",
    ),
    MetricSpec(
        "kernel.pairs",
        "counter",
        "Term pairs scored by the vectorized relatedness kernel.",
    ),
    MetricSpec(
        "shard.worker.batches",
        "counter",
        "Micro-batch match commands fanned out to shard worker processes.",
    ),
    MetricSpec(
        "shard.worker.events",
        "counter",
        "Events shipped to the process-shard workers (once per batch).",
    ),
    MetricSpec(
        "shard.worker.deliveries",
        "counter",
        "Threshold survivors returned by shard worker processes.",
    ),
    MetricSpec(
        "shard.worker.batch_seconds",
        "histogram",
        "Wall time of one process-shard fan-out (send through merge).",
    ),
    # -- caches -------------------------------------------------------------
    MetricSpec(
        "cache.relatedness_hit_rate", "gauge", "Relatedness cache hit rate [0, 1]."
    ),
    MetricSpec(
        "cache.relatedness_entries", "gauge", "Relatedness cache resident entries."
    ),
    # -- approximate neighbor index (ann anchor mode) -----------------------
    MetricSpec(
        "index.queries",
        "counter",
        "Token-neighborhood queries answered by the ANN index.",
    ),
    MetricSpec(
        "index.candidates",
        "counter",
        "LSH bucket candidates exact-rechecked by the ANN index.",
    ),
    MetricSpec(
        "index.exact_scans",
        "counter",
        "ANN queries that fell back to the exact vocabulary scan.",
    ),
    # -- persistent precomputed-score store ---------------------------------
    MetricSpec(
        "score_store.hits",
        "counter",
        "Lookups answered by the precomputed score store.",
    ),
    MetricSpec(
        "score_store.misses",
        "counter",
        "Store lookups that fell through to the online cache/kernel.",
    ),
    # -- dynamic families ---------------------------------------------------
    MetricSpec(
        "stage.*",
        "histogram",
        "Per-pipeline-stage span durations from the tracer.",
    ),
    MetricSpec(
        "space.cache.*",
        "gauge",
        "Projection-cache statistics per vector space.",
    ),
)


def metric_names() -> tuple[str, ...]:
    return tuple(spec.name for spec in METRICS)


def spec_for(name: str) -> MetricSpec | None:
    """Resolve ``name`` against exact entries, then declared families."""
    for spec in METRICS:
        if spec.name == name:
            return spec
    for spec in METRICS:
        if spec.name.endswith(".*") and name.startswith(spec.name[:-1]):
            return spec
    return None
