"""Injectable time sources for the reliability and degraded-mode layers.

Every component that reasons about time — retry backoff, delivery
deadlines, circuit-breaker resets, the degraded-matching latency budget
— reads time through a :class:`Clock` instead of calling
:func:`time.monotonic` / :func:`time.sleep` directly. Production code
uses :data:`MONOTONIC_CLOCK`; the fault-injection harness substitutes a
:class:`FakeClock`, so every timing decision in the test suite is a
pure function of the injected schedule — no wall-clock dependence, no
flaky sleeps, and a simulated multi-second outage costs microseconds of
test time.
"""

from __future__ import annotations

import threading
import time
from datetime import datetime, timezone
from typing import Protocol, runtime_checkable

__all__ = [
    "Clock",
    "FakeClock",
    "MonotonicClock",
    "MONOTONIC_CLOCK",
    "iso_time",
    "wall_time",
]


@runtime_checkable
class Clock(Protocol):
    """Minimal time source: a monotonic reading, a wall reading, a sleep."""

    def monotonic(self) -> float:
        """Seconds from an arbitrary, monotonically advancing origin."""
        ...

    def wall(self) -> float:
        """Unix wall-clock seconds, for timestamps in exported records.

        Never used to measure durations (that is what :meth:`monotonic`
        is for) — only to stamp artifacts that leave the process, so a
        fake clock can script it and dumped records stay correlatable.
        """
        ...

    def sleep(self, seconds: float) -> None:
        """Block (or simulate blocking) for ``seconds``."""
        ...


class MonotonicClock:
    """The real thing: :func:`time.monotonic` + :func:`time.sleep`."""

    def monotonic(self) -> float:
        return time.monotonic()

    def wall(self) -> float:
        return time.time()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock:
    """Deterministic clock for tests: ``sleep`` advances, never blocks.

    Thread-safe, because broker dispatcher threads and test threads read
    it concurrently. A hung callback is simulated by advancing the clock
    inside the callback (see :mod:`repro.broker.faults`), so deadline
    and breaker logic observe exactly the elapsed time the fault plan
    scripted.
    """

    def __init__(self, start: float = 0.0, *, epoch: float = 0.0) -> None:
        self._now = float(start)
        self._epoch = float(epoch)
        self._lock = threading.Lock()

    def monotonic(self) -> float:
        with self._lock:
            return self._now

    def wall(self) -> float:
        """Scripted wall time: ``epoch`` plus the elapsed fake time.

        ``epoch`` defaults to 0.0 (the Unix epoch), so records stamped
        under a fake clock are fully deterministic.
        """
        with self._lock:
            return self._epoch + self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new reading."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        with self._lock:
            self._now += float(seconds)
            return self._now


#: Shared process-wide default clock (stateless, so sharing is free).
MONOTONIC_CLOCK = MonotonicClock()


def wall_time() -> float:
    """Current Unix wall-clock time, for timestamps in exported records.

    This is the one sanctioned wall-clock read in the codebase: trace
    records and bench artifacts need real-world timestamps, but nothing
    may *reason* about durations with them — durations and deadlines go
    through :class:`Clock`. Keeping the call here (rather than scattered
    ``time.time()`` calls) is what lets the clock-discipline lint rule
    ban :mod:`time` everywhere else.
    """
    return time.time()


def iso_time(ts: float) -> str:
    """Format a Unix timestamp as an ISO-8601 UTC string (``...Z``).

    The one sanctioned wall-clock *formatter*: dead-letter records and
    flight-recorder dumps stamp themselves with this so the two kinds of
    postmortem artifact are correlatable by eye and by parser. Takes the
    timestamp as an argument (rather than reading the clock itself) so
    callers keep reading time through their injectable :class:`Clock`.
    """
    stamp = datetime.fromtimestamp(ts, tz=timezone.utc)
    return stamp.isoformat(timespec="milliseconds").replace("+00:00", "Z")
