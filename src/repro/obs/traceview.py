"""Offline trace reconstruction: span logs and dumps back into trees.

``repro trace <id>`` reads the artifacts the tracing layer writes — the
JSONL span sink (``--trace-out``) and Chrome-trace dumps (flight
recorder, converted ``trace.json``) — normalizes both into one span
record shape, and rebuilds the causal tree of a single trace: the
publish root, the ingress wait, every delivery attempt, breaker
rejections, and the dead-letter marker, in start order with parent/child
indentation. This is the debugging loop the trace context exists for:
a dead-letter record names a ``trace_id``; this module answers "what
exactly happened to that event?".

The module is pure file-reading and formatting — no tracer state — so
it works on dumps from another process, another machine, or a CI
artifact download.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path
from typing import Any

__all__ = [
    "build_trace_index",
    "jsonl_to_chrome",
    "load_span_records",
    "render_trace_tree",
    "summarize_traces",
]

#: Normalized span record keys: ``span`` (name), ``start`` (seconds),
#: ``duration_ms``, ``trace_id``/``span_id``/``parent_span_id`` (may be
#: None), ``attributes`` (dict).


def _from_sink_line(record: dict[str, Any]) -> dict[str, Any]:
    return {
        "span": record.get("span", "?"),
        "start": float(record.get("start", 0.0)),
        "duration_ms": float(record.get("duration_ms", 0.0)),
        "trace_id": record.get("trace_id"),
        "span_id": record.get("span_id"),
        "parent_span_id": record.get("parent_span_id"),
        "attributes": record.get("attributes", {}),
    }


def _from_chrome_event(event: dict[str, Any]) -> dict[str, Any] | None:
    if event.get("ph") != "X":
        return None
    args = dict(event.get("args", {}))
    return {
        "span": event.get("name", "?"),
        "start": float(event.get("ts", 0.0)) / 1e6,
        "duration_ms": float(event.get("dur", 0.0)) / 1e3,
        "trace_id": args.pop("trace_id", None),
        "span_id": args.pop("span_id", None),
        "parent_span_id": args.pop("parent_span_id", None),
        "attributes": args,
    }


def _load_file(path: Path) -> list[dict[str, Any]]:
    records: list[dict[str, Any]] = []
    if path.suffix == ".jsonl":
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(_from_sink_line(json.loads(line)))
        return records
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    for event in document.get("traceEvents", []):
        record = _from_chrome_event(event)
        if record is not None:
            records.append(record)
    return records


def load_span_records(paths: Iterable[str | Path]) -> list[dict[str, Any]]:
    """Read span records from files and directories, any supported format.

    A directory contributes every ``*.jsonl`` span log and ``*.json``
    Chrome-trace dump directly inside it. Unreadable or off-format files
    raise — a trace investigation must not silently run on partial data.

    Records are deduplicated by ``(trace_id, span_id)``: a ``--trace-out``
    directory holds the same spans up to three times (the JSONL log, its
    converted ``trace.json``, and any flight-recorder incident dump), and
    a span must render once no matter how many artifacts captured it.
    """
    records: list[dict[str, Any]] = []
    seen: set[tuple[str, str]] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            loaded: list[dict[str, Any]] = []
            for child in sorted(path.glob("*.jsonl")):
                loaded.extend(_load_file(child))
            for child in sorted(path.glob("*.json")):
                loaded.extend(_load_file(child))
        else:
            loaded = _load_file(path)
        for record in loaded:
            trace_id, span_id = record["trace_id"], record["span_id"]
            if trace_id and span_id:
                key = (str(trace_id), str(span_id))
                if key in seen:
                    continue
                seen.add(key)
            records.append(record)
    return records


def build_trace_index(
    records: Iterable[dict[str, Any]],
) -> dict[str, list[dict[str, Any]]]:
    """Group records by trace id (records without one are dropped)."""
    index: dict[str, list[dict[str, Any]]] = {}
    for record in records:
        trace_id = record.get("trace_id")
        if trace_id:
            index.setdefault(str(trace_id), []).append(record)
    for spans in index.values():
        spans.sort(key=lambda record: record["start"])
    return index


def summarize_traces(
    records: Iterable[dict[str, Any]],
) -> list[dict[str, Any]]:
    """One summary row per trace: id, span count, root name, duration."""
    rows: list[dict[str, Any]] = []
    for trace_id, spans in sorted(build_trace_index(records).items()):
        span_ids = {span["span_id"] for span in spans if span["span_id"]}
        roots = [
            span
            for span in spans
            if span["parent_span_id"] not in span_ids
        ]
        rows.append(
            {
                "trace_id": trace_id,
                "spans": len(spans),
                "root": roots[0]["span"] if roots else "?",
                "names": sorted({span["span"] for span in spans}),
            }
        )
    return rows


def render_trace_tree(
    records: Iterable[dict[str, Any]], trace_id: str
) -> str:
    """The causal tree of one trace as an indented text rendering.

    Spans whose parent id is absent from the trace (the root, plus any
    span orphaned by sampling a partial file set) render at top level;
    children sort by start time.
    """
    spans = build_trace_index(records).get(trace_id)
    if not spans:
        return f"trace {trace_id}: no spans found"
    span_ids = {span["span_id"] for span in spans if span["span_id"]}
    children: dict[str | None, list[dict[str, Any]]] = {}
    roots: list[dict[str, Any]] = []
    for span in spans:
        parent = span["parent_span_id"]
        if parent in span_ids:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    base = min(span["start"] for span in spans)
    lines = [f"trace {trace_id} · {len(spans)} span(s)"]

    def _render(span: dict[str, Any], depth: int) -> None:
        indent = "  " * depth
        offset_ms = (span["start"] - base) * 1000.0
        attrs = span.get("attributes") or {}
        suffix = (
            " " + " ".join(f"{k}={v}" for k, v in attrs.items()) if attrs else ""
        )
        lines.append(
            f"{indent}+{offset_ms:9.3f}ms  {span['span']} "
            f"[{span['duration_ms']:.3f}ms]{suffix}"
        )
        for child in children.get(span["span_id"], []):
            _render(child, depth + 1)

    for root in roots:
        _render(root, 0)
    return "\n".join(lines)


def jsonl_to_chrome(records: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Convert normalized span records to a Chrome-trace document.

    Used by ``--trace-out <dir>`` at shutdown: the JSONL sink is the
    durable log, this conversion is the Perfetto-loadable view.
    """
    trace_events: list[dict[str, Any]] = []
    for record in records:
        args = dict(record.get("attributes") or {})
        for key in ("trace_id", "span_id", "parent_span_id"):
            if record.get(key) is not None:
                args[key] = record[key]
        trace_events.append(
            {
                "name": record["span"],
                "cat": "repro",
                "ph": "X",
                "ts": record["start"] * 1e6,
                "dur": record["duration_ms"] * 1e3,
                "pid": 1,
                "tid": 1,
                "args": args,
            }
        )
    return {"displayTimeUnit": "ms", "traceEvents": trace_events}
