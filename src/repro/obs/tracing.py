"""Pipeline tracing: lightweight spans over the match hot path.

A *span* times one stage of the pipeline (theme projection, similarity-
matrix build, top-k enumeration, broker delivery, …). Spans do two
things when tracing is enabled:

* aggregate their duration into a ``stage.<name>`` histogram on the
  tracer's registry, so ``repro stats`` / ``--trace`` can print
  per-stage p50/p99 without storing every event;
* optionally append a JSONL record to a sink (structured logs for
  offline analysis), including the parent span for call-tree context.

When tracing is **disabled** (the default) ``Tracer.span`` returns a
shared no-op context manager: the cost on the hot path is one attribute
check and an empty ``with`` block — no allocation, no clock reads —
keeping the instrumented pipeline within noise of the uninstrumented
one.

Usage::

    from repro.obs import TRACER

    with TRACER.span("matcher.match", n=3, m=5):
        ...

    @traced("semantics.project")
    def project(...): ...

    TRACER.enable(sink="trace.jsonl")
"""

from __future__ import annotations

import functools
import json
import threading
from collections.abc import Callable
from pathlib import Path
from typing import Any, TextIO

from repro.obs.clock import MONOTONIC_CLOCK, Clock, wall_time
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["Tracer", "TRACER", "traced"]


class _NoopSpan:
    """Shared do-nothing span for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class _Span:
    """An active timed span; created only when tracing is enabled."""

    __slots__ = ("tracer", "name", "attributes", "start", "_parent")

    def __init__(
        self, tracer: "Tracer", name: str, attributes: dict[str, Any]
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attributes = attributes
        self.start = 0.0
        self._parent: str | None = None

    def __enter__(self) -> "_Span":
        stack = self.tracer._stack()
        self._parent = stack[-1] if stack else None
        stack.append(self.name)
        self.start = self.tracer.clock.monotonic()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        duration = self.tracer.clock.monotonic() - self.start
        stack = self.tracer._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        self.tracer._record(self.name, self._parent, duration, self.attributes)
        return False


class Tracer:
    """Span factory with a zero-overhead disabled mode.

    Parameters of :meth:`enable`:

    registry:
        Where span durations aggregate as ``stage.<name>`` histograms
        (default: the process-wide registry).
    sink:
        Optional JSONL destination — a path or an open text file. Each
        finished span appends one JSON object per line.
    """

    def __init__(self, *, clock: Clock | None = None) -> None:
        #: Duration source for spans; injectable so traced pipelines stay
        #: deterministic under the fault harness's FakeClock.
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self.enabled = False
        self._registry: MetricsRegistry | None = None
        self._sink: TextIO | None = None
        self._owns_sink = False
        self._sink_lock = threading.Lock()
        self._local = threading.local()

    # -- lifecycle ----------------------------------------------------------

    def enable(
        self,
        *,
        registry: MetricsRegistry | None = None,
        sink: str | TextIO | None = None,
    ) -> None:
        self.disable()
        self._registry = registry if registry is not None else get_registry()
        if isinstance(sink, str):
            Path(sink).parent.mkdir(parents=True, exist_ok=True)
            self._sink = open(sink, "a", encoding="utf-8")
            self._owns_sink = True
        else:
            self._sink = sink
            self._owns_sink = False
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False
        if self._sink is not None and self._owns_sink:
            self._sink.close()
        self._sink = None
        self._owns_sink = False

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    # -- span API -----------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """A context manager timing one pipeline stage.

        Returns the shared no-op span when tracing is disabled — callers
        never branch on :attr:`enabled` themselves.
        """
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name, attributes)

    def stage_timings(self) -> dict[str, dict[str, Any]]:
        """Summaries of every ``stage.*`` histogram, keyed by stage name."""
        snapshot = self.registry.snapshot()["histograms"]
        return {
            name.removeprefix("stage."): summary
            for name, summary in snapshot.items()
            if name.startswith("stage.")
        }

    # -- internals ----------------------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(
        self,
        name: str,
        parent: str | None,
        duration: float,
        attributes: dict[str, Any],
    ) -> None:
        registry = self._registry
        if registry is not None:
            registry.histogram(f"stage.{name}").record(duration)
        sink = self._sink
        if sink is not None:
            record: dict[str, Any] = {
                "ts": wall_time(),
                "span": name,
                "duration_ms": duration * 1000.0,
            }
            if parent is not None:
                record["parent"] = parent
            if attributes:
                record["attributes"] = attributes
            line = json.dumps(record, separators=(",", ":"))
            with self._sink_lock:
                sink.write(line + "\n")


#: The process-wide tracer every instrumented module shares.
TRACER = Tracer()


def traced(name: str, tracer: Tracer | None = None) -> Callable:
    """Decorator tracing every call of a function as span ``name``."""

    def decorate(func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            active = tracer if tracer is not None else TRACER
            if not active.enabled:
                return func(*args, **kwargs)
            with active.span(name):
                return func(*args, **kwargs)

        return wrapper

    return decorate
