"""Pipeline tracing: causal spans over the match and delivery path.

A *span* times one stage of an event's life (theme projection,
similarity-matrix build, top-k enumeration, ingress wait, delivery
attempt, …). Spans participate in two regimes:

* **Full tracing** (:meth:`Tracer.enable`): every span aggregates its
  duration into a ``stage.<name>`` histogram on the tracer's registry
  and can append a JSONL record to a sink, so ``repro stats`` /
  ``--trace`` can print per-stage p50/p99 and ``repro trace <id>`` can
  rebuild call trees offline.
* **Flight recording** (:meth:`Tracer.attach_flight_recorder`): spans
  belonging to *sampled* traces are appended to a bounded ring buffer
  (:mod:`repro.obs.flightrec`) at near-zero cost, dumped only when an
  incident trigger fires.

Causality rides on :class:`~repro.obs.context.TraceContext`: the broker
mints one context per published event (:meth:`Tracer.mint_trace`), opens
the event's root span with :meth:`Tracer.root_span`, and passes the
context along explicitly (queue tuples, :class:`Delivery` objects,
dead-letter records). Within a thread, child spans inherit the current
context automatically; crossing a thread (shard pool workers, dispatcher
threads) uses :meth:`Tracer.activate` to re-establish it.

When tracing is **fully inactive** (the default) ``Tracer.span`` returns
a shared no-op context manager and ``mint_trace`` returns ``None``: the
cost on the hot path is one attribute check and an empty ``with`` block
— no allocation, no clock reads — keeping the instrumented pipeline
within noise of the uninstrumented one.

Usage::

    from repro.obs import TRACER

    with TRACER.span("matcher.match", n=3, m=5):
        ...

    ctx = TRACER.mint_trace()
    with TRACER.root_span("broker.publish", ctx):
        ...

    TRACER.enable(sink="trace.jsonl")
"""

from __future__ import annotations

import functools
import json
import random
import threading
from collections.abc import Callable
from pathlib import Path
from typing import TYPE_CHECKING, Any, TextIO

from repro.obs.clock import MONOTONIC_CLOCK, Clock, wall_time
from repro.obs.context import TraceContext, new_span_id, new_trace_id
from repro.obs.registry import MetricsRegistry, get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.flightrec import FlightRecorder

__all__ = ["DEFAULT_FLIGHT_SAMPLE_RATE", "Tracer", "TRACER", "traced"]

#: Default sampling rate while only the flight recorder is attached:
#: 1-in-100 traces recorded completely, the rest cost one RNG draw at
#: mint time plus a near-free unsampled span path. Chosen so armed
#: flight recording stays under ~2% throughput overhead on the fig9
#: workload while a dump still captures dozens of whole traces.
DEFAULT_FLIGHT_SAMPLE_RATE = 0.01


class _NoopSpan:
    """Shared do-nothing span for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class _NoopActivation:
    """Shared do-nothing context activation."""

    __slots__ = ()

    def __enter__(self) -> "_NoopActivation":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP_ACTIVATION = _NoopActivation()


class _Activation:
    """Re-establish a trace context as current on this thread."""

    __slots__ = ("tracer", "ctx", "_previous")

    def __init__(self, tracer: "Tracer", ctx: TraceContext) -> None:
        self.tracer = tracer
        self.ctx = ctx
        self._previous: TraceContext | None = None

    def __enter__(self) -> "_Activation":
        local = self.tracer._local
        self._previous = getattr(local, "ctx", None)
        local.ctx = self.ctx
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.tracer._local.ctx = self._previous
        return False


class _Span:
    """An active timed span; created only when tracing is active."""

    __slots__ = (
        "tracer",
        "name",
        "attributes",
        "start",
        "ctx",
        "_root",
        "_parent",
        "_parent_ctx",
        "_parent_span_id",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attributes: dict[str, Any],
        *,
        ctx: TraceContext | None = None,
        root: bool = False,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attributes = attributes
        self.start = 0.0
        self.ctx = ctx
        self._root = root
        self._parent: str | None = None
        self._parent_ctx: TraceContext | None = None
        self._parent_span_id: str | None = None

    def __enter__(self) -> "_Span":
        tracer = self.tracer
        if tracer.enabled:
            # The name stack only feeds sink records' "parent" field;
            # recorder-only mode links spans by ids and skips the upkeep.
            stack = tracer._stack()
            self._parent = stack[-1] if stack else None
            stack.append(self.name)
        local = tracer._local
        parent_ctx: TraceContext | None = getattr(local, "ctx", None)
        self._parent_ctx = parent_ctx
        if self.ctx is None and parent_ctx is not None:
            self.ctx = parent_ctx.child()
        if not self._root and parent_ctx is not None:
            self._parent_span_id = parent_ctx.span_id
        if self.ctx is not None:
            local.ctx = self.ctx
        self.start = tracer.clock.monotonic()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        tracer = self.tracer
        duration = tracer.clock.monotonic() - self.start
        if tracer.enabled:
            stack = tracer._stack()
            if stack and stack[-1] == self.name:
                stack.pop()
        if self.ctx is not None:
            tracer._local.ctx = self._parent_ctx
        tracer._record(
            self.name,
            self._parent,
            duration,
            self.attributes,
            ctx=self.ctx,
            parent_span_id=self._parent_span_id,
            start=self.start,
        )
        return False


class Tracer:
    """Span factory with a zero-overhead inactive mode.

    Parameters of :meth:`enable`:

    registry:
        Where span durations aggregate as ``stage.<name>`` histograms
        (default: the process-wide registry).
    sink:
        Optional JSONL destination — a path or an open text file. Each
        finished span appends one JSON object per line.
    sample_rate:
        Fraction of minted traces that are *sampled* (recorded by the
        flight recorder; full tracing records every span regardless).
    """

    def __init__(self, *, clock: Clock | None = None) -> None:
        #: Duration source for spans; injectable so traced pipelines stay
        #: deterministic under the fault harness's FakeClock.
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self.enabled = False
        self._registry: MetricsRegistry | None = None
        self._sink: TextIO | None = None
        self._owns_sink = False
        self._sink_lock = threading.Lock()
        self._local = threading.local()
        self._recorder: "FlightRecorder | None" = None
        self._enabled_rate = 1.0
        self._recorder_rate = DEFAULT_FLIGHT_SAMPLE_RATE
        self._rng = random.Random(0x5EED)
        self._rng_lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------

    def enable(
        self,
        *,
        registry: MetricsRegistry | None = None,
        sink: str | TextIO | None = None,
        sample_rate: float = 1.0,
    ) -> None:
        self.disable()
        self._registry = registry if registry is not None else get_registry()
        if isinstance(sink, str):
            Path(sink).parent.mkdir(parents=True, exist_ok=True)
            self._sink = open(sink, "a", encoding="utf-8")
            self._owns_sink = True
        else:
            self._sink = sink
            self._owns_sink = False
        self._enabled_rate = sample_rate
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False
        if self._sink is not None and self._owns_sink:
            self._sink.close()
        self._sink = None
        self._owns_sink = False

    def attach_flight_recorder(
        self,
        recorder: "FlightRecorder",
        *,
        sample_rate: float = DEFAULT_FLIGHT_SAMPLE_RATE,
    ) -> None:
        """Feed sampled spans to ``recorder`` (independently of enable)."""
        self._recorder = recorder
        self._recorder_rate = sample_rate

    def detach_flight_recorder(self) -> None:
        self._recorder = None

    @property
    def active(self) -> bool:
        """True when spans are being recorded anywhere at all."""
        if self.enabled:
            return True
        recorder = self._recorder
        return recorder is not None and recorder.enabled

    @property
    def sample_rate(self) -> float:
        return self._enabled_rate if self.enabled else self._recorder_rate

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    # -- trace-context API --------------------------------------------------

    def mint_trace(self) -> TraceContext | None:
        """A fresh root context for one published event; None when inactive.

        The sampling decision is drawn here, once per trace, so a trace
        is flight-recorded completely or not at all.
        """
        recorder = self._recorder
        recording = recorder is not None and recorder.enabled
        if not self.enabled and not recording:
            return None
        rate = self._enabled_rate if self.enabled else self._recorder_rate
        if rate >= 1.0:
            sampled = True
        elif rate <= 0.0:
            sampled = False
        else:
            with self._rng_lock:
                sampled = self._rng.random() < rate
        return TraceContext(
            trace_id=new_trace_id(), span_id=new_span_id(), sampled=sampled
        )

    def current_context(self) -> TraceContext | None:
        """The trace context active on this thread, if any."""
        return getattr(self._local, "ctx", None)

    def activate(self, ctx: TraceContext | None) -> "_Activation | _NoopActivation":
        """Make ``ctx`` current for a block (cross-thread propagation)."""
        if ctx is None or not self.active:
            return _NOOP_ACTIVATION
        return _Activation(self, ctx)

    # -- span API -----------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> "_Span | _NoopSpan":
        """A context manager timing one pipeline stage.

        Returns the shared no-op span when tracing is inactive — callers
        never branch on :attr:`enabled` themselves. In flight-recorder
        mode a span is only real when the current thread carries a
        sampled context.
        """
        if self.enabled:
            return _Span(self, name, attributes)
        recorder = self._recorder
        if recorder is not None and recorder.enabled:
            ctx = getattr(self._local, "ctx", None)
            if ctx is not None and ctx.sampled:
                return _Span(self, name, attributes)
        return _NOOP_SPAN

    def root_span(
        self, name: str, ctx: TraceContext | None, **attributes: Any
    ) -> "_Span | _NoopSpan":
        """The root span of a trace: span id taken from ``ctx`` itself.

        With ``ctx=None`` this degrades to a plain :meth:`span` (legacy
        uncontexted tracing keeps working).
        """
        if ctx is None:
            return self.span(name, **attributes)
        if self.enabled or (
            self._recorder is not None and self._recorder.enabled and ctx.sampled
        ):
            return _Span(self, name, attributes, ctx=ctx, root=True)
        return _NOOP_SPAN

    def record_span(
        self,
        name: str,
        ctx: TraceContext | None,
        start: float,
        end: float,
        **attributes: Any,
    ) -> None:
        """Record a span for an interval that already elapsed.

        Used for waits that are only measurable after the fact (ingress
        queue wait: enqueue on the producer thread, pickup on the
        dispatcher) and for zero-duration incident markers (dead-letter,
        breaker rejection). The span is recorded as a child of ``ctx``.

        ``start``/``end`` may come from the *caller's* clock (brokers
        run on injectable, possibly fake clocks); only their difference
        is trusted. The span is re-anchored onto the tracer's own clock
        ending at the call, so every span in a dump shares one timeline
        regardless of clock domain.
        """
        if ctx is None:
            return
        recording = (
            self._recorder is not None
            and self._recorder.enabled
            and ctx.sampled
        )
        if not self.enabled and not recording:
            return
        duration = max(0.0, end - start)
        anchored_start = self.clock.monotonic() - duration
        child = ctx.child()
        self._record(
            name,
            None,
            duration,
            attributes,
            ctx=child,
            parent_span_id=ctx.span_id,
            start=anchored_start,
        )

    def stage_timings(self) -> dict[str, dict[str, Any]]:
        """Summaries of every ``stage.*`` histogram, keyed by stage name."""
        snapshot = self.registry.snapshot()["histograms"]
        return {
            name.removeprefix("stage."): summary
            for name, summary in snapshot.items()
            if name.startswith("stage.")
        }

    # -- internals ----------------------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(
        self,
        name: str,
        parent: str | None,
        duration: float,
        attributes: dict[str, Any],
        *,
        ctx: TraceContext | None = None,
        parent_span_id: str | None = None,
        start: float | None = None,
    ) -> None:
        if self.enabled:
            registry = self._registry
            if registry is not None:
                registry.histogram(f"stage.{name}").record(duration)
            sink = self._sink
            if sink is not None:
                record: dict[str, Any] = {
                    "ts": wall_time(),
                    "span": name,
                    "duration_ms": duration * 1000.0,
                }
                if start is not None:
                    record["start"] = start
                if parent is not None:
                    record["parent"] = parent
                if ctx is not None:
                    record["trace_id"] = ctx.trace_id
                    record["span_id"] = ctx.span_id
                    if parent_span_id is not None:
                        record["parent_span_id"] = parent_span_id
                if attributes:
                    record["attributes"] = attributes
                line = json.dumps(record, separators=(",", ":"), default=str)
                with self._sink_lock:
                    sink.write(line + "\n")
        recorder = self._recorder
        if (
            recorder is not None
            and recorder.enabled
            and ctx is not None
            and ctx.sampled
        ):
            local = self._local
            thread_name = getattr(local, "thread_name", None)
            if thread_name is None:
                thread_name = local.thread_name = (
                    threading.current_thread().name
                )
            recorder.record(
                start if start is not None else 0.0,
                duration,
                name,
                ctx.trace_id,
                ctx.span_id,
                parent_span_id,
                thread_name,
                attributes or None,
            )


#: The process-wide tracer every instrumented module shares.
TRACER = Tracer()


def traced(name: str, tracer: Tracer | None = None) -> Callable:
    """Decorator tracing every call of a function as span ``name``."""

    def decorate(func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            active = tracer if tracer is not None else TRACER
            if not active.active:
                return func(*args, **kwargs)
            with active.span(name):
                return func(*args, **kwargs)

        return wrapper

    return decorate
