"""Thread-safe metrics registry: counters, gauges, streaming histograms.

The registry is the single sink for operational numbers across the
pipeline — broker counters, cache hit rates, per-stage latencies — so
benchmarks and the CLI can take one coherent snapshot instead of
scraping ad-hoc ints off individual objects (which is also what makes
cross-thread reads safe: every mutation goes through a per-metric lock,
and :meth:`MetricsRegistry.snapshot` reads under the registry lock).

Histograms use HDR-style logarithmic bucketing: values land in buckets
whose width grows geometrically (``GROWTH`` per step, ~5% relative
error), so a histogram covering nanoseconds to minutes stays a few
hundred ints. Percentiles (p50/p90/p99) are read from the bucket
cumulative distribution and reported at the bucket's geometric midpoint.
"""

from __future__ import annotations

import math
import threading
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "merge_snapshots",
    "set_registry",
]

#: Geometric growth factor between histogram bucket boundaries.
GROWTH = 1.05
_LOG_GROWTH = math.log(GROWTH)

#: Default percentile set reported by snapshots.
PERCENTILES = (0.50, 0.90, 0.99)


class Counter:
    """Monotonically increasing integer, safe to bump from any thread."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-write-wins float, safe to set from any thread."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


def _bucket_index(value: float) -> int:
    """Logarithmic bucket index for a positive value."""
    return int(math.floor(math.log(value) / _LOG_GROWTH))


def _bucket_midpoint(index: int) -> float:
    """Geometric midpoint of bucket ``index``."""
    low = math.exp(index * _LOG_GROWTH)
    return low * math.sqrt(GROWTH)


class Histogram:
    """Streaming histogram with geometric (HDR-style) buckets.

    Records arbitrary non-negative floats (latencies in seconds, sizes,
    …) with ~5% relative error on percentile estimates; exact count,
    sum, min and max are tracked on the side. Zero and negative values
    collapse into a dedicated underflow bucket reported as 0.0.
    """

    __slots__ = ("name", "_buckets", "_zeros", "_count", "_sum", "_min", "_max",
                 "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._buckets: dict[int, int] = {}
        self._zeros = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if value <= 0.0:
                self._zeros += 1
            else:
                index = _bucket_index(value)
                self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in ``[0, 1]``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q * self._count
            cumulative = self._zeros
            if cumulative >= target and self._zeros:
                return 0.0
            for index in sorted(self._buckets):
                cumulative += self._buckets[index]
                if cumulative >= target:
                    # Clamp the estimate into the observed range so tiny
                    # samples do not report beyond the recorded extremes.
                    return min(max(_bucket_midpoint(index), self._min), self._max)
            return self._max

    def reset(self) -> None:
        with self._lock:
            self._buckets.clear()
            self._zeros = 0
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf

    def summary(self, percentiles: tuple[float, ...] = PERCENTILES) -> dict[str, Any]:
        """Plain-dict snapshot: count/sum/mean/min/max plus percentiles."""
        values = {f"p{int(q * 100)}": self.percentile(q) for q in percentiles}
        with self._lock:
            count, total = self._count, self._sum
            low = self._min if self._count else 0.0
            high = self._max if self._count else 0.0
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": low,
            "max": high,
            **values,
        }


class MetricsRegistry:
    """Named collection of counters, gauges, and histograms.

    ``counter``/``gauge``/``histogram`` get-or-create by name, so any
    layer can reach its metric without wiring objects through
    constructors. ``snapshot`` returns plain nested dicts (JSON-ready)
    and is safe to call while other threads are recording — each metric
    guards its own state, and registration itself holds the registry
    lock.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name)
            return metric

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time view of every metric as plain JSON-ready dicts."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(histograms.items())
            },
        }

    def reset(self) -> None:
        with self._lock:
            metrics = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
            )
        for metric in metrics:
            metric.reset()


def merge_snapshots(snapshots: list[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate several :meth:`MetricsRegistry.snapshot` dicts into one.

    The sharded broker keeps one registry per shard (no cross-shard lock
    traffic on the hot path) and merges at read time. Counters sum;
    gauges sum too (per-shard gauges are sizes/depths, where the total
    is the meaningful aggregate). Histogram summaries merge exactly for
    ``count``/``sum``/``min``/``max`` and recompute ``mean``; bucket
    data is gone by snapshot time, so percentiles cannot be merged and
    are dropped — read them per shard instead.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, Any]] = {}
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0.0) + value
        for name, summary in snapshot.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    "count": summary["count"],
                    "sum": summary["sum"],
                    "min": summary["min"],
                    "max": summary["max"],
                }
            else:
                merged["count"] += summary["count"]
                merged["sum"] += summary["sum"]
                if summary["count"]:
                    if merged["count"] == summary["count"]:
                        # Everything so far was empty; adopt the extremes.
                        merged["min"], merged["max"] = summary["min"], summary["max"]
                    else:
                        merged["min"] = min(merged["min"], summary["min"])
                        merged["max"] = max(merged["max"], summary["max"])
    for summary in histograms.values():
        summary["mean"] = summary["sum"] / summary["count"] if summary["count"] else 0.0
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


#: Process-wide default registry (the CLI and tracer aggregate here);
#: components that need isolation (brokers, tests) construct their own.
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
