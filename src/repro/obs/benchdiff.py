"""Benchmark regression detection: fresh artifacts vs committed baselines.

``repro bench diff`` (and the CI ``perf-gate`` job) compares the
``BENCH_<name>.json`` artifacts a bench run just produced against the
trajectory committed under ``benchmarks/baselines/``. Every numeric
metric is flattened to a dotted path, classified by direction
(throughput-like: higher is better; latency-like: lower is better;
counts and configuration echoes: informational), and judged against a
fractional noise tolerance. One regression anywhere fails the diff — a
perf-sensitive PR is judged against the committed trajectory, not
against reviewer optimism.

Comparison rules:

* artifacts pair by bench name; a baseline with no fresh counterpart is
  reported but does not fail the diff (partial bench runs are normal in
  CI — the gate job runs a subset);
* artifacts recorded at different ``scale`` values are *skipped*, never
  compared — cross-scale deltas are meaningless;
* lists (per-cell grids, per-run samples) are skipped; scalar summary
  metrics are the contract between a bench and its gate;
* a metric with baseline value 0 cannot produce a relative delta and is
  reported informationally.

The markdown trend table (``--markdown-out``) is the reviewable face of
the same data: one row per metric with direction-aware verdicts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

__all__ = [
    "DEFAULT_TOLERANCE",
    "BenchComparison",
    "DiffReport",
    "MetricDelta",
    "classify_metric",
    "compare_artifacts",
    "compare_metrics",
    "diff_directories",
    "flatten_metrics",
    "render_markdown",
]

#: Default fractional noise tolerance: a metric may move 10% in its bad
#: direction before it counts as a regression. Chosen so a genuine >=20%
#: throughput drop always trips the gate while ordinary CI jitter stays
#: below it; the CLI exposes ``--tolerance`` for noisier runners.
DEFAULT_TOLERANCE = 0.10

#: Last path segments that are configuration echoes or sample counts,
#: never perf verdicts ("max" included: single-sample maxima are far too
#: noisy to gate on).
_NEUTRAL_SEGMENTS = frozenset(
    {
        "count",
        "unit",
        "n",
        "runs",
        "events",
        "subscriptions",
        "deliveries",
        "shards",
        "max_batch",
        "max",
        "seed",
        "error",
    }
)

#: Substrings marking higher-is-better metrics. Checked before the
#: lower-is-better markers so ``events_per_second`` resolves as
#: throughput despite containing "second".
_HIGHER_MARKERS = (
    "events_per_second",
    "eps",
    "throughput",
    "hit_rate",
    "f1",
    "speedup",
    "recall",
    "precision",
)

#: Substrings marking lower-is-better metrics.
_LOWER_MARKERS = (
    "latency",
    "seconds",
    "_ms",
    "p50",
    "p90",
    "p99",
    "duration",
    "elapsed",
    "wait",
)


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across baseline and current artifacts."""

    metric: str
    baseline: float
    current: float
    #: Fractional change ``(current - baseline) / |baseline|``; 0.0 when
    #: the baseline is 0 (the relative delta is undefined — see status).
    delta: float
    direction: str  # "higher" | "lower" | "info"
    status: str  # "ok" | "regression" | "improved" | "info"


@dataclass(frozen=True)
class BenchComparison:
    """One bench's verdict: its metric deltas and an overall status."""

    bench: str
    status: str  # "ok" | "regression" | "improved" | "skipped"
    deltas: tuple[MetricDelta, ...] = ()
    note: str = ""


@dataclass(frozen=True)
class DiffReport:
    """The full diff: per-bench comparisons plus pairing bookkeeping."""

    comparisons: tuple[BenchComparison, ...]
    missing_current: tuple[str, ...]
    missing_baseline: tuple[str, ...]
    tolerance: float

    @property
    def compared(self) -> int:
        """Benches actually compared (skips excluded)."""
        return sum(1 for c in self.comparisons if c.status != "skipped")

    @property
    def regressions(self) -> tuple[MetricDelta, ...]:
        return tuple(
            delta
            for comparison in self.comparisons
            for delta in comparison.deltas
            if delta.status == "regression"
        )

    @property
    def ok(self) -> bool:
        return not self.regressions


def flatten_metrics(
    metrics: dict[str, Any], prefix: str = ""
) -> dict[str, float]:
    """Flatten nested metric dicts to ``a.b.c`` paths; numbers only.

    Lists, strings, and booleans are dropped — gates run on scalar
    summary metrics, not raw sample vectors.
    """
    flat: dict[str, float] = {}
    for key, value in metrics.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, bool):
            continue
        if isinstance(value, dict):
            flat.update(flatten_metrics(value, path))
        elif isinstance(value, (int, float)):
            flat[path] = float(value)
    return flat


def classify_metric(path: str) -> str:
    """Direction of ``path``: "higher", "lower", or "info".

    Precedence: neutral last segment, then error metrics (an "error" in
    the name overrides any embedded throughput/F1 marker —
    ``median_throughput_error_eps`` measures error, not throughput),
    then higher-is-better markers, then lower-is-better markers.
    """
    last = path.rsplit(".", 1)[-1]
    if last in _NEUTRAL_SEGMENTS:
        return "info"
    if "error" in last:
        return "lower"
    for marker in _HIGHER_MARKERS:
        if marker in path:
            return "higher"
    for marker in _LOWER_MARKERS:
        if marker in path:
            return "lower"
    return "info"


def _judge(
    direction: str, delta: float, baseline: float, tolerance: float
) -> str:
    if direction == "info":
        return "info"
    if baseline == 0.0:
        return "info"
    bad = -delta if direction == "higher" else delta
    if bad > tolerance:
        return "regression"
    if bad < -tolerance:
        return "improved"
    return "ok"


def compare_metrics(
    baseline: dict[str, Any],
    current: dict[str, Any],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[MetricDelta, ...]:
    """Delta every metric present in *both* flattened payloads.

    A metric present only in the current artifact — a bench that just
    grew a new measurement — is reported as an informational ``"new"``
    row (baseline 0.0, delta 0.0) rather than dropped or failed: new
    coverage must never read as a regression, but it should be visible
    in the trend table so the baseline gets re-recorded.
    """
    base_flat = flatten_metrics(baseline)
    cur_flat = flatten_metrics(current)
    deltas: list[MetricDelta] = []
    for path in sorted(base_flat):
        if path not in cur_flat:
            continue
        base_value = base_flat[path]
        cur_value = cur_flat[path]
        delta = (
            (cur_value - base_value) / abs(base_value)
            if base_value != 0.0
            else 0.0
        )
        direction = classify_metric(path)
        deltas.append(
            MetricDelta(
                metric=path,
                baseline=base_value,
                current=cur_value,
                delta=delta,
                direction=direction,
                status=_judge(direction, delta, base_value, tolerance),
            )
        )
    for path in sorted(set(cur_flat) - set(base_flat)):
        deltas.append(
            MetricDelta(
                metric=path,
                baseline=0.0,
                current=cur_flat[path],
                delta=0.0,
                direction=classify_metric(path),
                status="new",
            )
        )
    return tuple(deltas)


def compare_artifacts(
    baseline_doc: dict[str, Any],
    current_doc: dict[str, Any],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> BenchComparison:
    """Compare two loaded ``repro.bench/v1`` documents for one bench."""
    bench = str(baseline_doc.get("bench", "?"))
    base_scale = baseline_doc.get("scale")
    cur_scale = current_doc.get("scale")
    if base_scale != cur_scale:
        return BenchComparison(
            bench=bench,
            status="skipped",
            note=(
                f"scale mismatch: baseline {base_scale!r} vs "
                f"current {cur_scale!r}"
            ),
        )
    deltas = compare_metrics(
        baseline_doc.get("metrics", {}),
        current_doc.get("metrics", {}),
        tolerance=tolerance,
    )
    if any(d.status == "regression" for d in deltas):
        status = "regression"
    elif any(d.status == "improved" for d in deltas):
        status = "improved"
    else:
        status = "ok"
    return BenchComparison(bench=bench, status=status, deltas=deltas)


def _load_artifacts(directory: Path) -> dict[str, dict[str, Any]]:
    docs: dict[str, dict[str, Any]] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        docs[path.stem.removeprefix("BENCH_")] = document
    return docs


def diff_directories(
    baseline_dir: str | Path,
    current_dir: str | Path,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> DiffReport:
    """Pair ``BENCH_*.json`` files by name across two directories."""
    baselines = _load_artifacts(Path(baseline_dir))
    currents = _load_artifacts(Path(current_dir))
    comparisons = tuple(
        compare_artifacts(baselines[name], currents[name], tolerance=tolerance)
        for name in sorted(baselines)
        if name in currents
    )
    return DiffReport(
        comparisons=comparisons,
        missing_current=tuple(
            name for name in sorted(baselines) if name not in currents
        ),
        missing_baseline=tuple(
            name for name in sorted(currents) if name not in baselines
        ),
        tolerance=tolerance,
    )


_STATUS_LABELS = {
    "ok": "ok",
    "regression": "**REGRESSION**",
    "improved": "improved",
    "info": "·",
    "new": "new",
}


def render_markdown(report: DiffReport) -> str:
    """The trend table: one section per bench, one row per metric."""
    lines = [
        "# Bench trend vs committed baselines",
        "",
        f"Tolerance: ±{report.tolerance:.0%} · "
        f"benches compared: {report.compared} · "
        f"regressions: {len(report.regressions)}",
        "",
    ]
    for comparison in report.comparisons:
        lines.append(f"## {comparison.bench} — {comparison.status}")
        lines.append("")
        if comparison.status == "skipped":
            lines.append(f"Skipped: {comparison.note}")
            lines.append("")
            continue
        lines.append("| metric | baseline | current | Δ | verdict |")
        lines.append("|---|---:|---:|---:|---|")
        for delta in comparison.deltas:
            if delta.status == "new":
                lines.append(
                    f"| {delta.metric} | – | {delta.current:.4g} | – | new |"
                )
            else:
                lines.append(
                    f"| {delta.metric} | {delta.baseline:.4g} "
                    f"| {delta.current:.4g} | {delta.delta:+.1%} "
                    f"| {_STATUS_LABELS[delta.status]} |"
                )
        lines.append("")
    if report.missing_current:
        lines.append(
            "Baselines with no fresh artifact (not gated): "
            + ", ".join(report.missing_current)
        )
        lines.append("")
    if report.missing_baseline:
        lines.append(
            "Fresh artifacts with no baseline yet: "
            + ", ".join(report.missing_baseline)
        )
        lines.append("")
    return "\n".join(lines)
