"""Causal trace context: the identity an event carries across layers.

A :class:`TraceContext` is minted once per published event (by the
broker front-ends, through :meth:`repro.obs.tracing.Tracer.mint_trace`)
and then rides with the event explicitly — through the ingress queue,
across shard fan-out, into every retry attempt, and onto the
dead-letter record if delivery is finally abandoned. Every span the
event generates shares the context's ``trace_id``; parent/child edges
are span ids, so ``repro trace <id>`` can rebuild the full causal tree
of one event from a span log or a flight-recorder dump.

Contexts are deliberately tiny and immutable: a trace id, the id of the
span that currently "owns" the event, and a sampling decision made once
at mint time (so a trace is recorded completely or not at all — no
half-sampled trees). Micro-batches that serve many events at once get
their *own* context and reference the member traces through a
``links`` span attribute (the OpenTelemetry span-link shape) instead of
pretending one parent fits all.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass

__all__ = ["TraceContext", "new_span_id", "new_trace_id"]

#: Span ids only need process-uniqueness, and a child id is drawn for
#: every span of a sampled trace — a syscall per span (os.urandom) is
#: measurable on the publish hot path. A counter is not: ``count().
#: __next__`` is atomic under the GIL, and the random 32-bit offset
#: keeps ids from colliding across restarts that share a span log.
_SPAN_COUNTER = itertools.count(int.from_bytes(os.urandom(4), "big"))


def new_trace_id() -> str:
    """A fresh 64-bit trace id as 16 hex chars (W3C-traceparent-sized)."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh process-unique 32-bit span id as 8 hex chars."""
    return f"{next(_SPAN_COUNTER) & 0xFFFFFFFF:08x}"


@dataclass(frozen=True)
class TraceContext:
    """One event's causal identity: trace id + owning span + sampling.

    ``span_id`` names the span that minted or last derived the context
    (for a freshly minted context, the event's root span); children are
    derived with :meth:`child`, which keeps the trace id and sampling
    decision and draws a fresh span id.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def child(self) -> "TraceContext":
        """A context for a child span of this one (same trace, new id)."""
        return TraceContext(
            trace_id=self.trace_id, span_id=new_span_id(), sampled=self.sampled
        )
