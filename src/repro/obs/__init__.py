"""Observability layer: metrics registry, pipeline tracing, bench artifacts.

Three pieces, deliberately dependency-free so every other package can
import them:

* :mod:`repro.obs.registry` — thread-safe counters/gauges/histograms
  with JSON-ready snapshots;
* :mod:`repro.obs.tracing` — spans over the match pipeline with a
  zero-overhead disabled mode and optional JSONL export;
* :mod:`repro.obs.artifacts` — the ``BENCH_<name>.json`` schema shared
  by all benchmark drivers.
"""

from repro.obs.artifacts import (
    SCHEMA,
    LatencySummary,
    artifact_path,
    load_bench_artifact,
    write_bench_artifact,
)
from repro.obs.clock import (
    MONOTONIC_CLOCK,
    Clock,
    FakeClock,
    MonotonicClock,
    wall_time,
)
from repro.obs.manifest import METRICS, MetricSpec
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    merge_snapshots,
    set_registry,
)
from repro.obs.tracing import TRACER, Tracer, traced

__all__ = [
    "Clock",
    "FakeClock",
    "MONOTONIC_CLOCK",
    "MonotonicClock",
    "SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencySummary",
    "METRICS",
    "MetricSpec",
    "MetricsRegistry",
    "TRACER",
    "Tracer",
    "artifact_path",
    "get_registry",
    "load_bench_artifact",
    "merge_snapshots",
    "set_registry",
    "traced",
    "wall_time",
    "write_bench_artifact",
]
