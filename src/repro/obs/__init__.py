"""Observability layer: metrics registry, pipeline tracing, bench artifacts.

Three pieces, deliberately dependency-free so every other package can
import them:

* :mod:`repro.obs.registry` — thread-safe counters/gauges/histograms
  with JSON-ready snapshots;
* :mod:`repro.obs.tracing` — spans over the match pipeline with a
  zero-overhead disabled mode and optional JSONL export;
* :mod:`repro.obs.context` — per-event causal trace contexts that ride
  through queues, shards, retries, and dead-letter records;
* :mod:`repro.obs.flightrec` — bounded ring buffer of sampled spans,
  dumped as Chrome-trace JSON when an incident trigger fires;
* :mod:`repro.obs.artifacts` — the ``BENCH_<name>.json`` schema shared
  by all benchmark drivers;
* :mod:`repro.obs.benchdiff` — baseline-vs-current artifact comparison
  backing ``repro bench diff`` and the CI perf gate;
* :mod:`repro.obs.traceview` — offline span-log readers and trace-tree
  rendering backing ``repro trace <id>``.
"""

from repro.obs.artifacts import (
    SCHEMA,
    LatencySummary,
    artifact_path,
    load_bench_artifact,
    write_bench_artifact,
)
from repro.obs.clock import (
    MONOTONIC_CLOCK,
    Clock,
    FakeClock,
    MonotonicClock,
    iso_time,
    wall_time,
)
from repro.obs.context import TraceContext, new_span_id, new_trace_id
from repro.obs.flightrec import FLIGHT_RECORDER, FlightRecorder, trigger_dump
from repro.obs.manifest import METRICS, MetricSpec
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    merge_snapshots,
    set_registry,
)
from repro.obs.tracing import TRACER, Tracer, traced

__all__ = [
    "Clock",
    "FakeClock",
    "FLIGHT_RECORDER",
    "FlightRecorder",
    "MONOTONIC_CLOCK",
    "MonotonicClock",
    "SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "LatencySummary",
    "METRICS",
    "MetricSpec",
    "MetricsRegistry",
    "TRACER",
    "TraceContext",
    "Tracer",
    "artifact_path",
    "get_registry",
    "iso_time",
    "load_bench_artifact",
    "merge_snapshots",
    "new_span_id",
    "new_trace_id",
    "set_registry",
    "traced",
    "trigger_dump",
    "wall_time",
    "write_bench_artifact",
]
