"""Vehicle mobile-sensor platforms, standing in for the Yahoo! car list.

The paper draws car brands from the Yahoo! directory to generate mobile
sensor platforms. The directory is long gone; any fixed brand list plays
the same role (an inert vocabulary pool — brands are not semantically
expanded, they are the stable part of mobile-platform events).
"""

from __future__ import annotations

__all__ = ["CAR_BRANDS", "VEHICLE_KINDS"]

#: Car brands used as mobile platform identifiers.
CAR_BRANDS: tuple[str, ...] = (
    "toyota",
    "ford",
    "volkswagen",
    "renault",
    "fiat",
    "peugeot",
    "nissan",
    "honda",
    "volvo",
    "seat",
    "skoda",
    "opel",
)

#: Vehicle kinds (thesaurus-covered, so they do expand).
VEHICLE_KINDS: tuple[str, ...] = (
    "vehicle",
    "car",
    "bus",
    "truck",
    "van",
    "bicycle",
    "motorcycle",
)
