"""Indoor appliance platforms, standing in for the BLUED dataset.

The paper uses appliances from the BLUED non-intrusive load monitoring
dataset [2] as indoor event platforms. BLUED's appliance inventory is a
plain list of household electrical devices; this module provides an
equivalent list, every entry of which resolves to a concept of the
``energy`` or ``education and communications`` micro-thesaurus so that
semantic expansion can rewrite device tuples.
"""

from __future__ import annotations

__all__ = ["APPLIANCES", "COMPUTING_DEVICES", "ALL_DEVICES"]

#: Household electrical loads (BLUED-style).
APPLIANCES: tuple[str, ...] = (
    "refrigerator",
    "air conditioner",
    "washing machine",
    "dishwasher",
    "microwave",
    "kettle",
    "heater",
    "lamp",
    "oven",
    "fan",
)

#: Office/computing loads (the LEI smart-building side).
COMPUTING_DEVICES: tuple[str, ...] = (
    "computer",
    "laptop",
    "server",
    "monitor",
    "printer",
    "television",
    "mobile phone",
)

#: Every indoor device the seed generator may pick.
ALL_DEVICES: tuple[str, ...] = APPLIANCES + COMPUTING_DEVICES
