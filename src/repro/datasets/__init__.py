"""IoT vocabulary pools and seed-event generation (Section 5.2.1)."""

from repro.datasets.appliances import ALL_DEVICES, APPLIANCES, COMPUTING_DEVICES
from repro.datasets.locations import (
    CITIES,
    DESKS,
    FLOORS,
    ROOMS,
    ZONES,
    Place,
    place_for_city,
)
from repro.datasets.seeds import SeedConfig, event_type_for, generate_seed_events
from repro.datasets.sensors import (
    SENSOR_CAPABILITIES,
    SensorCapability,
    capability,
    capability_names,
)
from repro.datasets.vehicles import CAR_BRANDS, VEHICLE_KINDS

__all__ = [
    "ALL_DEVICES",
    "APPLIANCES",
    "CAR_BRANDS",
    "CITIES",
    "COMPUTING_DEVICES",
    "DESKS",
    "FLOORS",
    "ROOMS",
    "SENSOR_CAPABILITIES",
    "SeedConfig",
    "SensorCapability",
    "VEHICLE_KINDS",
    "ZONES",
    "Place",
    "capability",
    "capability_names",
    "event_type_for",
    "generate_seed_events",
    "place_for_city",
]
