"""Sensor capabilities — the verbatim list of Table 3.

These are the SmartSantander / Linked Energy Intelligence capabilities
the paper synthesizes its seed events from (Section 5.2.1). Each
capability is annotated with the measurement unit its events carry and
the thesaurus domain it belongs to, which the seed generator uses to
build well-formed heterogeneous events.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SensorCapability", "SENSOR_CAPABILITIES", "capability", "capability_names"]


@dataclass(frozen=True)
class SensorCapability:
    """One sensing capability: what is measured, in what unit, and where.

    ``domain`` is the owning micro-thesaurus (drives theme selection and
    semantic expansion); ``indoor`` says whether the capability occurs on
    indoor platforms (appliances/rooms) or outdoor ones (vehicles/city
    locations).
    """

    name: str
    unit: str
    domain: str
    indoor: bool = False


#: Table 3 of the paper, in paper order.
SENSOR_CAPABILITIES: tuple[SensorCapability, ...] = (
    SensorCapability("solar radiation", "watt", "energy"),
    SensorCapability("particles", "pm10 level", "environment"),
    SensorCapability("speed", "kilometres per hour", "transport"),
    SensorCapability("wind direction", "degrees", "environment"),
    SensorCapability("wind speed", "metres per second", "environment"),
    SensorCapability("temperature", "degree celsius", "environment"),
    SensorCapability("water flow", "litres per second", "environment"),
    SensorCapability("atmospheric pressure", "hectopascal", "environment"),
    SensorCapability("noise", "decibel", "environment"),
    SensorCapability("ozone", "microgram per cubic metre", "environment"),
    SensorCapability("rainfall", "millimetre", "environment"),
    SensorCapability("parking", "occupancy state", "transport"),
    SensorCapability("radiation par", "micromole", "environment"),
    SensorCapability("co", "parts per million", "environment"),
    SensorCapability("ground temperature", "degree celsius", "environment"),
    SensorCapability("light", "lux", "environment"),
    SensorCapability("no2", "parts per billion", "environment"),
    SensorCapability("soil moisture tension", "kilopascal", "environment"),
    SensorCapability("relative humidity", "percentage", "environment"),
    SensorCapability("energy consumption", "kilowatt hour", "energy", indoor=True),
    SensorCapability("cpu usage", "percentage", "energy", indoor=True),
    SensorCapability("memory usage", "percentage", "energy", indoor=True),
)

_BY_NAME = {cap.name: cap for cap in SENSOR_CAPABILITIES}


def capability(name: str) -> SensorCapability:
    """Look up a capability by its Table 3 name."""
    return _BY_NAME[name]


def capability_names() -> tuple[str, ...]:
    return tuple(cap.name for cap in SENSOR_CAPABILITIES)
