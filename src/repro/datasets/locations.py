"""Location vocabulary: DERI-building rooms and smart-city geography.

Indoor locations mirror the DERI Building dataset the paper uses (rooms,
desks, floors, zones); geographic locations mirror the SmartSantander
deployment cities plus Galway. Numeric identifiers (room numbers, desk
codes) intentionally never expand — they are the exact-match anchors in
subscriptions, as in the paper's example ``office = room 112``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Place", "ROOMS", "DESKS", "FLOORS", "ZONES", "CITIES", "place_for_city"]


@dataclass(frozen=True)
class Place:
    """A city with its country and continent (all thesaurus-covered)."""

    city: str
    country: str
    continent: str


#: DERI-building style room identifiers.
ROOMS: tuple[str, ...] = tuple(
    f"room {number}" for number in (101, 102, 110, 112, 201, 204, 210, 301, 305, 312)
)

#: Desk identifiers within rooms.
DESKS: tuple[str, ...] = tuple(
    f"desk {number}{letter}"
    for number in (101, 112, 204, 305)
    for letter in ("a", "b", "c")
)

FLOORS: tuple[str, ...] = ("ground floor", "first floor", "second floor", "third floor")

ZONES: tuple[str, ...] = ("building", "campus", "neighbourhood", "city centre")

#: Deployment cities: SmartSantander sites plus Galway (Section 5.2.1).
CITIES: tuple[Place, ...] = (
    Place("galway", "ireland", "europe"),
    Place("dublin", "ireland", "europe"),
    Place("santander", "spain", "europe"),
    Place("bordeaux", "france", "europe"),
)

_BY_CITY = {place.city: place for place in CITIES}


def place_for_city(city: str) -> Place:
    return _BY_CITY[city]
