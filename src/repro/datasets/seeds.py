"""Seed event generation (Section 5.2.1).

Seed events are synthesized by randomly combining attributes and values
from the real-world vocabulary pools: Table 3 sensor capabilities,
BLUED-style appliances, car brands, DERI-building rooms, and the
SmartSantander/Galway geography. The paper uses 166 seed events; so does
the default configuration here.

Three templates cover the deployment kinds the paper describes:

* **indoor** — energy/computing capabilities on appliance platforms in
  building rooms (the LEI smart-building side);
* **fixed outdoor** — environmental capabilities on city-mounted sensors
  (the SmartSantander side);
* **mobile** — transport capabilities on vehicle platforms (parking and
  speed events).

Seed events carry *no* theme: the evaluation attaches theme combinations
per sub-experiment (Section 5.2.4), and applications attach their own.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.events import Event
from repro.datasets.appliances import ALL_DEVICES
from repro.datasets.locations import CITIES, DESKS, FLOORS, ROOMS, ZONES
from repro.datasets.sensors import SENSOR_CAPABILITIES, SensorCapability
from repro.datasets.vehicles import CAR_BRANDS, VEHICLE_KINDS

__all__ = ["SeedConfig", "generate_seed_events", "event_type_for"]

#: Qualifiers composed into event types ("increased energy consumption
#: event"). The empty qualifier yields plain measurement events.
_QUALIFIERS: tuple[str, ...] = ("increased", "decreased", "high", "low", "")


@dataclass(frozen=True)
class SeedConfig:
    """Size and seed of the generated set; defaults follow the paper."""

    count: int = 166
    seed: int = 42
    include_geography: bool = True


def event_type_for(capability: SensorCapability, qualifier: str = "") -> str:
    """Compose the event-type term for a capability.

    >>> event_type_for(SENSOR_CAPABILITIES[19], "increased")
    'increased energy consumption event'
    """
    if qualifier:
        return f"{qualifier} {capability.name} event"
    return f"{capability.name} event"


def _geography(rng: random.Random) -> list[tuple[str, str]]:
    place = rng.choice(CITIES)
    return [
        ("city", place.city),
        ("country", place.country),
        ("continent", place.continent),
    ]


def _indoor_event(
    capability: SensorCapability, rng: random.Random, config: SeedConfig
) -> Event:
    pairs: list[tuple[str, str]] = [
        ("type", event_type_for(capability, rng.choice(_QUALIFIERS))),
        ("measurement unit", capability.unit),
        ("device", rng.choice(ALL_DEVICES)),
        ("desk", rng.choice(DESKS)),
        ("room", rng.choice(ROOMS)),
        ("floor", rng.choice(FLOORS)),
        ("zone", rng.choice(ZONES)),
    ]
    if config.include_geography:
        pairs.extend(_geography(rng))
    return Event.create(payload=pairs)


def _fixed_outdoor_event(
    capability: SensorCapability, rng: random.Random, config: SeedConfig
) -> Event:
    pairs: list[tuple[str, str]] = [
        ("type", event_type_for(capability, rng.choice(_QUALIFIERS))),
        ("measurement unit", capability.unit),
        ("sensor", f"sensor {rng.randint(1000, 9999)}"),
        ("zone", rng.choice(ZONES)),
    ]
    if config.include_geography:
        pairs.extend(_geography(rng))
    return Event.create(payload=pairs)


def _mobile_event(
    capability: SensorCapability, rng: random.Random, config: SeedConfig
) -> Event:
    if capability.name == "parking":
        status = rng.choice(("occupied", "free"))
        pairs: list[tuple[str, str]] = [
            ("type", f"parking space {status} event"),
            ("status", status),
            ("zone", rng.choice(ZONES)),
        ]
    else:
        pairs = [
            ("type", event_type_for(capability, rng.choice(_QUALIFIERS))),
            ("measurement unit", capability.unit),
            ("vehicle", rng.choice(VEHICLE_KINDS)),
            ("brand", rng.choice(CAR_BRANDS)),
        ]
    if config.include_geography:
        pairs.extend(_geography(rng))
    return Event.create(payload=pairs)


def generate_seed_events(config: SeedConfig | None = None) -> tuple[Event, ...]:
    """Deterministically generate the seed event set.

    Capabilities are cycled so every Table 3 capability contributes; the
    template is chosen by the capability's kind.
    """
    config = config if config is not None else SeedConfig()
    rng = random.Random(config.seed)
    events: list[Event] = []
    capabilities = list(SENSOR_CAPABILITIES)
    for i in range(config.count):
        capability = capabilities[i % len(capabilities)]
        if capability.indoor:
            event = _indoor_event(capability, rng, config)
        elif capability.domain == "transport":
            event = _mobile_event(capability, rng, config)
        else:
            event = _fixed_outdoor_event(capability, rng, config)
        events.append(event)
    return tuple(events)
