"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``match``
    Match a subscription against an event (both in the paper's surface
    syntax) and print the top-k mappings.
``relatedness``
    Score the semantic relatedness of two terms, optionally under
    themes, with both the thematic and non-thematic measures.
``corpus``
    Inspect, save, or verify the bundled synthetic corpus snapshot.
``evaluate``
    Run the non-thematic baseline plus a thematic sub-experiment at the
    chosen workload scale and print the comparison.
``stats``
    Exercise the full pipeline (sharded broker + thematic matcher) on a
    tiny workload and dump the metrics-registry snapshot as JSON —
    including the ``reliability.*`` and ``engine.degraded_*`` families
    and the merged per-shard engine registries.
``trace``
    Rebuild the causal tree of one trace id from span logs and
    flight-recorder dumps (or list the traces a file set contains).
``bench diff``
    Compare fresh ``BENCH_*.json`` artifacts against the committed
    baselines; exit 1 on any regression (the CI perf gate).

``match`` and ``evaluate`` accept ``--trace``: tracing spans aggregate
per-stage latency histograms and the command finishes with a per-stage
timing table. ``--trace-out`` takes either a ``.jsonl`` file (raw span
log) or a directory — the directory collects ``spans.jsonl``, a
Perfetto-loadable ``trace.json``, and any flight-recorder incident
dumps triggered during the run.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from pathlib import Path

from repro.broker.broker import ThematicBroker
from repro.broker.config import BrokerConfig
from repro.broker.faults import FaultPlan
from repro.broker.sharded import ShardedBroker
from repro.core.degrade import DegradedPolicy
from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.evaluation import (
    ThemeCombination,
    WorkloadConfig,
    build_workload,
    compare_broker_throughput,
    format_table,
    run_baseline,
    run_fault_injection,
    run_sub_experiment,
    theme_pool,
    thematic_matcher_factory,
)
from repro.knowledge.corpus import default_corpus
from repro.obs import FLIGHT_RECORDER, TRACER, MetricsRegistry
from repro.obs.benchdiff import (
    DEFAULT_TOLERANCE,
    diff_directories,
    render_markdown,
)
from repro.obs.traceview import (
    jsonl_to_chrome,
    load_span_records,
    render_trace_tree,
    summarize_traces,
)
from repro.semantics.cache import RelatednessCache
from repro.semantics.measures import (
    CachedMeasure,
    NonThematicMeasure,
    ThematicMeasure,
)
from repro.semantics.persistence import corpus_digest, load_corpus, save_corpus
from repro.semantics.pvsm import ParametricVectorSpace

__all__ = ["main", "build_parser"]


def _trace_dir(trace_out: str | None) -> Path | None:
    """Interpret ``--trace-out``: a directory target or a plain file.

    A path that already is a directory, ends with a separator, or has no
    file extension is treated as a directory (created on demand).
    """
    if trace_out is None:
        return None
    path = Path(trace_out)
    if path.is_dir() or trace_out.endswith(("/", "\\")) or path.suffix == "":
        return path
    return None


def _start_trace(args: argparse.Namespace) -> bool:
    """Enable tracing if ``--trace`` and/or ``--trace-out`` was given.

    With a directory ``--trace-out``, span records stream to
    ``<dir>/spans.jsonl`` and the flight recorder arms itself with the
    same directory, so incident dumps (degraded-mode trips, breaker
    opens, no-loss violations) land next to the span log; the JSONL is
    converted to a Perfetto-loadable ``<dir>/trace.json`` at the end of
    the command.
    """
    trace_out = getattr(args, "trace_out", None)
    if not getattr(args, "trace", False) and trace_out is None:
        return False
    directory = _trace_dir(trace_out)
    args.trace_dir = directory
    if directory is not None:
        directory.mkdir(parents=True, exist_ok=True)
        TRACER.enable(
            registry=MetricsRegistry(), sink=str(directory / "spans.jsonl")
        )
        FLIGHT_RECORDER.enable(directory)
        TRACER.attach_flight_recorder(FLIGHT_RECORDER)
    else:
        TRACER.enable(registry=MetricsRegistry(), sink=trace_out)
    return True


def _finish_trace(args: argparse.Namespace | None = None) -> None:
    """Print the per-stage timing table and turn tracing back off."""
    timings = TRACER.stage_timings()
    print()
    if not timings:
        print("trace: no spans recorded")
    else:
        rows = [
            (
                stage,
                summary["count"],
                f"{summary['sum'] * 1000:.2f}",
                f"{summary['p50'] * 1000:.3f}",
                f"{summary['p99'] * 1000:.3f}",
            )
            for stage, summary in sorted(timings.items())
        ]
        print("per-stage timings (traced):")
        print(format_table(("stage", "calls", "total ms", "p50 ms", "p99 ms"), rows))
    TRACER.disable()
    TRACER.detach_flight_recorder()
    FLIGHT_RECORDER.disable()
    directory = getattr(args, "trace_dir", None) if args is not None else None
    if directory is not None:
        spans_path = directory / "spans.jsonl"
        if spans_path.exists():
            records = load_span_records([spans_path])
            chrome_path = directory / "trace.json"
            with open(chrome_path, "w", encoding="utf-8") as handle:
                json.dump(jsonl_to_chrome(records), handle, indent=1)
                handle.write("\n")
            print(
                f"trace: {len(records)} span(s) -> {chrome_path} "
                "(open at ui.perfetto.dev)"
            )


def _tags(text: str | None) -> tuple[str, ...]:
    if not text:
        return ()
    return tuple(tag.strip() for tag in text.split(",") if tag.strip())


def _space() -> ParametricVectorSpace:
    return ParametricVectorSpace(default_corpus())


def cmd_match(args: argparse.Namespace) -> int:
    tracing = _start_trace(args)
    space = _space()
    matcher = ThematicMatcher(ThematicMeasure(space), k=args.k)
    subscription = parse_subscription(args.subscription)
    event = parse_event(args.event)
    # Through the staged batch path (a 1x1 batch), same as dispatch; the
    # full-result mode keeps zero-score results explainable.
    batch = matcher.match_batch([subscription], [event])
    result = batch.result(0, 0)
    if result is None:
        if tracing:
            _finish_trace(args)
        print("no mapping exists (event has fewer tuples than the "
              "subscription has predicates)")
        return 1
    print(result.explain())
    for rank, mapping in enumerate(result.alternatives, start=2):
        print(f"top-{rank}: {mapping.describe(result.matrix)} "
              f"P={mapping.probability:.3f}")
    matched = result.is_match(matcher.threshold)
    print(f"match: {matched} (threshold {matcher.threshold})")
    if tracing:
        _finish_trace(args)
    return 0 if matched else 1


def cmd_relatedness(args: argparse.Namespace) -> int:
    space = _space()
    theme_a, theme_b = _tags(args.theme_a), _tags(args.theme_b)
    nonthematic = NonThematicMeasure(space).score(args.term_a, (), args.term_b, ())
    print(f"non-thematic relatedness: {nonthematic:.3f}")
    if theme_a or theme_b:
        thematic = ThematicMeasure(space).score(
            args.term_a, theme_a, args.term_b, theme_b
        )
        print(f"thematic relatedness:     {thematic:.3f} "
              f"(themes {list(theme_a)} / {list(theme_b)})")
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    if args.action == "info":
        corpus = default_corpus()
        print(f"documents: {len(corpus)}")
        print(f"digest:    {corpus_digest(corpus)}")
    elif args.action == "save":
        if not args.path:
            print("corpus save needs --path", file=sys.stderr)
            return 2
        save_corpus(default_corpus(), args.path)
        print(f"saved to {args.path}")
    elif args.action == "verify":
        if not args.path:
            print("corpus verify needs --path", file=sys.stderr)
            return 2
        corpus = load_corpus(args.path)
        print(f"ok: {len(corpus)} documents, digest verified")
    return 0


def cmd_warm_cache(args: argparse.Namespace) -> int:
    """Precompute a relatedness score store for a workload + theme draw.

    Samples the same containment theme combination ``evaluate`` would
    for the given seed, scores the workload vocabulary cross-product
    offline (optionally sharded over spawned workers), writes the store
    snapshot, and always reload-verifies it — the written file is
    re-attached, digest-checked, and sampled entries compared
    bit-for-bit against the in-memory table before the command reports
    success.
    """
    from repro.obs.clock import MONOTONIC_CLOCK
    from repro.semantics.kernel import PARITY_TOLERANCE, KernelMeasure
    from repro.semantics.persistence import load_score_store, save_score_store
    from repro.semantics.warm import (
        build_score_store,
        plan_lookups,
        workload_vocabulary,
    )

    config = {
        "tiny": WorkloadConfig.tiny,
        "small": WorkloadConfig.small,
        "paper": WorkloadConfig.paper,
    }[args.scale]()
    workload = build_workload(config)
    print(f"workload: {workload.summary()}")
    pool = list(theme_pool(workload.thesaurus))
    rng = random.Random(args.seed)
    subscription_tags = tuple(rng.sample(pool, args.subscription_tags))
    event_tags = tuple(rng.sample(subscription_tags, args.event_tags))
    subscriptions = [
        s.with_theme(subscription_tags)
        for s in workload.subscriptions.approximate
    ]
    events = [e.with_theme(event_tags) for e in workload.events]
    theme_pairs = [(subscription_tags, event_tags)]
    sub_terms, event_terms = workload_vocabulary(subscriptions, events)
    lookups = plan_lookups(sub_terms, event_terms, theme_pairs)
    print(
        f"vocabulary: {len(sub_terms)} subscription x {len(event_terms)} "
        f"event terms -> {len(lookups)} distinct pairs "
        f"({args.event_tags}⊂{args.subscription_tags} tags, "
        f"seed {args.seed})"
    )
    started = MONOTONIC_CLOCK.monotonic()
    store = build_score_store(
        workload.space,
        subscriptions,
        events,
        theme_pairs,
        workers=args.workers,
    )
    elapsed = MONOTONIC_CLOCK.monotonic() - started
    save_score_store(store, args.out)
    shards = f"{args.workers} worker(s)" if args.workers else "in-process"
    print(
        f"warmed {len(store)} entries in {elapsed:.2f}s ({shards}); "
        f"wrote {args.out} ({os.path.getsize(args.out)} bytes)"
    )
    # Reload-verify, unconditionally: attach what was just written and
    # prove it answers bit-identically to the in-memory store.
    loaded = load_score_store(
        args.out, expected_digest=corpus_digest(workload.space.documents)
    )
    if len(loaded) != len(store):
        print(
            f"reload-verify FAILED: {len(loaded)} entries on disk, "
            f"{len(store)} in memory",
            file=sys.stderr,
        )
        return 1
    sample = rng.sample(lookups, min(len(lookups), 256))
    for lookup in sample:
        if loaded.get(*lookup) != store.get(*lookup):
            print(
                f"reload-verify FAILED: {lookup!r} reads back differently",
                file=sys.stderr,
            )
            return 1
    print(f"reload-verify ok ({len(sample)} sampled entries bit-identical)")
    if args.check_parity:
        online = KernelMeasure(workload.space.kernel())
        checks = rng.sample(lookups, min(len(lookups), args.check_parity))
        worst = max(
            abs(loaded.get(*lookup) - online.score(*lookup))
            for lookup in checks
        )
        print(
            f"parity vs online kernel over {len(checks)} samples: "
            f"worst |delta| = {worst:.2e}"
        )
        if worst > PARITY_TOLERANCE:
            print(
                f"parity check FAILED: {worst:.2e} exceeds "
                f"{PARITY_TOLERANCE:.0e}",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    tracing = _start_trace(args)
    config = {
        "tiny": WorkloadConfig.tiny,
        "small": WorkloadConfig.small,
        "paper": WorkloadConfig.paper,
    }[args.scale]()
    workload = build_workload(config)
    print(f"workload: {workload.summary()}")
    baseline = run_baseline(workload)
    print(f"non-thematic baseline: F1={baseline.f1:.1%} "
          f"{baseline.events_per_second:.0f} ev/s (paper: 62% @ 202 ev/s)")
    pool = list(theme_pool(workload.thesaurus))
    rng = random.Random(args.seed)
    subscription_tags = tuple(rng.sample(pool, args.subscription_tags))
    event_tags = tuple(rng.sample(subscription_tags, args.event_tags))
    result = run_sub_experiment(
        workload,
        thematic_matcher_factory(workload),
        ThemeCombination(
            event_tags=event_tags, subscription_tags=subscription_tags
        ),
    )
    print(f"thematic ({args.event_tags}⊂{args.subscription_tags} tags): "
          f"F1={result.f1:.1%} {result.events_per_second:.0f} ev/s")
    if result.latency is not None:
        print(f"per-event latency: p50={result.latency.p50 * 1000:.2f} ms "
              f"p99={result.latency.p99 * 1000:.2f} ms")
    if result.cache_hit_rate is not None:
        print(f"relatedness cache hit rate: {result.cache_hit_rate:.1%}")
    delta = result.f1 - baseline.f1
    print(f"F1 delta: {delta:+.1%} (paper: +9 points on average)")
    if args.faults:
        with open(args.faults, encoding="utf-8") as fh:
            plan = FaultPlan.from_json(fh.read())
        print(f"fault plan: {plan.name!r} "
              f"({len(plan.callbacks)} callback fault(s), "
              f"scorer={'yes' if plan.scorer else 'no'}, "
              f"degraded={'yes' if plan.degraded else 'no'}, "
              f"kill={f'@{plan.kill.at}/{plan.kill.mode}' if plan.kill else 'no'})")
        report = run_fault_injection(workload, plan, seed=args.seed)
        for kind, entry in report["brokers"].items():
            delivered = sum(entry["delivered"])
            dead = sum(entry["dead_letters"])
            print(
                f"  {kind:<9} delivered={delivered} dead_letters={dead} "
                f"retries={entry['retries']} "
                f"callback_errors={entry['callback_errors']} "
                f"no_loss={'ok' if entry['no_loss'] else 'VIOLATED'}"
            )
            if "degraded" in entry:
                degraded = entry["degraded"]
                print(f"            degraded: trips={degraded.get('trips', 0)} "
                      f"fallback_batches={degraded.get('batches', 0)} "
                      f"recoveries={degraded.get('recoveries', 0)}")
            if entry.get("restarted"):
                recovery = entry.get("recovery", {})
                print(
                    f"            killed at WAL offset "
                    f"{plan.kill.at} ({plan.kill.mode}); restarted: "
                    f"resumed_at={entry.get('resumed_at')} "
                    f"replayed={recovery.get('records_replayed', 0)} "
                    f"snapshot={recovery.get('snapshot_generation')} "
                    f"recovered_inflight={entry.get('recover_completed', 0)}"
                )
            elif plan.kill is not None:
                print(
                    "            kill offset never reached "
                    "(run completed without restart)"
                )
        baseline_total = sum(report["baseline"])
        print(f"  fault-free matched deliveries: {baseline_total}")
        if not report["no_loss"]:
            print("no-loss invariant VIOLATED", file=sys.stderr)
            if tracing:
                _finish_trace(args)
            return 1
    if args.shards:
        comparison = compare_broker_throughput(
            workload,
            combination=ThemeCombination(
                event_tags=event_tags, subscription_tags=subscription_tags
            ),
            shards=args.shards,
            max_batch=args.max_batch,
            seed=args.seed,
            executor=args.executor,
        )
        serial = comparison["serial"]
        sharded = comparison["sharded"]
        print(
            f"broker throughput: serial {serial['mean_eps']:.0f} ev/s vs "
            f"sharded[{sharded['shards']} {sharded['executor']} shards x "
            f"batch {sharded['max_batch']}] {sharded['mean_eps']:.0f} ev/s "
            f"({comparison['speedup']:.2f}x, deliveries identical)"
        )
    if tracing:
        _finish_trace(args)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Exercise the pipeline end to end and dump the registry snapshot.

    Runs the *sharded* broker so the snapshot covers every metric family
    the system registers: ``broker.*`` and ``reliability.*`` on the
    broker registry, ``engine.*`` (including ``engine.degraded_*`` —
    the broker runs under a never-tripping degraded policy so the
    counters exist) on the per-shard registries, reported both raw
    (``shards``) and merged (``engine_totals``, via
    :func:`repro.obs.merge_snapshots`).
    """
    registry = MetricsRegistry()
    TRACER.enable(registry=registry, sink=args.trace_out)
    try:
        workload = build_workload(WorkloadConfig.tiny())
        pool = list(theme_pool(workload.thesaurus))
        rng = random.Random(args.seed)
        subscription_tags = tuple(rng.sample(pool, min(8, len(pool))))
        event_tags = tuple(rng.sample(subscription_tags, 3))

        cache = RelatednessCache()
        matcher = ThematicMatcher(
            CachedMeasure(ThematicMeasure(workload.space), cache)
        )
        config = BrokerConfig(
            shards=args.shards,
            max_batch=8,
            linger=0.0,
            workers=0,
            # A budget no tiny batch can blow: present in the snapshot,
            # silent in the run.
            degraded=DegradedPolicy(latency_budget=60.0),
        )
        broker = ShardedBroker(matcher, config, registry=registry)
        try:
            for subscription in workload.subscriptions.approximate[
                : args.subscriptions
            ]:
                broker.subscribe(subscription.with_theme(subscription_tags))
            for event in workload.events[: args.events]:
                broker.publish(event.with_theme(event_tags))
            broker.flush()
        finally:
            broker.close()

        registry.gauge("cache.relatedness_hit_rate").set(cache.hit_rate)
        registry.gauge("cache.relatedness_entries").set(len(cache))
        for name, size in workload.space.cache_stats().items():
            registry.gauge(f"space.cache.{name}").set(size)
        snapshot = broker.metrics_snapshot()
        document = registry.snapshot()
        document["shards"] = snapshot["shards"]
        document["engine_totals"] = snapshot["engine_totals"]
    finally:
        TRACER.disable()
    print(json.dumps(document, indent=2))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Rebuild one trace's causal tree from span logs / dumps."""
    records = load_span_records(args.input)
    if args.trace_id is None:
        rows = summarize_traces(records)
        if not rows:
            print("no traces found in the given files")
            return 1
        table = [
            (
                row["trace_id"],
                row["spans"],
                row["root"],
                ", ".join(row["names"]),
            )
            for row in rows
        ]
        print(format_table(("trace", "spans", "root", "span names"), table))
        return 0
    rendering = render_trace_tree(records, args.trace_id)
    print(rendering)
    return 1 if rendering.endswith("no spans found") else 0


def cmd_bench_diff(args: argparse.Namespace) -> int:
    """Gate fresh bench artifacts against the committed baselines."""
    report = diff_directories(
        args.baseline_dir, args.current_dir, tolerance=args.tolerance
    )
    markdown = render_markdown(report)
    if args.markdown_out:
        out_path = Path(args.markdown_out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(markdown + "\n", encoding="utf-8")
        print(f"trend table -> {out_path}")
    for comparison in report.comparisons:
        note = f" ({comparison.note})" if comparison.note else ""
        print(f"{comparison.bench}: {comparison.status}{note}")
    for name in report.missing_current:
        print(f"{name}: baseline present, no fresh artifact (not gated)")
    for name in report.missing_baseline:
        print(f"{name}: fresh artifact has no committed baseline yet")
    regressions = report.regressions
    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond "
            f"±{report.tolerance:.0%}:",
            file=sys.stderr,
        )
        for delta in regressions:
            print(
                f"  {delta.metric}: {delta.baseline:.4g} -> "
                f"{delta.current:.4g} ({delta.delta:+.1%}, "
                f"{delta.direction} is better)",
                file=sys.stderr,
            )
        return 1
    if args.gate and report.compared == 0:
        if report.missing_baseline:
            # Every fresh artifact is brand new — nothing to regress
            # against. New coverage passes the gate (informationally);
            # committing the baselines arms it for next time.
            print(
                "bench diff --gate: only new artifacts "
                f"({', '.join(report.missing_baseline)}); commit baselines "
                "to arm the gate"
            )
            return 0
        print(
            "bench diff --gate: no artifacts were compared "
            "(nothing to gate on)",
            file=sys.stderr,
        )
        return 1
    print(
        f"\nbench diff: {report.compared} bench(es) within "
        f"±{report.tolerance:.0%} of baseline"
    )
    return 0


def _changed_python_files(root: "pathlib.Path") -> list["pathlib.Path"]:
    """Python files under ``src/`` that git reports as modified vs HEAD.

    Covers unstaged, staged, and untracked files (the pre-push loop
    cares about all three). Only ``src/`` files are returned: tests and
    fixtures are lint *input*, not lint targets, and partial-tree runs
    already accept the reduced call-graph context — CI's whole-tree
    walk stays authoritative.
    """
    import subprocess

    def _git(*argv: str) -> list[str]:
        proc = subprocess.run(
            ["git", *argv],
            cwd=root,
            capture_output=True,
            text=True,
            check=False,
        )
        if proc.returncode != 0:
            return []
        return [line for line in proc.stdout.splitlines() if line]

    names = set(_git("diff", "--name-only", "HEAD"))
    names.update(_git("ls-files", "--others", "--exclude-standard"))
    out = []
    for name in sorted(names):
        if not name.endswith(".py") or not name.startswith("src/"):
            continue
        path = root / name
        if path.is_file():  # deleted files still appear in the diff
            out.append(path)
    return out


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the repro static-analysis suite (see docs/static-analysis.md)."""
    from pathlib import Path

    from repro.analysis import AllowlistError, run_lint
    from repro.analysis.runner import render_rules

    if args.list_rules:
        print(render_rules())
        return 0
    root = Path(args.root)
    paths = [Path(p) for p in args.paths] if args.paths else None
    if args.changed:
        if paths is not None:
            print(
                "repro lint: --changed and explicit paths are mutually "
                "exclusive",
                file=sys.stderr,
            )
            return 2
        paths = _changed_python_files(root)
        if not paths:
            print("repro lint --changed: no changed Python files under src/")
            return 0
    allowlist = Path(args.allowlist) if args.allowlist else None
    if args.growth_base is not None:
        from repro.analysis.allowlist import check_growth, load_allowlist

        head_path = allowlist or root / ".repro-lint.toml"
        base_path = Path(args.growth_base)
        try:
            head = load_allowlist(head_path) if head_path.is_file() else []
            # A missing base file means the allowlist did not exist at
            # the base revision: every head entry counts as growth.
            base = load_allowlist(base_path) if base_path.is_file() else []
        except AllowlistError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        added, problems = check_growth(base, head)
        for entry in added:
            print(f"allowlist +{entry.describe()}")
            print(f"  reason: {entry.reason}")
        for problem in problems:
            print(f"repro lint: {problem}", file=sys.stderr)
        print(
            f"repro lint --growth-base: {len(head)} entr(y/ies), "
            f"{len(added)} added vs base, {len(problems)} problem(s)"
        )
        return 1 if problems else 0
    try:
        result = run_lint(
            root, paths, allowlist=allowlist, changed_scope=args.changed
        )
    except AllowlistError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.stale_only:
        # CI stale-suppression check: only RL000 findings gate the run.
        for finding in result.stale:
            print(finding.render())
        print(
            f"repro lint --stale-only: {len(result.stale)} stale "
            f"suppression(s), {len(result.suppressed)} active"
        )
        return 1 if result.stale else 0
    if args.format == "json":
        print(result.to_json())
    else:
        print(result.render_text())
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thematic event processing (Hasan & Curry, Middleware 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_match = sub.add_parser("match", help="match a subscription against an event")
    p_match.add_argument("--subscription", required=True)
    p_match.add_argument("--event", required=True)
    p_match.add_argument("-k", type=int, default=3, help="top-k mappings")
    p_match.add_argument("--trace", action="store_true",
                         help="print per-stage pipeline timings")
    p_match.add_argument("--trace-out", default=None,
                         help="append span records as JSONL to this file")
    p_match.set_defaults(func=cmd_match)

    p_rel = sub.add_parser("relatedness", help="score two terms")
    p_rel.add_argument("term_a")
    p_rel.add_argument("term_b")
    p_rel.add_argument("--theme-a", default="", help="comma-separated tags")
    p_rel.add_argument("--theme-b", default="", help="comma-separated tags")
    p_rel.set_defaults(func=cmd_relatedness)

    p_corpus = sub.add_parser("corpus", help="inspect/save/verify the corpus")
    p_corpus.add_argument("action", choices=("info", "save", "verify"))
    p_corpus.add_argument("--path")
    p_corpus.set_defaults(func=cmd_corpus)

    p_eval = sub.add_parser("evaluate", help="baseline vs thematic comparison")
    p_eval.add_argument("--scale", choices=("tiny", "small", "paper"),
                        default="tiny")
    p_eval.add_argument("--event-tags", type=int, default=4)
    p_eval.add_argument("--subscription-tags", type=int, default=12)
    p_eval.add_argument("--seed", type=int, default=99)
    p_eval.add_argument("--shards", type=int, default=0,
                        help="also compare serial vs sharded broker "
                             "throughput with this many subscription shards")
    p_eval.add_argument("--max-batch", type=int, default=32,
                        help="ingress micro-batch size for --shards")
    p_eval.add_argument("--executor", choices=("thread", "process"),
                        default="thread",
                        help="shard backend for --shards: in-process "
                             "threads or spawned worker processes over a "
                             "zero-copy shared semantic space")
    p_eval.add_argument("--faults", default=None, metavar="PLAN.json",
                        help="run the fault-injection experiment with this "
                             "FaultPlan and verify the no-loss invariant "
                             "(exit 1 on violation)")
    p_eval.add_argument("--trace", action="store_true",
                        help="print per-stage pipeline timings")
    p_eval.add_argument("--trace-out", default=None,
                        help="append span records as JSONL to this file")
    p_eval.set_defaults(func=cmd_evaluate)

    p_warm = sub.add_parser(
        "warm-cache",
        help="precompute a relatedness score store for the engine's "
             "score_store_path knob",
    )
    p_warm.add_argument("--scale", choices=("tiny", "small", "paper"),
                        default="tiny")
    p_warm.add_argument("--out", required=True, metavar="STORE.bin",
                        help="where to write the score-store snapshot")
    p_warm.add_argument("--event-tags", type=int, default=4)
    p_warm.add_argument("--subscription-tags", type=int, default=12)
    p_warm.add_argument("--seed", type=int, default=99)
    p_warm.add_argument("--workers", type=int, default=0,
                        help="shard scoring over this many spawned worker "
                             "processes (0 = in-process; results are "
                             "bit-identical either way)")
    p_warm.add_argument("--check-parity", type=int, default=0, metavar="N",
                        help="after the reload-verify, compare N sampled "
                             "store entries against the online kernel and "
                             "exit 1 beyond the documented tolerance")
    p_warm.set_defaults(func=cmd_warm_cache)

    p_stats = sub.add_parser(
        "stats",
        help="exercise the pipeline on a tiny workload, dump metrics JSON",
    )
    p_stats.add_argument("--events", type=int, default=20,
                         help="events to publish through the broker")
    p_stats.add_argument("--subscriptions", type=int, default=8)
    p_stats.add_argument("--seed", type=int, default=99)
    p_stats.add_argument("--shards", type=int, default=2,
                         help="subscription shards for the stats broker")
    p_stats.add_argument("--trace-out", default=None,
                         help="append span records as JSONL to this file")
    p_stats.set_defaults(func=cmd_stats)

    p_trace = sub.add_parser(
        "trace",
        help="rebuild a trace's causal tree from span logs / dumps",
    )
    p_trace.add_argument("trace_id", nargs="?", default=None,
                         help="trace id to render (omit to list traces)")
    p_trace.add_argument("--input", nargs="+", required=True,
                         metavar="PATH",
                         help="span JSONL files, Chrome-trace dumps, or "
                              "directories of either (e.g. a --trace-out dir)")
    p_trace.set_defaults(func=cmd_trace)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark artifact tooling (see 'bench diff')",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_diff = bench_sub.add_parser(
        "diff",
        help="compare fresh BENCH_*.json artifacts against baselines; "
             "exit 1 on regression",
    )
    p_diff.add_argument("--baseline-dir", default="benchmarks/baselines",
                        help="directory of committed baseline artifacts")
    p_diff.add_argument("--current-dir", default=".",
                        help="directory of freshly produced artifacts")
    p_diff.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="fractional noise tolerance per metric "
                             f"(default {DEFAULT_TOLERANCE})")
    p_diff.add_argument("--markdown-out", default=None, metavar="PATH",
                        help="also write the markdown trend table here")
    p_diff.add_argument("--gate", action="store_true",
                        help="CI mode: additionally fail when nothing "
                             "was compared")
    p_diff.set_defaults(func=cmd_bench_diff)

    p_lint = sub.add_parser(
        "lint",
        help="run the repro static-analysis suite (lock discipline, "
             "clock discipline, metrics manifest, API surface)",
    )
    p_lint.add_argument("paths", nargs="*",
                        help="files/directories to check (default: src/)")
    p_lint.add_argument("--root", default=".",
                        help="repo root (allowlist + API snapshot location)")
    p_lint.add_argument("--allowlist", default=None,
                        help="allowlist file (default: <root>/.repro-lint.toml)")
    p_lint.add_argument("--format", choices=("text", "json"), default="text")
    p_lint.add_argument("--changed", action="store_true",
                        help="check only files git reports as changed "
                             "relative to HEAD (pre-push loop; skips the "
                             "whole-tree walk and stale-entry reporting)")
    p_lint.add_argument("--growth-base", default=None, metavar="FILE",
                        help="audit allowlist growth: compare the current "
                             "allowlist against FILE (the base revision's "
                             "copy; CI extracts it with `git show`) and "
                             "exit 1 if an added entry reuses an existing "
                             "reason verbatim")
    p_lint.add_argument("--stale-only", action="store_true",
                        help="report only stale allowlist entries (RL000); "
                             "exit 1 if any")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    p_lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # `repro trace ... | head` closes stdout early; that is not an
        # error worth a traceback. Detach stdout so interpreter
        # shutdown doesn't re-raise on the final flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        try:
            os.dup2(devnull, sys.stdout.fileno())
        finally:
            # dup2 duplicated the descriptor onto stdout; the original
            # would otherwise leak one fd per in-process main() call.
            os.close(devnull)
        return 0
    finally:
        # A command that dies mid-run must not leave the global tracer
        # or flight recorder enabled for the next in-process main() call.
        TRACER.disable()
        TRACER.detach_flight_recorder()
        FLIGHT_RECORDER.disable()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
