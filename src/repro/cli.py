"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``match``
    Match a subscription against an event (both in the paper's surface
    syntax) and print the top-k mappings.
``relatedness``
    Score the semantic relatedness of two terms, optionally under
    themes, with both the thematic and non-thematic measures.
``corpus``
    Inspect, save, or verify the bundled synthetic corpus snapshot.
``evaluate``
    Run the non-thematic baseline plus a thematic sub-experiment at the
    chosen workload scale and print the comparison.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.core.language import parse_event, parse_subscription
from repro.core.matcher import ThematicMatcher
from repro.evaluation import (
    ThemeCombination,
    WorkloadConfig,
    build_workload,
    run_baseline,
    run_sub_experiment,
    theme_pool,
    thematic_matcher_factory,
)
from repro.knowledge.corpus import default_corpus
from repro.semantics.measures import NonThematicMeasure, ThematicMeasure
from repro.semantics.persistence import corpus_digest, load_corpus, save_corpus
from repro.semantics.pvsm import ParametricVectorSpace

__all__ = ["main", "build_parser"]


def _tags(text: str | None) -> tuple[str, ...]:
    if not text:
        return ()
    return tuple(tag.strip() for tag in text.split(",") if tag.strip())


def _space() -> ParametricVectorSpace:
    return ParametricVectorSpace(default_corpus())


def cmd_match(args: argparse.Namespace) -> int:
    space = _space()
    matcher = ThematicMatcher(ThematicMeasure(space), k=args.k)
    subscription = parse_subscription(args.subscription)
    event = parse_event(args.event)
    result = matcher.match(subscription, event)
    if result is None:
        print("no mapping exists (event has fewer tuples than the "
              "subscription has predicates)")
        return 1
    print(result.explain())
    for rank, mapping in enumerate(result.alternatives, start=2):
        print(f"top-{rank}: {mapping.describe(result.matrix)} "
              f"P={mapping.probability:.3f}")
    matched = result.is_match(matcher.threshold)
    print(f"match: {matched} (threshold {matcher.threshold})")
    return 0 if matched else 1


def cmd_relatedness(args: argparse.Namespace) -> int:
    space = _space()
    theme_a, theme_b = _tags(args.theme_a), _tags(args.theme_b)
    nonthematic = NonThematicMeasure(space).score(args.term_a, (), args.term_b, ())
    print(f"non-thematic relatedness: {nonthematic:.3f}")
    if theme_a or theme_b:
        thematic = ThematicMeasure(space).score(
            args.term_a, theme_a, args.term_b, theme_b
        )
        print(f"thematic relatedness:     {thematic:.3f} "
              f"(themes {list(theme_a)} / {list(theme_b)})")
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    if args.action == "info":
        corpus = default_corpus()
        print(f"documents: {len(corpus)}")
        print(f"digest:    {corpus_digest(corpus)}")
    elif args.action == "save":
        if not args.path:
            print("corpus save needs --path", file=sys.stderr)
            return 2
        save_corpus(default_corpus(), args.path)
        print(f"saved to {args.path}")
    elif args.action == "verify":
        if not args.path:
            print("corpus verify needs --path", file=sys.stderr)
            return 2
        corpus = load_corpus(args.path)
        print(f"ok: {len(corpus)} documents, digest verified")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    config = {
        "tiny": WorkloadConfig.tiny,
        "small": WorkloadConfig.small,
        "paper": WorkloadConfig.paper,
    }[args.scale]()
    workload = build_workload(config)
    print(f"workload: {workload.summary()}")
    baseline = run_baseline(workload)
    print(f"non-thematic baseline: F1={baseline.f1:.1%} "
          f"{baseline.events_per_second:.0f} ev/s (paper: 62% @ 202 ev/s)")
    pool = list(theme_pool(workload.thesaurus))
    rng = random.Random(args.seed)
    subscription_tags = tuple(rng.sample(pool, args.subscription_tags))
    event_tags = tuple(rng.sample(subscription_tags, args.event_tags))
    result = run_sub_experiment(
        workload,
        thematic_matcher_factory(workload),
        ThemeCombination(
            event_tags=event_tags, subscription_tags=subscription_tags
        ),
    )
    print(f"thematic ({args.event_tags}⊂{args.subscription_tags} tags): "
          f"F1={result.f1:.1%} {result.events_per_second:.0f} ev/s")
    delta = result.f1 - baseline.f1
    print(f"F1 delta: {delta:+.1%} (paper: +9 points on average)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thematic event processing (Hasan & Curry, Middleware 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_match = sub.add_parser("match", help="match a subscription against an event")
    p_match.add_argument("--subscription", required=True)
    p_match.add_argument("--event", required=True)
    p_match.add_argument("-k", type=int, default=3, help="top-k mappings")
    p_match.set_defaults(func=cmd_match)

    p_rel = sub.add_parser("relatedness", help="score two terms")
    p_rel.add_argument("term_a")
    p_rel.add_argument("term_b")
    p_rel.add_argument("--theme-a", default="", help="comma-separated tags")
    p_rel.add_argument("--theme-b", default="", help="comma-separated tags")
    p_rel.set_defaults(func=cmd_relatedness)

    p_corpus = sub.add_parser("corpus", help="inspect/save/verify the corpus")
    p_corpus.add_argument("action", choices=("info", "save", "verify"))
    p_corpus.add_argument("--path")
    p_corpus.set_defaults(func=cmd_corpus)

    p_eval = sub.add_parser("evaluate", help="baseline vs thematic comparison")
    p_eval.add_argument("--scale", choices=("tiny", "small", "paper"),
                        default="tiny")
    p_eval.add_argument("--event-tags", type=int, default=4)
    p_eval.add_argument("--subscription-tags", type=int, default=12)
    p_eval.add_argument("--seed", type=int, default=99)
    p_eval.set_defaults(func=cmd_evaluate)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
