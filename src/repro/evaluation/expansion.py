"""Semantic expansion of seed events (Section 5.2.2, Figure 6).

Expansion manufactures the heterogeneity the evaluation needs: starting
from each seed event, terms inside its attributes and values are
replaced with synonyms or related terms from the thesaurus, producing
events that *mean* the same thing but *say* it differently — the paper
grows 166 seeds into 14,743 expanded events this way.

Replacement sites are found with the span machinery of
:mod:`repro.knowledge.rewrite`; at most one span per attribute/value
side is rewritten per variant, but several sides of one event may be
rewritten at once (``replacement_rate``). Every variant remembers its
seed, and variant 0 of each seed is the seed itself (normalized), so
every subscription keeps at least one trivially relevant event.

Besides faithful variants, the expansion emits **distractors**: events
derived from a seed by corrupting a ground-truth-discriminating detail —
flipping a qualifier ("increased" ↔ "decreased"), renumbering an
identifier ("room 112" → "room 612"), or toggling an occupancy status —
and then synonym-expanding as usual. Distractors are lexically close to
relevant events but semantically different, which is what makes the
evaluation discriminate between matchers at all (a trivially separable
event set would score every approximate matcher near 100%).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.events import Event
from repro.knowledge.rewrite import TermSpan, find_term_spans, replace_span
from repro.knowledge.thesaurus import Thesaurus
from repro.semantics.tokenize import normalize_term

__all__ = ["ExpansionConfig", "ExpandedEvent", "expand_events", "expand_event"]


@dataclass(frozen=True)
class ExpansionConfig:
    """Expansion size and determinism knobs.

    ``variants_per_seed`` counts the seed copy itself; the paper-scale
    value is 89 (166 seeds x 89 ≈ 14.8k events).
    """

    variants_per_seed: int = 12
    distractors_per_seed: int = 6
    #: Probability that any given attribute/value slot gets rewritten in a
    #: variant. The paper's environment is pervasively heterogeneous
    #: ("events contain terms such as 'energy consumption' and
    #: 'electricity usage' to refer to the same thing"), so roughly half
    #: of every event's rewritable slots change per variant.
    replacement_rate: float = 0.5
    include_related: bool = True
    domains: tuple[str, ...] | None = None
    seed: int = 11
    #: Attempts per variant before giving up on finding a fresh one.
    max_attempts_factor: int = 10

    @classmethod
    def paper_scale(cls) -> "ExpansionConfig":
        return cls(variants_per_seed=49, distractors_per_seed=40)


@dataclass(frozen=True)
class ExpandedEvent:
    """An expanded event plus the index of the seed it came from."""

    event: Event
    seed_index: int
    replacements: int
    distractor: bool = False


#: A rewrite site: (tuple index, side, span). Side 0 = attribute, 1 = value.
_Site = tuple[int, int, TermSpan]


def _normalize_event(event: Event) -> Event:
    """Seed copy with normalized attribute/value text.

    Expanded variants are built from normalized tokens, so the identity
    variant must be normalized too or string-identical terms would
    differ by case/punctuation only.
    """
    pairs = []
    for av in event.payload:
        value = (
            normalize_term(av.value) if isinstance(av.value, str) else av.value
        )
        pairs.append((normalize_term(av.attribute), value))
    return Event.create(theme=event.theme, payload=pairs)


def _rewrite_sites(
    event: Event, thesaurus: Thesaurus, config: ExpansionConfig
) -> list[_Site]:
    sites: list[_Site] = []
    for tuple_index, av in enumerate(event.payload):
        for side, text in enumerate((av.attribute, av.value)):
            if not isinstance(text, str):
                continue
            for span in find_term_spans(
                text,
                thesaurus,
                config.domains,
                include_related=config.include_related,
            ):
                sites.append((tuple_index, side, span))
    return sites


def _sample_rewrites(
    sites: list[_Site], rng: random.Random, rate: float
) -> list[tuple[_Site, str]]:
    """Pick rewrites: each (tuple, side) slot changes with prob ``rate``.

    When a slot has several recognizable spans one of them is chosen
    uniformly, so at most one span per slot is rewritten.
    """
    by_slot: dict[tuple[int, int], list[_Site]] = {}
    for site in sites:
        by_slot.setdefault((site[0], site[1]), []).append(site)
    chosen: list[tuple[_Site, str]] = []
    for slot_sites in by_slot.values():
        if rng.random() < rate:
            site = rng.choice(slot_sites)
            chosen.append((site, rng.choice(site[2].replacements)))
    return chosen


def _apply_sites(
    event: Event,
    chosen: list[tuple[_Site, str]],
) -> Event | None:
    """Rewrite the chosen sites; None if attributes would collide."""
    pairs: list[list] = [
        [normalize_term(av.attribute),
         normalize_term(av.value) if isinstance(av.value, str) else av.value]
        for av in event.payload
    ]
    for (tuple_index, side, span), replacement in chosen:
        pairs[tuple_index][side] = replace_span(
            str(pairs[tuple_index][side]), span, replacement
        )
    attributes = [attr for attr, _ in pairs]
    if len(set(attributes)) != len(attributes):
        return None
    return Event.create(theme=event.theme, payload=[tuple(p) for p in pairs])


#: Qualifier flips used to corrupt event types into distractors.
_QUALIFIER_FLIPS = {
    "increased": "decreased",
    "decreased": "increased",
    "high": "low",
    "low": "high",
    "occupied": "free",
    "free": "occupied",
}


def _corrupt(event: Event, rng: random.Random) -> Event | None:
    """One corrupted copy of ``event``, or None if nothing is corruptible.

    Corruption sites: a flippable qualifier/status token, or an all-digit
    identifier token, anywhere in a string value. Exactly one site is
    corrupted per distractor. Semantic flips are weighted 6x over digit
    renumbering: flips are the distractors a semantic matcher can (and
    the thematic one does) resolve, while renumbered identifiers have
    identical distributional profiles — they bound what *any*
    approximate matcher can score, the ceiling below 100% that the
    paper's 85% best case reflects.
    """
    sites: list[tuple[int, int, str]] = []  # (tuple index, token index, new token)
    for tuple_index, av in enumerate(event.payload):
        if not isinstance(av.value, str):
            continue
        for token_index, token in enumerate(av.value.split()):
            flipped = _QUALIFIER_FLIPS.get(token)
            if flipped is not None:
                sites.extend([(tuple_index, token_index, flipped)] * 6)
            elif token.isdigit():
                sites.append(
                    (tuple_index, token_index, str(int(token) + rng.randint(391, 879)))
                )
    if not sites:
        return None
    tuple_index, token_index, new_token = rng.choice(sites)
    pairs = []
    for i, av in enumerate(event.payload):
        value = av.value
        if i == tuple_index:
            tokens = str(value).split()
            tokens[token_index] = new_token
            value = " ".join(tokens)
        pairs.append((av.attribute, value))
    return Event.create(theme=event.theme, payload=pairs)


def expand_event(
    event: Event,
    thesaurus: Thesaurus,
    config: ExpansionConfig,
    rng: random.Random,
    seed_index: int,
) -> list[ExpandedEvent]:
    """Expand one seed into up to ``variants_per_seed`` distinct events."""
    normalized = _normalize_event(event)
    variants: list[ExpandedEvent] = [
        ExpandedEvent(event=normalized, seed_index=seed_index, replacements=0)
    ]
    seen: set[tuple] = {normalized.payload}
    sites = _rewrite_sites(normalized, thesaurus, config)
    if not sites:
        return variants
    attempts = config.variants_per_seed * config.max_attempts_factor
    while len(variants) < config.variants_per_seed and attempts > 0:
        attempts -= 1
        chosen = _sample_rewrites(sites, rng, config.replacement_rate)
        if not chosen:
            continue
        candidate = _apply_sites(normalized, chosen)
        if candidate is None or candidate.payload in seen:
            continue
        seen.add(candidate.payload)
        variants.append(
            ExpandedEvent(
                event=candidate, seed_index=seed_index, replacements=len(chosen)
            )
        )

    attempts = config.distractors_per_seed * config.max_attempts_factor
    distractors: list[ExpandedEvent] = []
    while len(distractors) < config.distractors_per_seed and attempts > 0:
        attempts -= 1
        corrupted = _corrupt(normalized, rng)
        if corrupted is None:
            break
        corrupted_sites = _rewrite_sites(corrupted, thesaurus, config)
        chosen = _sample_rewrites(corrupted_sites, rng, config.replacement_rate)
        candidate = _apply_sites(corrupted, chosen) if chosen else corrupted
        if candidate is None or candidate.payload in seen:
            continue
        seen.add(candidate.payload)
        distractors.append(
            ExpandedEvent(
                event=candidate,
                seed_index=seed_index,
                replacements=len(chosen),
                distractor=True,
            )
        )
    return variants + distractors


def expand_events(
    seeds: tuple[Event, ...] | list[Event],
    thesaurus: Thesaurus,
    config: ExpansionConfig | None = None,
) -> tuple[ExpandedEvent, ...]:
    """Expand every seed (Figure 6's 166 -> 14,743 step, scaled by config)."""
    config = config if config is not None else ExpansionConfig()
    rng = random.Random(config.seed)
    out: list[ExpandedEvent] = []
    for seed_index, seed in enumerate(seeds):
        out.extend(expand_event(seed, thesaurus, config, rng, seed_index))
    return tuple(out)
