"""One-stop construction of the full evaluation workload (Figure 6).

Bundles every Figure 6 stage up to (but excluding) theme association:
corpus -> space, seeds -> expansion -> events, seeds -> subscriptions,
thesaurus -> ground truth. The result is immutable and shared by all
benches; two scales are predefined:

* ``small`` — the default: laptop-friendly sizes that preserve every
  qualitative shape of Section 5.3 (used by tests and default benches);
* ``paper`` — the paper's sizes (166 seeds, ~14.7k events,
  94 subscriptions, 30x30x5 theme grid); hours of CPython time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.events import Event
from repro.datasets.seeds import SeedConfig, generate_seed_events
from repro.evaluation.expansion import ExpandedEvent, ExpansionConfig, expand_events
from repro.evaluation.groundtruth import GroundTruth, build_ground_truth
from repro.evaluation.subscriptions import (
    SubscriptionConfig,
    SubscriptionSet,
    generate_subscriptions,
)
from repro.evaluation.themes import ThemeGridConfig
from repro.knowledge.corpus import CorpusConfig, build_corpus
from repro.knowledge.eurovoc import default_thesaurus
from repro.knowledge.rewrite import Canonicalizer
from repro.knowledge.thesaurus import Thesaurus
from repro.semantics.documents import DocumentSet
from repro.semantics.pvsm import ParametricVectorSpace

__all__ = ["WorkloadConfig", "Workload", "build_workload"]


@dataclass(frozen=True)
class WorkloadConfig:
    """All Figure 6 knobs in one place."""

    seeds: SeedConfig = field(default_factory=SeedConfig)
    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    expansion: ExpansionConfig = field(default_factory=ExpansionConfig)
    subscriptions: SubscriptionConfig = field(default_factory=SubscriptionConfig)
    themes: ThemeGridConfig = field(default_factory=ThemeGridConfig.small)

    @classmethod
    def small(cls) -> "WorkloadConfig":
        """Laptop-scale workload preserving the paper's shapes."""
        return cls(
            seeds=SeedConfig(count=48),
            expansion=ExpansionConfig(variants_per_seed=8, distractors_per_seed=8),
            subscriptions=SubscriptionConfig(count=24),
            themes=ThemeGridConfig.small(),
        )

    @classmethod
    def tiny(cls) -> "WorkloadConfig":
        """Test-suite scale: seconds, not minutes."""
        return cls(
            seeds=SeedConfig(count=24),
            expansion=ExpansionConfig(variants_per_seed=5, distractors_per_seed=6),
            subscriptions=SubscriptionConfig(count=8),
            themes=ThemeGridConfig(
                event_sizes=(2, 6), subscription_sizes=(2, 6), samples_per_cell=1
            ),
        )

    @classmethod
    def paper(cls) -> "WorkloadConfig":
        """The paper's full dimensions (slow in CPython)."""
        return cls(
            seeds=SeedConfig(count=166),
            corpus=CorpusConfig.paper_scale(),
            expansion=ExpansionConfig.paper_scale(),
            subscriptions=SubscriptionConfig(count=94),
            themes=ThemeGridConfig.paper_scale(),
        )


@dataclass(frozen=True)
class Workload:
    """Everything a sub-experiment needs, fully materialized."""

    config: WorkloadConfig
    thesaurus: Thesaurus
    corpus: DocumentSet
    space: ParametricVectorSpace
    seeds: tuple[Event, ...]
    expanded: tuple[ExpandedEvent, ...]
    events: tuple[Event, ...]
    subscriptions: SubscriptionSet
    ground_truth: GroundTruth
    canonicalizer: Canonicalizer

    def summary(self) -> str:
        return (
            f"{len(self.seeds)} seeds -> {len(self.events)} expanded events, "
            f"{len(self.subscriptions)} subscriptions "
            f"({self.ground_truth.total_relevant_pairs()} relevant pairs), "
            f"corpus of {len(self.corpus)} documents"
        )


def build_workload(config: WorkloadConfig | None = None) -> Workload:
    """Materialize the Figure 6 pipeline for the given configuration.

    The ground truth is computed against the *approximate* subscription
    set — the sets actually evaluated in Section 5.3.
    """
    config = config if config is not None else WorkloadConfig.small()
    thesaurus = default_thesaurus()
    corpus = build_corpus(thesaurus, config.corpus)
    space = ParametricVectorSpace(corpus)
    seeds = generate_seed_events(config.seeds)
    expanded = expand_events(seeds, thesaurus, config.expansion)
    events = tuple(item.event for item in expanded)
    subscriptions = generate_subscriptions(seeds, config.subscriptions)
    canonicalizer = Canonicalizer(thesaurus, config.expansion.domains)
    ground_truth = build_ground_truth(
        subscriptions.approximate, events, canonicalizer
    )
    return Workload(
        config=config,
        thesaurus=thesaurus,
        corpus=corpus,
        space=space,
        seeds=seeds,
        expanded=expanded,
        events=events,
        subscriptions=subscriptions,
        ground_truth=ground_truth,
        canonicalizer=canonicalizer,
    )
