"""The exact relevance ground truth (Section 5.2.3).

The paper's relevance function: "an expanded event is relevant to an
approximate subscription if it exactly matches the subscription or a
version of it which results from it by replacing the approximated parts
with related terms from the thesaurus used for semantic expansion".

We implement exactly that, with no recourse to distributional
semantics: a predicate side marked ``~`` accepts any term in the same
thesaurus equivalence class (via
:class:`~repro.knowledge.rewrite.Canonicalizer`); an unmarked side
requires verbatim (normalized) equality. A subscription is relevant to
an event when an *injective* predicate→tuple assignment satisfying all
predicates exists — found by backtracking over the small bipartite
compatibility graph.

Because the relation is purely thesaurus-driven it is "isomorphic to a
basic exact ground truth function between exact subscriptions and seed
events", as the paper puts it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.events import Event
from repro.core.subscriptions import Predicate, Subscription
from repro.evaluation.expansion import ExpandedEvent
from repro.knowledge.rewrite import Canonicalizer
from repro.semantics.tokenize import normalize_term

__all__ = ["GroundTruth", "is_relevant", "build_ground_truth"]


def _side_compatible(
    sub_term: str,
    event_term,
    approximate: bool,
    canonicalizer: Canonicalizer,
) -> bool:
    if isinstance(sub_term, str) and isinstance(event_term, str):
        if normalize_term(sub_term) == normalize_term(event_term):
            return True
        if approximate:
            return canonicalizer.equivalent(sub_term, event_term)
        return False
    return sub_term == event_term


def _predicate_compatible(
    predicate: Predicate, attribute: str, value, canonicalizer: Canonicalizer
) -> bool:
    if not _side_compatible(
        predicate.attribute, attribute, predicate.approx_attribute, canonicalizer
    ):
        return False
    if predicate.operator != "=":
        # Extension operators are non-semantic: evaluate directly.
        return predicate.evaluate_value(value)
    return _side_compatible(
        predicate.value, value, predicate.approx_value, canonicalizer
    )


def _injective_assignment(compatibility: list[list[int]], m: int) -> bool:
    """Backtracking search for a predicate->tuple injection.

    ``compatibility[i]`` lists tuple indices compatible with predicate
    ``i``. Predicates are tried most-constrained first, the classic
    fail-fast ordering.
    """
    order = sorted(range(len(compatibility)), key=lambda i: len(compatibility[i]))
    used = [False] * m

    def assign(position: int) -> bool:
        if position == len(order):
            return True
        for tuple_index in compatibility[order[position]]:
            if not used[tuple_index]:
                used[tuple_index] = True
                if assign(position + 1):
                    return True
                used[tuple_index] = False
        return False

    return assign(0)


def is_relevant(
    subscription: Subscription, event: Event, canonicalizer: Canonicalizer
) -> bool:
    """The paper's exact relevance relation for one pair."""
    m = len(event.payload)
    if len(subscription.predicates) > m:
        return False
    compatibility: list[list[int]] = []
    for predicate in subscription.predicates:
        row = [
            j
            for j, av in enumerate(event.payload)
            if _predicate_compatible(predicate, av.attribute, av.value, canonicalizer)
        ]
        if not row:
            return False
        compatibility.append(row)
    return _injective_assignment(compatibility, m)


@dataclass(frozen=True)
class GroundTruth:
    """Relevant-event index sets, one per subscription (same order)."""

    relevant_sets: tuple[frozenset[int], ...]

    def relevant_to(self, subscription_index: int) -> frozenset[int]:
        return self.relevant_sets[subscription_index]

    def total_relevant_pairs(self) -> int:
        return sum(len(s) for s in self.relevant_sets)


def build_ground_truth(
    subscriptions: Sequence[Subscription],
    events: Sequence[Event] | Sequence[ExpandedEvent],
    canonicalizer: Canonicalizer,
) -> GroundTruth:
    """Evaluate the relevance relation over the full cross product."""
    plain_events = [
        item.event if isinstance(item, ExpandedEvent) else item for item in events
    ]
    relevant_sets = tuple(
        frozenset(
            j
            for j, event in enumerate(plain_events)
            if is_relevant(subscription, event, canonicalizer)
        )
        for subscription in subscriptions
    )
    return GroundTruth(relevant_sets=relevant_sets)
