"""Theme-tag combination sampling (Section 5.2.4, Figure 6).

Theme tags come from the top terms of the micro-thesauri whose domains
generated the event set. For each grid cell ``(event size i,
subscription size j)`` the paper samples 5 pairs of tag sets with the
*containment* property: the smaller set is a subset of the larger
(equal sizes mean equal sets). The full paper grid is 30x30x5 = 4,500
sub-experiments; the grid is configurable so tests and default benches
can run calibrated subsets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.knowledge.thesaurus import Thesaurus

__all__ = ["ThemeCombination", "ThemeGridConfig", "sample_theme_combinations", "theme_pool"]


@dataclass(frozen=True)
class ThemeCombination:
    """One sampled pair of theme-tag sets (containment holds)."""

    event_tags: tuple[str, ...]
    subscription_tags: tuple[str, ...]

    def __post_init__(self) -> None:
        small, large = sorted(
            (set(self.event_tags), set(self.subscription_tags)), key=len
        )
        if not small <= large:
            raise ValueError("theme combination must satisfy containment")


@dataclass(frozen=True)
class ThemeGridConfig:
    """Which cells to sample and how many samples per cell."""

    event_sizes: tuple[int, ...] = tuple(range(1, 31))
    subscription_sizes: tuple[int, ...] = tuple(range(1, 31))
    samples_per_cell: int = 5
    domains: tuple[str, ...] | None = None
    seed: int = 31

    @classmethod
    def paper_scale(cls) -> "ThemeGridConfig":
        return cls()

    @classmethod
    def small(cls) -> "ThemeGridConfig":
        sizes = (1, 2, 3, 5, 7, 10, 15, 20, 30)
        return cls(event_sizes=sizes, subscription_sizes=sizes, samples_per_cell=2)


def theme_pool(
    thesaurus: Thesaurus, domains: tuple[str, ...] | None = None
) -> tuple[str, ...]:
    """The tag pool: top terms of the expansion domains, in order."""
    return thesaurus.top_terms(domains)


def sample_theme_combinations(
    thesaurus: Thesaurus, config: ThemeGridConfig | None = None
) -> dict[tuple[int, int], tuple[ThemeCombination, ...]]:
    """Sample every configured cell; deterministic for a given config.

    Keys are ``(event theme size, subscription theme size)``. The larger
    set is drawn without replacement from the pool; the smaller is a
    random subset of it, so containment always holds — matching the
    paper's "the event theme tags set contains the subscription theme
    tags set or vice versa".
    """
    config = config if config is not None else ThemeGridConfig()
    pool = list(theme_pool(thesaurus, config.domains))
    max_size = max(max(config.event_sizes), max(config.subscription_sizes))
    if max_size > len(pool):
        raise ValueError(
            f"theme sizes up to {max_size} need a pool of at least that many "
            f"top terms, got {len(pool)}"
        )
    rng = random.Random(config.seed)
    grid: dict[tuple[int, int], tuple[ThemeCombination, ...]] = {}
    for event_size in config.event_sizes:
        for subscription_size in config.subscription_sizes:
            samples = []
            for _ in range(config.samples_per_cell):
                large_size = max(event_size, subscription_size)
                large = rng.sample(pool, large_size)
                event_tags = tuple(rng.sample(large, event_size)) if (
                    event_size < large_size
                ) else tuple(large)
                subscription_tags = tuple(
                    rng.sample(large, subscription_size)
                ) if subscription_size < large_size else tuple(large)
                samples.append(
                    ThemeCombination(
                        event_tags=event_tags,
                        subscription_tags=subscription_tags,
                    )
                )
            grid[(event_size, subscription_size)] = tuple(samples)
    return grid
