"""Effectiveness and efficiency metrics (Section 5.1, Table 2).

Effectiveness follows the paper's protocol exactly: the approximate
matcher assigns scores, events are *ranked* per subscription, and
precision is interpolated at the 11 standard recall points
``{0, 0.1, ..., 1.0}`` — "to cover all the precision-recall curve
without using thresholds". Precision and recall average over
subscriptions; F1 combines them per recall point and the maximum over
the points is reported.

Table 2's base concepts (TP/FP/FN/TN) are modeled by
:class:`ConfusionCounts` for threshold-style consumers (the broker, the
examples); the ranking metrics never need a threshold.

Efficiency is ``Throughput = processed events / time`` measured with a
monotonic clock around the caller-supplied loop.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.obs.clock import MONOTONIC_CLOCK

__all__ = [
    "RECALL_LEVELS",
    "ConfusionCounts",
    "ranking_from_scores",
    "interpolated_precision",
    "average_interpolated_precision",
    "max_f1_from_precisions",
    "effectiveness",
    "EffectivenessResult",
    "ThroughputResult",
    "measure_throughput",
]

#: The 11 standard recall points of Section 5.1.
RECALL_LEVELS: tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(11))


@dataclass(frozen=True)
class ConfusionCounts:
    """Table 2: the base concepts for effectiveness evaluation."""

    tp: int
    fp: int
    fn: int
    tn: int

    def precision(self) -> float:
        """``TP / (TP + FP)``; 0 when nothing was retrieved."""
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    def recall(self) -> float:
        """``TP / (TP + FN)``; 0 when nothing was relevant."""
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    def f1(self) -> float:
        precision, recall = self.precision(), self.recall()
        if precision + recall == 0.0:
            return 0.0
        return 2.0 * precision * recall / (precision + recall)

    @classmethod
    def from_decisions(
        cls, decisions: Sequence[bool], truth: Sequence[bool]
    ) -> "ConfusionCounts":
        """Tally matcher yes/no decisions against ground-truth labels."""
        if len(decisions) != len(truth):
            raise ValueError("decisions and truth must have equal length")
        tp = fp = fn = tn = 0
        for decided, actual in zip(decisions, truth, strict=True):
            if decided and actual:
                tp += 1
            elif decided and not actual:
                fp += 1
            elif not decided and actual:
                fn += 1
            else:
                tn += 1
        return cls(tp=tp, fp=fp, fn=fn, tn=tn)


def ranking_from_scores(scores: Sequence[float]) -> list[int]:
    """Event indices sorted by score descending; ties break by index.

    The tie-break makes evaluation deterministic across runs.
    """
    return sorted(range(len(scores)), key=lambda i: (-scores[i], i))


def interpolated_precision(
    ranking: Sequence[int],
    relevant: frozenset[int] | set[int],
    levels: Sequence[float] = RECALL_LEVELS,
) -> list[float]:
    """Interpolated precision of one ranking at each recall level.

    ``p_interp(r) = max{precision@i : recall@i >= r}`` — the standard
    11-point interpolation. Requires a non-empty relevant set.
    """
    if not relevant:
        raise ValueError("interpolated precision needs a non-empty relevant set")
    total_relevant = len(relevant)
    # (recall, precision) after each rank position where a hit occurs.
    points: list[tuple[float, float]] = []
    hits = 0
    for position, event_index in enumerate(ranking, start=1):
        if event_index in relevant:
            hits += 1
            points.append((hits / total_relevant, hits / position))
    precisions: list[float] = []
    for level in levels:
        candidates = [p for r, p in points if r >= level - 1e-12]
        precisions.append(max(candidates) if candidates else 0.0)
    return precisions


def average_interpolated_precision(
    rankings: Sequence[Sequence[int]],
    relevant_sets: Sequence[frozenset[int] | set[int]],
    levels: Sequence[float] = RECALL_LEVELS,
) -> list[float]:
    """Per-level precision averaged over subscriptions (Section 5.1).

    Subscriptions with empty relevant sets are skipped — recall is
    undefined for them, exactly as in IR evaluation practice.
    """
    if len(rankings) != len(relevant_sets):
        raise ValueError("rankings and relevant_sets must align")
    sums = [0.0] * len(levels)
    used = 0
    for ranking, relevant in zip(rankings, relevant_sets, strict=True):
        if not relevant:
            continue
        used += 1
        for i, precision in enumerate(
            interpolated_precision(ranking, relevant, levels)
        ):
            sums[i] += precision
    if used == 0:
        raise ValueError("no subscription has relevant events")
    return [total / used for total in sums]


def max_f1_from_precisions(
    precisions: Sequence[float], levels: Sequence[float] = RECALL_LEVELS
) -> float:
    """Maximal F1 over the recall levels (the paper's reported number)."""
    best = 0.0
    for precision, recall in zip(precisions, levels, strict=True):
        if precision + recall > 0.0:
            best = max(best, 2.0 * precision * recall / (precision + recall))
    return best


@dataclass(frozen=True)
class EffectivenessResult:
    """Max-F1 plus the averaged precision-recall curve behind it."""

    max_f1: float
    precisions: tuple[float, ...]
    levels: tuple[float, ...] = RECALL_LEVELS


def effectiveness(
    per_subscription_scores: Sequence[Sequence[float]],
    relevant_sets: Sequence[frozenset[int] | set[int]],
) -> EffectivenessResult:
    """Full effectiveness pipeline: scores -> rankings -> 11-point max F1."""
    rankings = [ranking_from_scores(scores) for scores in per_subscription_scores]
    precisions = average_interpolated_precision(rankings, relevant_sets)
    return EffectivenessResult(
        max_f1=max_f1_from_precisions(precisions),
        precisions=tuple(precisions),
    )


@dataclass(frozen=True)
class ThroughputResult:
    """Events/second over a timed processing loop."""

    events: int
    seconds: float

    @property
    def events_per_second(self) -> float:
        return self.events / self.seconds if self.seconds > 0 else float("inf")


def measure_throughput(
    process: Callable[[], int],
) -> ThroughputResult:
    """Time ``process`` (which returns how many events it handled)."""
    start = MONOTONIC_CLOCK.monotonic()
    events = process()
    elapsed = MONOTONIC_CLOCK.monotonic() - start
    return ThroughputResult(events=events, seconds=elapsed)
