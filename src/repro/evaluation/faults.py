"""Fault-injection evaluation: prove the no-loss invariant end to end.

The acceptance bar for the reliability layer
(:mod:`repro.broker.reliability`) is an accounting identity: for every
broker front-end, under any scripted :class:`~repro.broker.faults.FaultPlan`,

    inbox deliveries + dead-letter records == matched deliveries of a
    fault-free serial run

per subscriber — events are delayed, retried, or dead-lettered, never
lost and never duplicated. This module runs that experiment: a
fault-free serial oracle first, then each requested broker kind under
the plan with a fresh :class:`~repro.obs.clock.FakeClock` and
:class:`~repro.broker.faults.FaultInjector`, returning a
machine-readable report. Shared by the stress suite
(``tests/broker/test_fault_stress.py``) and ``repro evaluate --faults``
so tests and CLI can never drift apart on methodology.

When the plan carries a :class:`~repro.core.degrade.DegradedPolicy`,
scorer spikes may legitimately change *what matches* (the engine
downgrades to exact-anchor matching and records it), so the strict
identity against the thematic oracle is only asserted for plans without
a degraded policy; the report then carries the degraded counters
instead.

When the plan carries a :class:`~repro.broker.faults.KillFault`, each
broker runs with a :class:`~repro.broker.durability.DurabilityPolicy`
over a scratch journal directory and is **killed at the plan's WAL
offset**: the first pass subscribes and publishes until the armed
journal raises :class:`~repro.broker.durability.SimulatedCrash`, the
crashed broker is abandoned exactly as a dead process would be, and a
second broker is constructed over the same directory — recovering
registrations, inboxes, and dead letters from disk, re-dispatching
in-flight events (idempotency keys suppress everything that already
reached a terminal state), and resuming the publish stream from the
first sequence the journal never recorded. The same no-loss identity is
then asserted *across the restart*.
"""

from __future__ import annotations

import logging
import tempfile
from collections import Counter
from dataclasses import replace

from repro.broker.broker import ThematicBroker
from repro.broker.config import BrokerConfig
from repro.broker.durability import DurabilityPolicy, SimulatedCrash
from repro.broker.faults import FaultInjector, FaultPlan
from repro.broker.reliability import DeliveryPolicy
from repro.broker.sharded import ShardedBroker
from repro.broker.threaded import ThreadedBroker
from repro.evaluation.brokers import sample_combination
from repro.evaluation.harness import thematic_matcher_factory
from repro.evaluation.workload import Workload
from repro.obs.clock import FakeClock
from repro.obs.flightrec import trigger_dump

__all__ = ["BROKER_KINDS", "run_fault_injection"]

#: Broker front-ends the experiment can exercise, in report order.
BROKER_KINDS = ("serial", "threaded", "sharded")

#: Fault-run default: quick deterministic retries (no jitter), small
#: breaker threshold so plans can actually trip it. Sleeps go through
#: the fake clock, so none of this costs wall time in tests.
DEFAULT_FAULT_POLICY = DeliveryPolicy(
    max_retries=2,
    backoff_base=0.01,
    backoff_cap=0.1,
    jitter=0.0,
    breaker_threshold=0,
)


def _build_broker(kind: str, matcher, config: BrokerConfig, clock):
    if kind == "serial":
        return ThematicBroker(matcher, config, clock=clock)
    if kind == "threaded":
        return ThreadedBroker(matcher, config, clock=clock)
    if kind == "sharded":
        return ShardedBroker(matcher, config, clock=clock)
    raise ValueError(f"unknown broker kind {kind!r} (expected {BROKER_KINDS})")


def _run_one(kind, matcher_factory, subscriptions, events, plan, config, clock):
    """One faulted pass: returns (delivered_per_sub, dead_per_sub, metrics)."""
    injector = FaultInjector(plan, clock=clock)
    matcher = matcher_factory()
    matcher.measure = injector.wrap_measure(matcher.measure)
    broker = _build_broker(kind, matcher, config, clock)
    try:
        handles = [
            broker.subscribe(
                subscription, injector.wrap_callback(subscriber_id)
            )
            for subscriber_id, subscription in enumerate(subscriptions)
        ]
        for event in events:
            broker.publish(event)
        if hasattr(broker, "flush"):
            broker.flush()
    finally:
        if hasattr(broker, "close"):
            broker.close()
    delivered = [len(handle.drain()) for handle in handles]
    dead = Counter(
        record.subscriber_id for record in broker.dead_letters.drain()
    )
    # Flat counter view across layers: broker.* and reliability.* live on
    # the broker registry; the sharded broker keeps engine.* per shard and
    # merges them at read time.
    counters = dict(broker.metrics.registry.snapshot()["counters"])
    if isinstance(broker, ShardedBroker):
        counters.update(broker.metrics_snapshot()["engine_totals"])
    return delivered, [dead.get(i, 0) for i in range(len(handles))], counters


def _run_one_with_kill(
    kind, matcher_factory, subscriptions, events, plan, config, clock, directory
):
    """One kill/restart pass; returns (delivered, dead, metrics, extras).

    Phase 1 runs the broker with an armed journal until the plan's WAL
    offset raises :class:`SimulatedCrash` (or until the run completes
    because the offset was never reached). A crashed broker is
    abandoned, never closed — a dead process flushes nothing.

    Phase 2 builds a fresh broker (fresh matcher, fresh injector with
    reset fault budgets — a restarted process loses its in-memory
    counters too) over the same directory, reattaches the scripted
    callbacks to the recovered handles, re-dispatches in-flight events,
    and resumes publishing at the first sequence the journal never
    recorded. Events are published one flush at a time in both phases,
    so the event index *is* the sequence number on every broker kind —
    which is what makes the resume point exact.
    """
    durable_config = replace(
        config, durability=DurabilityPolicy(directory=directory)
    )
    injector = FaultInjector(plan, clock=clock)
    matcher = matcher_factory()
    matcher.measure = injector.wrap_measure(matcher.measure)
    broker = _build_broker(kind, matcher, durable_config, clock)
    injector.arm(broker.durability)
    crashed = False
    handles = []
    try:
        for subscriber_id, subscription in enumerate(subscriptions):
            handles.append(
                broker.subscribe(
                    subscription, injector.wrap_callback(subscriber_id)
                )
            )
        for event in events:
            broker.publish(event)
            # Flush per event so async brokers process strictly in
            # publish order and the crash lands at a deterministic
            # point in the stream.
            if hasattr(broker, "flush"):
                broker.flush(10.0)
            if broker.durability.crashed:
                break
    except SimulatedCrash:
        pass
    crashed = broker.durability.crashed
    if not crashed:
        # Kill offset beyond this run's journal: a clean, uninterrupted
        # run. Close and account exactly like the no-kill path.
        if hasattr(broker, "close"):
            broker.close()
        delivered = [len(handle.drain()) for handle in handles]
        dead = Counter(
            record.subscriber_id for record in broker.dead_letters.drain()
        )
        counters = dict(broker.metrics.registry.snapshot()["counters"])
        if isinstance(broker, ShardedBroker):
            counters.update(broker.metrics_snapshot()["engine_totals"])
        return (
            delivered,
            [dead.get(i, 0) for i in range(len(handles))],
            counters,
            {"restarted": False},
        )

    # -- phase 2: restart from disk ---------------------------------------
    injector2 = FaultInjector(plan, clock=clock)
    matcher2 = matcher_factory()
    matcher2.measure = injector2.wrap_measure(matcher2.measure)
    broker2 = _build_broker(kind, matcher2, durable_config, clock)
    recovery = broker2.durability.report
    handles2 = []
    for subscriber_id, subscription in enumerate(subscriptions):
        recovered = broker2.recovered.get(subscriber_id)
        if recovered is not None:
            # Callbacks are code, not journal data: reattach the
            # scripted fault wrapper to the restored handle.
            recovered.callback = injector2.wrap_callback(subscriber_id)
            handles2.append(recovered)
        else:
            # The crash predated this registration; ids continue
            # contiguously, so re-subscribing preserves the mapping
            # between fault-plan subscriber indexes and handle ids.
            handles2.append(
                broker2.subscribe(
                    subscription, injector2.wrap_callback(subscriber_id)
                )
            )
    resumed_at = broker2.durability.state.next_sequence
    recover_completed = broker2.recover_pending()
    for event in events[resumed_at:]:
        broker2.publish(event)
        if hasattr(broker2, "flush"):
            broker2.flush(10.0)
    if hasattr(broker2, "close"):
        broker2.close()
    delivered = [len(handle.drain()) for handle in handles2]
    dead = Counter(
        record.subscriber_id for record in broker2.dead_letters.drain()
    )
    counters = dict(broker2.metrics.registry.snapshot()["counters"])
    if isinstance(broker2, ShardedBroker):
        counters.update(broker2.metrics_snapshot()["engine_totals"])
    extras = {
        "restarted": True,
        "resumed_at": resumed_at,
        "recover_completed": recover_completed,
        "recovery": recovery.to_dict() if recovery is not None else None,
    }
    return (
        delivered,
        [dead.get(i, 0) for i in range(len(handles2))],
        counters,
        extras,
    )


def run_fault_injection(
    workload: Workload,
    plan: FaultPlan,
    *,
    brokers: tuple[str, ...] = BROKER_KINDS,
    policy: DeliveryPolicy | None = None,
    shards: int = 2,
    max_batch: int = 8,
    max_events: int | None = None,
    max_subscriptions: int | None = None,
    seed: int = 99,
) -> dict:
    """Run ``plan`` against each broker kind; verify no event is lost.

    Returns a report dict: the fault-free per-subscriber matched counts
    (``baseline``), then per broker kind the delivered/dead-lettered
    accounting, the ``no_loss`` verdict, and the relevant reliability
    and degraded counters. ``report["no_loss"]`` aggregates all kinds.
    """
    combination = sample_combination(workload, seed=seed)
    events = [
        event.with_theme(combination.event_tags)
        for event in workload.events[:max_events]
    ]
    subscriptions = [
        subscription.with_theme(combination.subscription_tags)
        for subscription in workload.subscriptions.approximate[:max_subscriptions]
    ]
    matcher_factory = thematic_matcher_factory(workload)

    # Fault-free serial oracle: matched counts per subscriber.
    oracle = ThematicBroker(matcher_factory())
    oracle_handles = [
        oracle.subscribe(subscription) for subscription in subscriptions
    ]
    for event in events:
        oracle.publish(event)
    baseline = [len(handle.drain()) for handle in oracle_handles]

    # Precedence: explicit argument > policy embedded in the plan >
    # the harness default (plans that need breakers to trip ship their
    # own low-threshold policy).
    if policy is None:
        policy = plan.policy
    delivery_policy = policy if policy is not None else DEFAULT_FAULT_POLICY
    config = BrokerConfig(
        delivery=delivery_policy,
        degraded=plan.degraded,
        shards=shards,
        max_batch=max_batch,
        linger=0.0,
        workers=0,
    )
    strict = plan.degraded is None
    report: dict = {
        "plan": plan.to_dict(),
        "events": len(events),
        "subscriptions": len(subscriptions),
        "baseline": baseline,
        "strict": strict,
        "brokers": {},
    }
    all_no_loss = True
    # Every dead letter here is a scripted fault; logging each one at
    # ERROR would drown the report, so mute the delivery logger for the
    # duration of the experiment.
    reliability_logger = logging.getLogger("repro.broker.reliability")
    previous_level = reliability_logger.level
    reliability_logger.setLevel(logging.CRITICAL)
    try:
        for kind in brokers:
            clock = FakeClock()
            extras: dict = {}
            if plan.kill is not None:
                with tempfile.TemporaryDirectory(
                    prefix=f"repro-wal-{kind}-"
                ) as directory:
                    delivered, dead, metrics, extras = _run_one_with_kill(
                        kind, matcher_factory, subscriptions, events, plan,
                        config, clock, directory,
                    )
            else:
                delivered, dead, metrics = _run_one(
                    kind, matcher_factory, subscriptions, events, plan, config,
                    clock,
                )
            accounted = [d + x for d, x in zip(delivered, dead, strict=True)]
            no_loss = accounted == baseline if strict else True
            all_no_loss = all_no_loss and no_loss
            if strict and not no_loss:
                trigger_dump(
                    "no_loss_violation",
                    f"broker {kind}: accounted {accounted} != "
                    f"baseline {baseline}",
                )
            entry = {
                "delivered": delivered,
                "dead_letters": dead,
                "accounted": accounted,
                "no_loss": no_loss,
                "retries": metrics.get("reliability.retries", 0),
                "dead_lettered": metrics.get("reliability.dead_letters", 0),
                "callback_errors": metrics.get("broker.callback_errors", 0),
            }
            entry.update(extras)
            if plan.kill is not None:
                entry["durability"] = {
                    key.removeprefix("durability."): value
                    for key, value in metrics.items()
                    if isinstance(key, str) and key.startswith("durability.")
                }
            if plan.degraded is not None:
                entry["degraded"] = {
                    key.removeprefix("engine.degraded_"): value
                    for key, value in metrics.items()
                    if isinstance(key, str) and key.startswith("engine.degraded_")
                }
            report["brokers"][kind] = entry
    finally:
        reliability_logger.setLevel(previous_level)
    report["no_loss"] = all_no_loss
    return report
