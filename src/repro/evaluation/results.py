"""Persistence for grid-experiment results.

A full Figure-7/9 grid takes minutes to hours to compute; the numbers
should outlive the process. :func:`save_grid`/:func:`load_grid` write
and read a JSON representation that round-trips everything the
reporting layer consumes (per-sample F1, precision curves, timings,
theme tags), so a saved grid renders identical heatmaps and tables.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.evaluation.harness import CellResult, GridResult, SubExperimentResult
from repro.evaluation.metrics import (
    RECALL_LEVELS,
    EffectivenessResult,
    ThroughputResult,
)
from repro.evaluation.themes import ThemeCombination, ThemeGridConfig
from repro.obs import LatencySummary

__all__ = ["FORMAT_VERSION", "save_grid", "load_grid"]

FORMAT_VERSION = 1


def _sample_to_dict(sample: SubExperimentResult) -> dict:
    data = {
        "event_tags": list(sample.combination.event_tags),
        "subscription_tags": list(sample.combination.subscription_tags),
        "precisions": list(sample.effectiveness.precisions),
        "max_f1": sample.effectiveness.max_f1,
        "events": sample.throughput.events,
        "seconds": sample.throughput.seconds,
    }
    # Observability extras are optional so version-1 files stay readable
    # in both directions.
    if sample.latency is not None:
        data["latency"] = sample.latency.as_dict()
    if sample.cache_hit_rate is not None:
        data["cache_hit_rate"] = sample.cache_hit_rate
    return data


def _latency_from_dict(data: dict | None) -> LatencySummary | None:
    if data is None:
        return None
    return LatencySummary(
        count=data["count"],
        mean=data["mean"],
        p50=data["p50"],
        p90=data["p90"],
        p99=data["p99"],
        max=data["max"],
    )


def _sample_from_dict(data: dict) -> SubExperimentResult:
    return SubExperimentResult(
        combination=ThemeCombination(
            event_tags=tuple(data["event_tags"]),
            subscription_tags=tuple(data["subscription_tags"]),
        ),
        effectiveness=EffectivenessResult(
            max_f1=data["max_f1"],
            precisions=tuple(data["precisions"]),
            levels=RECALL_LEVELS,
        ),
        throughput=ThroughputResult(
            events=data["events"], seconds=data["seconds"]
        ),
        latency=_latency_from_dict(data.get("latency")),
        cache_hit_rate=data.get("cache_hit_rate"),
    )


def save_grid(grid: GridResult, path: str | Path) -> None:
    """Write the grid run to ``path`` (JSON)."""
    payload = {
        "format": "repro-grid",
        "version": FORMAT_VERSION,
        "grid_config": {
            "event_sizes": list(grid.grid_config.event_sizes),
            "subscription_sizes": list(grid.grid_config.subscription_sizes),
            "samples_per_cell": grid.grid_config.samples_per_cell,
            "seed": grid.grid_config.seed,
        },
        "cells": [
            {
                "event_size": cell.event_size,
                "subscription_size": cell.subscription_size,
                "samples": [_sample_to_dict(s) for s in cell.samples],
            }
            for cell in grid.cells.values()
        ],
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_grid(path: str | Path) -> GridResult:
    """Read a grid run saved by :func:`save_grid`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != "repro-grid":
        raise ValueError(f"{path}: not a repro grid result")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: grid format version {payload.get('version')} "
            f"(this build reads {FORMAT_VERSION})"
        )
    config_data = payload["grid_config"]
    grid_config = ThemeGridConfig(
        event_sizes=tuple(config_data["event_sizes"]),
        subscription_sizes=tuple(config_data["subscription_sizes"]),
        samples_per_cell=config_data["samples_per_cell"],
        seed=config_data["seed"],
    )
    cells = {}
    for cell_data in payload["cells"]:
        key = (cell_data["event_size"], cell_data["subscription_size"])
        cells[key] = CellResult(
            event_size=key[0],
            subscription_size=key[1],
            samples=tuple(
                _sample_from_dict(s) for s in cell_data["samples"]
            ),
        )
    return GridResult(cells=cells, grid_config=grid_config)
