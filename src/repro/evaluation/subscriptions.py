"""Evaluation subscription generation (Section 5.2.3, Figure 6).

Exact subscriptions are built "by randomly picking a number of tuples
from the seed events and turning them into exact subscriptions"; the
approximate set then tilde-relaxes them. The paper relaxes *all*
predicates (100% degree of approximation, the worst case); the prior-
work comparison bench uses 50%, so the degree is configurable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.events import Event
from repro.core.subscriptions import Predicate, Subscription

__all__ = ["SubscriptionConfig", "SubscriptionSet", "generate_subscriptions", "partially_relax"]


@dataclass(frozen=True)
class SubscriptionConfig:
    """Count/shape of the generated subscription sets."""

    count: int = 94
    min_predicates: int = 2
    max_predicates: int = 4
    degree_of_approximation: float = 1.0
    seed: int = 23

    def __post_init__(self) -> None:
        if not 0.0 <= self.degree_of_approximation <= 1.0:
            raise ValueError("degree_of_approximation must be in [0, 1]")
        if self.min_predicates < 1 or self.max_predicates < self.min_predicates:
            raise ValueError("bad predicate count bounds")


@dataclass(frozen=True)
class SubscriptionSet:
    """Paired exact/approximate subscriptions plus their seed indices."""

    exact: tuple[Subscription, ...]
    approximate: tuple[Subscription, ...]
    seed_indexes: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.exact)


def partially_relax(
    subscription: Subscription, degree: float, rng: random.Random
) -> Subscription:
    """Relax a ``degree`` proportion of the 2n attribute/value sides.

    Non-string values are never relaxed (they have no semantic
    neighbourhood), matching
    :meth:`repro.core.subscriptions.Subscription.relax`.
    """
    if degree >= 1.0:
        return subscription.relax()
    sides: list[tuple[int, int]] = []  # (predicate index, side 0=attr 1=value)
    for i, predicate in enumerate(subscription.predicates):
        sides.append((i, 0))
        if isinstance(predicate.value, str):
            sides.append((i, 1))
    want = round(degree * 2 * len(subscription.predicates))
    chosen = set(rng.sample(sides, min(want, len(sides))))
    predicates = []
    for i, predicate in enumerate(subscription.predicates):
        predicates.append(
            Predicate(
                predicate.attribute,
                predicate.value,
                approx_attribute=(i, 0) in chosen,
                approx_value=(i, 1) in chosen,
            )
        )
    return Subscription(theme=subscription.theme, predicates=tuple(predicates))


def generate_subscriptions(
    seeds: tuple[Event, ...] | list[Event],
    config: SubscriptionConfig | None = None,
) -> SubscriptionSet:
    """Deterministically derive the evaluation subscription sets."""
    config = config if config is not None else SubscriptionConfig()
    rng = random.Random(config.seed)
    exact: list[Subscription] = []
    approximate: list[Subscription] = []
    seed_indexes: list[int] = []
    seen: set[tuple] = set()
    attempts = config.count * 20
    while len(exact) < config.count and attempts > 0:
        attempts -= 1
        seed_index = rng.randrange(len(seeds))
        seed = seeds[seed_index]
        size = rng.randint(
            config.min_predicates, min(config.max_predicates, len(seed.payload))
        )
        # Subscriptions always filter on the event type when the seed has
        # one — every subscription example in the paper does, and it is
        # what makes type-corrupting distractors discriminate matchers.
        payload = list(seed.payload)
        typed = [av for av in payload if av.attribute == "type"]
        rest = [av for av in payload if av.attribute != "type"]
        chosen = list(typed[:1]) + rng.sample(rest, size - len(typed[:1]))
        predicates = tuple(Predicate(av.attribute, av.value) for av in chosen)
        key = tuple(sorted((p.attribute, str(p.value)) for p in predicates))
        if key in seen:
            continue
        seen.add(key)
        subscription = Subscription(theme=frozenset(), predicates=predicates)
        exact.append(subscription)
        approximate.append(
            partially_relax(subscription, config.degree_of_approximation, rng)
        )
        seed_indexes.append(seed_index)
    return SubscriptionSet(
        exact=tuple(exact),
        approximate=tuple(approximate),
        seed_indexes=tuple(seed_indexes),
    )
