"""Broker-level throughput comparison: serial ingress vs sharded batches.

The matcher benchmarks (:mod:`repro.evaluation.harness`) time the staged
pipeline in isolation; this module times whole broker front-ends — the
same themed fig9-style workload published through
:class:`~repro.broker.threaded.ThreadedBroker` (one worker, one event
per dispatch) and :class:`~repro.broker.sharded.ShardedBroker`
(subscription shards + ingress micro-batching), with delivery parity
checked on every run. Shared by ``repro evaluate --shards`` and
``benchmarks/bench_sharded_throughput.py`` so the CLI and the bench can
never drift apart on methodology.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.broker import ShardedBroker, ThreadedBroker
from repro.broker.config import BrokerConfig
from repro.evaluation.harness import thematic_matcher_factory
from repro.obs.clock import MONOTONIC_CLOCK
from repro.evaluation.themes import ThemeCombination, theme_pool
from repro.evaluation.workload import Workload

__all__ = [
    "BrokerRunResult",
    "compare_broker_throughput",
    "compare_kernel_scaling",
    "run_broker_workload",
    "sample_combination",
]


@dataclass(frozen=True)
class BrokerRunResult:
    """One timed publish-everything-then-flush pass through a broker."""

    name: str
    events: int
    seconds: float
    deliveries: int
    #: Per subscriber (in subscription order): the delivered
    #: ``(sequence, event index, score, alternatives)`` tuples in arrival
    #: order — the full observable delivery stream, used for parity.
    signature: tuple[tuple, ...]
    metrics: dict

    @property
    def events_per_second(self) -> float:
        return self.events / self.seconds if self.seconds > 0 else float("inf")


def sample_combination(
    workload: Workload,
    *,
    event_tags: int = 4,
    subscription_tags: int = 12,
    seed: int = 99,
) -> ThemeCombination:
    """A deterministic fig9-style theme combination (containment holds)."""
    pool = list(theme_pool(workload.thesaurus))
    rng = random.Random(seed)
    subscription = tuple(rng.sample(pool, min(subscription_tags, len(pool))))
    event = tuple(rng.sample(subscription, min(event_tags, len(subscription))))
    return ThemeCombination(event_tags=event, subscription_tags=subscription)


def run_broker_workload(
    name: str,
    make_broker: Callable[[], object],
    subscriptions: Sequence,
    events: Sequence,
) -> BrokerRunResult:
    """Publish ``events`` through a fresh broker and time to full drain.

    The clock covers publish + flush (matching and delivery inclusive),
    the broker lifecycle end to end — exactly what a producer observes.
    """
    broker = make_broker()
    try:
        handles = [broker.subscribe(subscription) for subscription in subscriptions]
        started = MONOTONIC_CLOCK.monotonic()
        for event in events:
            broker.publish(event)
        broker.flush()
        elapsed = MONOTONIC_CLOCK.monotonic() - started
    finally:
        broker.close()
    event_index = {id(event): j for j, event in enumerate(events)}
    signature = tuple(
        tuple(
            (
                delivery.sequence,
                event_index[id(delivery.event)],
                delivery.score,
                len(delivery.result.alternatives),
            )
            for delivery in handle.drain()
        )
        for handle in handles
    )
    return BrokerRunResult(
        name=name,
        events=len(events),
        seconds=elapsed,
        deliveries=sum(len(stream) for stream in signature),
        signature=signature,
        metrics=broker.metrics_snapshot(),
    )


def compare_broker_throughput(
    workload: Workload,
    *,
    combination: ThemeCombination | None = None,
    shards: int = 4,
    strategy: str = "hash",
    max_batch: int = 32,
    linger: float = 0.001,
    repeats: int = 1,
    max_events: int | None = None,
    max_subscriptions: int | None = None,
    seed: int = 99,
    executor: str = "thread",
    vectorized: bool | None = None,
) -> dict:
    """Serial vs sharded broker throughput on one themed workload.

    Each repeat runs both brokers with fresh matchers (cold semantic
    caches — neither side inherits warmth) over the *same* themed event
    and subscription objects, asserts delivery parity — identical
    per-subscriber streams of ``(sequence, event, score, alternatives)``
    — and records events/second. Raises ``AssertionError`` on any parity
    violation; speed without identical deliveries is not a result.

    ``executor`` selects the sharded broker's backend (``"thread"`` or
    ``"process"``). ``vectorized`` routes *both* sides' matchers through
    the numpy kernel; it defaults to whatever the executor requires
    (``"process"`` workers score through the kernel, so the serial
    reference must too — parity demands one float path).
    """
    if vectorized is None:
        vectorized = executor == "process"
    if combination is None:
        combination = sample_combination(workload, seed=seed)
    events = [
        event.with_theme(combination.event_tags)
        for event in workload.events[:max_events]
    ]
    subscriptions = [
        subscription.with_theme(combination.subscription_tags)
        for subscription in workload.subscriptions.approximate[:max_subscriptions]
    ]
    matcher_factory = thematic_matcher_factory(workload, vectorized=vectorized)
    serial_runs: list[BrokerRunResult] = []
    sharded_runs: list[BrokerRunResult] = []
    for _ in range(max(1, repeats)):
        serial = run_broker_workload(
            "threaded",
            lambda: ThreadedBroker(matcher_factory()),
            subscriptions,
            events,
        )
        sharded_config = BrokerConfig(
            shards=shards,
            strategy=strategy,
            max_batch=max_batch,
            linger=linger,
            executor=executor,
        )
        sharded = run_broker_workload(
            f"sharded[{shards}x{max_batch}:{executor}]",
            lambda: ShardedBroker(matcher_factory(), sharded_config),
            subscriptions,
            events,
        )
        assert sharded.signature == serial.signature, (
            f"delivery parity violated: serial delivered {serial.deliveries}, "
            f"sharded delivered {sharded.deliveries}"
        )
        serial_runs.append(serial)
        sharded_runs.append(sharded)

    def _mean(values: list[float]) -> float:
        return sum(values) / len(values)

    serial_eps = [run.events_per_second for run in serial_runs]
    sharded_eps = [run.events_per_second for run in sharded_runs]
    return {
        "combination": {
            "event_tags": list(combination.event_tags),
            "subscription_tags": list(combination.subscription_tags),
        },
        "events": len(events),
        "subscriptions": len(subscriptions),
        "repeats": len(serial_runs),
        "deliveries": serial_runs[0].deliveries,
        "parity": True,
        "serial": {
            "broker": "ThreadedBroker",
            "eps_runs": serial_eps,
            "mean_eps": _mean(serial_eps),
        },
        "sharded": {
            "broker": "ShardedBroker",
            "shards": shards,
            "strategy": strategy,
            "max_batch": max_batch,
            "linger": linger,
            "executor": executor,
            "vectorized": vectorized,
            "eps_runs": sharded_eps,
            "mean_eps": _mean(sharded_eps),
            "batch_size": sharded_runs[-1].metrics["batch_size"],
        },
        "speedup": _mean(sharded_eps) / _mean(serial_eps),
    }


def _signatures_equivalent(
    reference: tuple[tuple, ...],
    other: tuple[tuple, ...],
    *,
    tolerance: float,
) -> bool:
    """Same deliveries, with scores allowed to drift by ``tolerance``.

    Sequence stamps, event identities, per-subscriber order and
    alternative counts must be identical; only the floating score may
    differ (the scalar and kernel paths sum in different orders).
    """
    if len(reference) != len(other):
        return False
    for ref_stream, other_stream in zip(reference, other, strict=True):
        if len(ref_stream) != len(other_stream):
            return False
        for ref, cur in zip(ref_stream, other_stream, strict=True):
            if (ref[0], ref[1], ref[3]) != (cur[0], cur[1], cur[3]):
                return False
            if abs(ref[2] - cur[2]) > tolerance:
                return False
    return True


def compare_kernel_scaling(
    workload: Workload,
    *,
    combination: ThemeCombination | None = None,
    shards: int = 4,
    max_batch: int = 32,
    linger: float = 0.001,
    repeats: int = 1,
    max_events: int | None = None,
    max_subscriptions: int | None = None,
    seed: int = 99,
) -> dict:
    """The kernel-scaling ladder: scalar serial -> kernel -> shard pools.

    Four configurations over one themed fig9-style workload, all timed
    with :func:`run_broker_workload`:

    * ``serial_scalar`` — :class:`ThreadedBroker` with the scalar
      ``SparseVector`` measure: the reference fig9 serial number;
    * ``serial_kernel`` — the same serial broker scoring through the
      vectorized numpy kernel;
    * ``thread_shards`` — sharded broker, thread executor, kernel;
    * ``process_shards`` — sharded broker, spawned worker processes
      attached zero-copy to the columnar space snapshot, kernel.

    Parity is asserted, not reported: the three kernel configurations
    must produce **bit-identical** delivery signatures, and the scalar
    reference must match them within the kernel's documented
    ``PARITY_TOLERANCE`` (same sequences, events and alternative counts;
    scores may differ only by summation order). Shared by
    ``benchmarks/bench_kernel_scaling.py`` and any CLI caller, so the
    gate and the methodology cannot drift apart.
    """
    from repro.semantics.kernel import PARITY_TOLERANCE

    if combination is None:
        combination = sample_combination(workload, seed=seed)
    events = [
        event.with_theme(combination.event_tags)
        for event in workload.events[:max_events]
    ]
    subscriptions = [
        subscription.with_theme(combination.subscription_tags)
        for subscription in workload.subscriptions.approximate[:max_subscriptions]
    ]
    scalar_factory = thematic_matcher_factory(workload, vectorized=False)
    kernel_factory = thematic_matcher_factory(workload, vectorized=True)

    def sharded_config(executor: str) -> BrokerConfig:
        return BrokerConfig(
            shards=shards,
            max_batch=max_batch,
            linger=linger,
            executor=executor,
        )

    configurations: list[tuple[str, Callable[[], object]]] = [
        ("serial_scalar", lambda: ThreadedBroker(scalar_factory())),
        ("serial_kernel", lambda: ThreadedBroker(kernel_factory())),
        (
            "thread_shards",
            lambda: ShardedBroker(kernel_factory(), sharded_config("thread")),
        ),
        (
            "process_shards",
            lambda: ShardedBroker(kernel_factory(), sharded_config("process")),
        ),
    ]
    eps: dict[str, list[float]] = {name: [] for name, _ in configurations}
    deliveries = 0
    for _ in range(max(1, repeats)):
        runs = {
            name: run_broker_workload(name, make, subscriptions, events)
            for name, make in configurations
        }
        reference = runs["serial_kernel"]
        for name in ("thread_shards", "process_shards"):
            assert runs[name].signature == reference.signature, (
                f"kernel delivery parity violated: {name} delivered "
                f"{runs[name].deliveries}, serial kernel delivered "
                f"{reference.deliveries}"
            )
        assert _signatures_equivalent(
            runs["serial_scalar"].signature,
            reference.signature,
            tolerance=PARITY_TOLERANCE,
        ), (
            "scalar/kernel parity violated beyond PARITY_TOLERANCE: "
            f"scalar delivered {runs['serial_scalar'].deliveries}, "
            f"kernel delivered {reference.deliveries}"
        )
        deliveries = reference.deliveries
        for name, _ in configurations:
            eps[name].append(runs[name].events_per_second)

    def _mean(values: list[float]) -> float:
        return sum(values) / len(values)

    scalar_mean = _mean(eps["serial_scalar"])
    result: dict = {
        "combination": {
            "event_tags": list(combination.event_tags),
            "subscription_tags": list(combination.subscription_tags),
        },
        "events": len(events),
        "subscriptions": len(subscriptions),
        "shards": shards,
        "max_batch": max_batch,
        "repeats": max(1, repeats),
        "deliveries": deliveries,
        "parity": True,
        "configs": {
            name: {
                "eps_runs": values,
                "mean_eps": _mean(values),
                "speedup": _mean(values) / scalar_mean,
            }
            for name, values in eps.items()
        },
    }
    return result
