"""Sub-experiment runner and theme-grid harness (Section 5.2.4/5.3).

A *sub-experiment* associates one theme combination with every event and
subscription, scores the full subscription x event matrix with a fresh
matcher, and yields an F1 score (Section 5.1 protocol) and a throughput
measurement — exactly one cell sample of Figures 7–10.

``run_grid`` executes a whole (event-theme-size x subscription-theme-
size) grid with several samples per cell and aggregates means and sample
errors; ``run_baseline`` produces the non-thematic reference number the
figures compare against (Section 5.2.5).
"""

from __future__ import annotations

import statistics
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.baselines.nonthematic import NonThematicMatcher
from repro.core.matcher import ThematicMatcher
from repro.obs.clock import MONOTONIC_CLOCK
from repro.evaluation.metrics import (
    EffectivenessResult,
    ThroughputResult,
    effectiveness,
    measure_throughput,
)
from repro.evaluation.themes import (
    ThemeCombination,
    ThemeGridConfig,
    sample_theme_combinations,
)
from repro.evaluation.workload import Workload
from repro.obs import LatencySummary
from repro.semantics.cache import RelatednessCache
from repro.semantics.measures import CachedMeasure, ThematicMeasure

__all__ = [
    "SubExperimentResult",
    "CellResult",
    "GridResult",
    "thematic_matcher_factory",
    "nonthematic_matcher_factory",
    "matcher_cache_hit_rate",
    "run_sub_experiment",
    "run_baseline",
    "run_grid",
]

#: Builds a fresh matcher per sub-experiment (fresh score caches, so each
#: cell pays its own semantic-computation cost).
MatcherFactory = Callable[[], ThematicMatcher]


@dataclass(frozen=True)
class SubExperimentResult:
    """One cell sample: a theme combination with its measurements.

    Besides the paper's two headline numbers (F1, throughput) the
    harness records per-event latency percentiles and, when the matcher
    exposes a memo, its relatedness-cache hit rate — the observability
    numbers the bench artifacts report.
    """

    combination: ThemeCombination
    effectiveness: EffectivenessResult
    throughput: ThroughputResult
    latency: LatencySummary | None = None
    cache_hit_rate: float | None = None

    @property
    def f1(self) -> float:
        return self.effectiveness.max_f1

    @property
    def events_per_second(self) -> float:
        return self.throughput.events_per_second

    def as_metrics(self) -> dict:
        """JSON-ready metrics block for ``BENCH_*.json`` artifacts."""
        metrics: dict = {
            "f1": self.f1,
            "events_per_second": self.events_per_second,
        }
        if self.latency is not None:
            metrics["latency"] = self.latency.as_dict(unit="ms")
        if self.cache_hit_rate is not None:
            metrics["cache_hit_rate"] = self.cache_hit_rate
        return metrics


@dataclass(frozen=True)
class CellResult:
    """Aggregate of all samples for one grid cell."""

    event_size: int
    subscription_size: int
    samples: tuple[SubExperimentResult, ...]

    @property
    def mean_f1(self) -> float:
        return statistics.fmean(s.f1 for s in self.samples)

    @property
    def f1_error(self) -> float:
        """Sample standard deviation of F1 (the paper's Figure 8 metric)."""
        values = [s.f1 for s in self.samples]
        return statistics.stdev(values) if len(values) > 1 else 0.0

    @property
    def mean_throughput(self) -> float:
        return statistics.fmean(s.events_per_second for s in self.samples)

    @property
    def throughput_error(self) -> float:
        values = [s.events_per_second for s in self.samples]
        return statistics.stdev(values) if len(values) > 1 else 0.0

    def as_metrics(self) -> dict:
        """JSON-ready aggregate for ``BENCH_*.json`` artifacts.

        Latency percentiles average across the cell's samples (each
        sample already summarizes its own event stream); cache hit rate
        averages over the samples that report one.
        """
        metrics: dict = {
            "event_size": self.event_size,
            "subscription_size": self.subscription_size,
            "mean_f1": self.mean_f1,
            "f1_error": self.f1_error,
            "mean_events_per_second": self.mean_throughput,
            "throughput_error": self.throughput_error,
        }
        latencies = [s.latency for s in self.samples if s.latency is not None]
        if latencies:
            metrics["latency"] = {
                "unit": "ms",
                "p50": statistics.fmean(s.p50 for s in latencies) * 1000,
                "p90": statistics.fmean(s.p90 for s in latencies) * 1000,
                "p99": statistics.fmean(s.p99 for s in latencies) * 1000,
            }
        hit_rates = [
            s.cache_hit_rate for s in self.samples if s.cache_hit_rate is not None
        ]
        if hit_rates:
            metrics["cache_hit_rate"] = statistics.fmean(hit_rates)
        return metrics


@dataclass(frozen=True)
class GridResult:
    """A completed grid run: per-cell aggregates plus its configuration."""

    cells: dict[tuple[int, int], CellResult]
    grid_config: ThemeGridConfig

    def cell(self, event_size: int, subscription_size: int) -> CellResult:
        return self.cells[(event_size, subscription_size)]

    def fraction_above(
        self, baseline: float, value: str = "f1"
    ) -> float:
        """Share of cells whose mean exceeds ``baseline`` (Fig 7/9 claim)."""
        if value == "f1":
            means = [c.mean_f1 for c in self.cells.values()]
        elif value == "throughput":
            means = [c.mean_throughput for c in self.cells.values()]
        else:
            raise ValueError(f"unknown value kind {value!r}")
        return sum(1 for m in means if m > baseline) / len(means)

    def best(self, value: str = "f1") -> CellResult:
        key = (
            (lambda c: c.mean_f1) if value == "f1" else (lambda c: c.mean_throughput)
        )
        return max(self.cells.values(), key=key)

    def overall_mean(self, value: str = "f1") -> float:
        if value == "f1":
            return statistics.fmean(c.mean_f1 for c in self.cells.values())
        return statistics.fmean(c.mean_throughput for c in self.cells.values())

    def as_metrics(self) -> dict:
        """JSON-ready grid summary for ``BENCH_*.json`` artifacts."""
        cells = [cell.as_metrics() for _, cell in sorted(self.cells.items())]
        metrics: dict = {
            "overall_mean_f1": self.overall_mean("f1"),
            "overall_mean_events_per_second": self.overall_mean("throughput"),
            "cells": cells,
        }
        cell_p50 = [c["latency"]["p50"] for c in cells if "latency" in c]
        cell_p99 = [c["latency"]["p99"] for c in cells if "latency" in c]
        if cell_p50:
            metrics["latency"] = {
                "unit": "ms",
                "p50": statistics.fmean(cell_p50),
                "p99": statistics.fmean(cell_p99),
            }
        hit_rates = [c["cache_hit_rate"] for c in cells if "cache_hit_rate" in c]
        if hit_rates:
            metrics["cache_hit_rate"] = statistics.fmean(hit_rates)
        return metrics


def thematic_matcher_factory(
    workload: Workload,
    *,
    k: int = 1,
    min_relatedness: float = 0.0,
    vectorized: bool = False,
) -> MatcherFactory:
    """Fresh thematic matcher over the workload's shared space.

    ``vectorized=True`` scores through the numpy relatedness kernel
    (required for ``executor="process"`` brokers; also the fast serial
    path) — see :mod:`repro.semantics.kernel` for the float contract.
    The kernel path skips the :class:`CachedMeasure` memo: the staged
    pipeline's persistent side-score tables already deduplicate lookups
    per theme pair, and the kernel's own row caches cover the rest, so
    the extra dict layer is pure overhead there (scores are identical
    either way — a cache returns the same floats it was fed).
    """

    def factory() -> ThematicMatcher:
        if vectorized:
            measure = ThematicMeasure(workload.space, vectorized=True)
        else:
            measure = CachedMeasure(
                ThematicMeasure(workload.space), RelatednessCache()
            )
        return ThematicMatcher(measure, k=k, min_relatedness=min_relatedness)

    return factory


def nonthematic_matcher_factory(
    workload: Workload, *, k: int = 1, min_relatedness: float = 0.0
) -> MatcherFactory:
    """Fresh non-thematic (prior work [16]) matcher for the baseline."""

    def factory() -> ThematicMatcher:
        return NonThematicMatcher(
            workload.space, k=k, min_relatedness=min_relatedness
        )

    return factory


def score_matrix(
    matcher: ThematicMatcher,
    subscriptions: Sequence,
    events: Sequence,
) -> list[list[float]]:
    """Score every subscription against every event (no timing).

    One staged ``match_batch`` call when the matcher supports it
    (term-pair scoring deduplicates across the whole grid), falling
    back to the per-pair loop for minimal matchers; scores are
    identical either way.
    """
    match_batch = getattr(matcher, "match_batch", None)
    if match_batch is not None:
        return match_batch(subscriptions, events, scores_only=True).score_grid()
    return [[matcher.score(sub, event) for event in events] for sub in subscriptions]


def matcher_cache_hit_rate(matcher: ThematicMatcher) -> float | None:
    """Relatedness-cache hit rate of a matcher's measure, if it has one."""
    cache = getattr(matcher.measure, "cache", None)
    hit_rate = getattr(cache, "hit_rate", None)
    return float(hit_rate) if hit_rate is not None else None


def run_sub_experiment(
    workload: Workload,
    matcher_factory: MatcherFactory,
    combination: ThemeCombination,
) -> SubExperimentResult:
    """One Figure-6 sub-experiment: theme the artifacts, score, measure."""
    matcher = matcher_factory()
    themed_events = [
        event.with_theme(combination.event_tags) for event in workload.events
    ]
    themed_subscriptions = [
        sub.with_theme(combination.subscription_tags)
        for sub in workload.subscriptions.approximate
    ]
    scores: list[list[float]] = [
        [0.0] * len(themed_events) for _ in themed_subscriptions
    ]
    latencies: list[float] = []

    def process() -> int:
        # One staged batch per event (the dispatch-side shape: an event
        # arrives, all subscriptions are matched at once), keeping the
        # per-event latency measurement meaningful. The pipeline's score
        # table persists across events, so dedup compounds over the run.
        for j, event in enumerate(themed_events):
            started = MONOTONIC_CLOCK.monotonic()
            column = matcher.match_batch(
                themed_subscriptions, [event], scores_only=True
            ).scores
            for i in range(len(themed_subscriptions)):
                scores[i][j] = column[i][0]
            latencies.append(MONOTONIC_CLOCK.monotonic() - started)
        return len(themed_events)

    throughput = measure_throughput(process)
    result = effectiveness(scores, workload.ground_truth.relevant_sets)
    return SubExperimentResult(
        combination=combination,
        effectiveness=result,
        throughput=throughput,
        latency=LatencySummary.from_seconds(latencies),
        cache_hit_rate=matcher_cache_hit_rate(matcher),
    )


def run_baseline(
    workload: Workload, matcher_factory: MatcherFactory | None = None
) -> SubExperimentResult:
    """The Section 5.2.5 baseline: non-thematic matcher, empty themes."""
    factory = (
        matcher_factory
        if matcher_factory is not None
        else nonthematic_matcher_factory(workload)
    )
    empty = ThemeCombination(event_tags=(), subscription_tags=())
    return run_sub_experiment(workload, factory, empty)


def run_grid(
    workload: Workload,
    matcher_factory: MatcherFactory | None = None,
    grid_config: ThemeGridConfig | None = None,
    *,
    progress: Callable[[str], None] | None = None,
) -> GridResult:
    """Run every configured cell (Figures 7–10's data collection)."""
    factory = (
        matcher_factory
        if matcher_factory is not None
        else thematic_matcher_factory(workload)
    )
    grid_config = grid_config if grid_config is not None else workload.config.themes
    combinations = sample_theme_combinations(workload.thesaurus, grid_config)
    cells: dict[tuple[int, int], CellResult] = {}
    total = len(combinations)
    for index, (cell_key, cell_combinations) in enumerate(
        sorted(combinations.items())
    ):
        samples = tuple(
            run_sub_experiment(workload, factory, combination)
            for combination in cell_combinations
        )
        cells[cell_key] = CellResult(
            event_size=cell_key[0],
            subscription_size=cell_key[1],
            samples=samples,
        )
        if progress is not None:
            cell = cells[cell_key]
            progress(
                f"[{index + 1}/{total}] cell {cell_key}: "
                f"F1={cell.mean_f1:.2f} eps={cell.mean_throughput:.0f}"
            )
    return GridResult(cells=cells, grid_config=grid_config)
