"""Realistic tagging behavior (the paper's first future-work item).

Section 7: "Future work aims at the study of realistic tagging behavior
of users". Section 5.3.3 contains the hypothesis to test: when no
agreement on tags is possible, "containment and overlap can be assumed
to hold due to the distribution of term usage by humans where some terms
are more probable to be used by both parties".

This module supplies the two ingredients of that study:

* **Zipfian tag selection** — humans reuse popular tags; tags are drawn
  from the top-term pool with probability ``∝ 1/rank^s`` instead of
  uniformly. :func:`expected_overlap` quantifies how much overlap two
  *independent* Zipfian taggers produce naturally — the paper's
  "distribution of term usage" argument made measurable.
* **Controlled containment violation** — :func:`sample_free_combination`
  draws event/subscription theme sets with a target overlap fraction
  instead of the evaluation's strict containment, so the harness can
  chart F1 as the containment assumption erodes
  (``benchmarks/bench_tagging_behavior.py``).

Because these combinations intentionally violate containment, they use
:class:`FreeThemeCombination` — same shape as
:class:`~repro.evaluation.themes.ThemeCombination`, no containment
invariant. The harness only reads ``event_tags``/``subscription_tags``,
so both types work everywhere.
"""

from __future__ import annotations

import random
import statistics
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = [
    "FreeThemeCombination",
    "ZipfTagger",
    "sample_free_combination",
    "expected_overlap",
]


@dataclass(frozen=True)
class FreeThemeCombination:
    """Theme pair without the containment invariant (see module doc)."""

    event_tags: tuple[str, ...]
    subscription_tags: tuple[str, ...]

    def overlap(self) -> float:
        """Jaccard-style overlap: |∩| / min(|A|, |B|); 1.0 if either empty."""
        a, b = set(self.event_tags), set(self.subscription_tags)
        if not a or not b:
            return 1.0
        return len(a & b) / min(len(a), len(b))


class ZipfTagger:
    """Draws tags from a pool with Zipfian popularity.

    The pool order defines popularity rank (rank 1 = most popular);
    ``exponent`` is the Zipf ``s`` (0 = uniform; ~1 = natural language).
    Sampling is without replacement via iterated weighted draws.
    """

    def __init__(self, pool: Sequence[str], *, exponent: float = 1.0):
        if not pool:
            raise ValueError("tag pool must not be empty")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        self.pool = tuple(pool)
        self.exponent = exponent
        self._weights = [
            1.0 / (rank ** exponent) for rank in range(1, len(self.pool) + 1)
        ]

    def sample(self, size: int, rng: random.Random) -> tuple[str, ...]:
        """``size`` distinct tags, popularity-weighted."""
        if size > len(self.pool):
            raise ValueError("cannot sample more tags than the pool holds")
        available = list(range(len(self.pool)))
        weights = list(self._weights)
        chosen: list[str] = []
        for _ in range(size):
            index = rng.choices(range(len(available)), weights=weights, k=1)[0]
            chosen.append(self.pool[available.pop(index)])
            weights.pop(index)
        return tuple(chosen)


def sample_free_combination(
    pool: Sequence[str],
    event_size: int,
    subscription_size: int,
    rng: random.Random,
    *,
    overlap: float = 1.0,
    exponent: float = 0.0,
) -> FreeThemeCombination:
    """Draw a theme pair with a target overlap fraction.

    ``overlap`` is the fraction of the *smaller* set guaranteed to come
    from the larger set; the remainder is drawn from outside it. With
    ``overlap=1.0`` this reproduces the evaluation's containment setting.
    ``exponent`` applies Zipfian popularity to the larger set's draw.
    """
    if not 0.0 <= overlap <= 1.0:
        raise ValueError("overlap must be in [0, 1]")
    tagger = ZipfTagger(pool, exponent=exponent)
    small_size, large_size = sorted((event_size, subscription_size))
    large = tagger.sample(large_size, rng)
    shared_count = round(overlap * small_size)
    shared = tuple(rng.sample(large, shared_count)) if shared_count else ()
    outside_pool = [t for t in pool if t not in large]
    fresh_count = small_size - shared_count
    if fresh_count > len(outside_pool):
        raise ValueError("pool too small for the requested overlap violation")
    fresh = tuple(rng.sample(outside_pool, fresh_count))
    small = shared + fresh
    if event_size <= subscription_size:
        return FreeThemeCombination(event_tags=small, subscription_tags=large)
    return FreeThemeCombination(event_tags=large, subscription_tags=small)


def expected_overlap(
    pool: Sequence[str],
    event_size: int,
    subscription_size: int,
    *,
    exponent: float = 1.0,
    trials: int = 200,
    seed: int = 13,
) -> float:
    """Mean overlap of two *independent* Zipfian taggers (Monte Carlo).

    This is Section 5.3.3's claim quantified: if both parties pick tags
    independently but share the human popularity distribution, how much
    overlap arises without any agreement?
    """
    tagger = ZipfTagger(pool, exponent=exponent)
    rng = random.Random(seed)
    overlaps = []
    for _ in range(trials):
        event_tags = set(tagger.sample(event_size, rng))
        subscription_tags = set(tagger.sample(subscription_size, rng))
        overlaps.append(
            len(event_tags & subscription_tags)
            / min(event_size, subscription_size)
        )
    return statistics.fmean(overlaps)
