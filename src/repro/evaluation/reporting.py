"""Terminal rendering of the evaluation artifacts (Figures 7–10, tables).

The paper's figures are color heatmaps and scatter plots; the benches
render terminal equivalents: an ASCII heatmap with the same axes
(event theme size on x, subscription theme size on y, origin bottom
left, baseline-beating cells marked), value/error tables for the scatter
figures, and aligned paper-vs-measured comparison tables.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.evaluation.harness import GridResult

__all__ = ["format_table", "format_heatmap", "format_error_table", "format_comparison"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Left-aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths, strict=True)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_heatmap(
    grid: GridResult,
    *,
    value: str = "f1",
    baseline: float | None = None,
    cell_format: str = "{:>4.0f}",
    scale: float = 100.0,
) -> str:
    """ASCII rendition of Figure 7 (value="f1") or Figure 9 ("throughput").

    Rows are subscription theme sizes (largest on top so the origin sits
    bottom-left, as in the paper); columns are event theme sizes. Cells
    beating the baseline carry ``*`` — the paper's square-vs-circle
    distinction.
    """
    event_sizes = sorted({key[0] for key in grid.cells})
    subscription_sizes = sorted({key[1] for key in grid.cells})
    lines = []
    header = "sub\\ev |" + "".join(f"{size:>6}" for size in event_sizes)
    lines.append(header)
    lines.append("-" * len(header))
    for subscription_size in reversed(subscription_sizes):
        row = [f"{subscription_size:>6} |"]
        for event_size in event_sizes:
            cell = grid.cells[(event_size, subscription_size)]
            raw = cell.mean_f1 if value == "f1" else cell.mean_throughput
            shown = raw * scale if value == "f1" else raw
            mark = (
                "*"
                if baseline is not None
                and (cell.mean_f1 if value == "f1" else cell.mean_throughput)
                > baseline
                else " "
            )
            row.append(cell_format.format(shown) + mark)
        lines.append("".join(row))
    if baseline is not None:
        shown_baseline = baseline * scale if value == "f1" else baseline
        lines.append(f"(* = above non-thematic baseline {shown_baseline:.0f})")
    return "\n".join(lines)


def format_error_table(grid: GridResult, *, value: str = "f1") -> str:
    """Figure 8/10 as a table: per-cell mean against sample error."""
    rows = []
    for (event_size, subscription_size), cell in sorted(grid.cells.items()):
        if value == "f1":
            mean, error = cell.mean_f1 * 100, cell.f1_error * 100
            rows.append(
                (event_size, subscription_size, f"{mean:.1f}%", f"{error:.1f}%")
            )
        else:
            mean, error = cell.mean_throughput, cell.throughput_error
            rows.append(
                (event_size, subscription_size, f"{mean:.0f}", f"{error:.0f}")
            )
    metric = "F1" if value == "f1" else "events/sec"
    return format_table(
        ("event tags", "sub tags", f"mean {metric}", "sample error"), rows
    )


def format_comparison(
    rows: Sequence[tuple[str, str, str]],
    *,
    title: str = "paper vs measured",
) -> str:
    """Aligned three-column comparison for EXPERIMENTS.md and benches."""
    body = format_table(("metric", "paper", "measured"), rows)
    bar = "=" * len(title)
    return f"{title}\n{bar}\n{body}"
