"""Evaluation framework reproducing Section 5 of the paper (Figure 6)."""

from repro.evaluation.expansion import (
    ExpandedEvent,
    ExpansionConfig,
    expand_event,
    expand_events,
)
from repro.evaluation.brokers import (
    BrokerRunResult,
    compare_broker_throughput,
    compare_kernel_scaling,
    run_broker_workload,
    sample_combination,
)
from repro.evaluation.faults import BROKER_KINDS, run_fault_injection
from repro.evaluation.groundtruth import GroundTruth, build_ground_truth, is_relevant
from repro.evaluation.harness import (
    CellResult,
    GridResult,
    SubExperimentResult,
    matcher_cache_hit_rate,
    nonthematic_matcher_factory,
    run_baseline,
    run_grid,
    run_sub_experiment,
    score_matrix,
    thematic_matcher_factory,
)
from repro.evaluation.metrics import (
    RECALL_LEVELS,
    ConfusionCounts,
    EffectivenessResult,
    ThroughputResult,
    average_interpolated_precision,
    effectiveness,
    interpolated_precision,
    max_f1_from_precisions,
    measure_throughput,
    ranking_from_scores,
)
from repro.evaluation.reporting import (
    format_comparison,
    format_error_table,
    format_heatmap,
    format_table,
)
from repro.evaluation.results import load_grid, save_grid
from repro.evaluation.tagging import (
    FreeThemeCombination,
    ZipfTagger,
    expected_overlap,
    sample_free_combination,
)
from repro.evaluation.subscriptions import (
    SubscriptionConfig,
    SubscriptionSet,
    generate_subscriptions,
    partially_relax,
)
from repro.evaluation.themes import (
    ThemeCombination,
    ThemeGridConfig,
    sample_theme_combinations,
    theme_pool,
)
from repro.evaluation.workload import Workload, WorkloadConfig, build_workload

__all__ = [
    "BROKER_KINDS",
    "BrokerRunResult",
    "run_fault_injection",
    "CellResult",
    "compare_broker_throughput",
    "compare_kernel_scaling",
    "run_broker_workload",
    "sample_combination",
    "ConfusionCounts",
    "EffectivenessResult",
    "ExpandedEvent",
    "ExpansionConfig",
    "FreeThemeCombination",
    "GridResult",
    "ZipfTagger",
    "expected_overlap",
    "sample_free_combination",
    "GroundTruth",
    "RECALL_LEVELS",
    "SubExperimentResult",
    "SubscriptionConfig",
    "SubscriptionSet",
    "ThemeCombination",
    "ThemeGridConfig",
    "ThroughputResult",
    "Workload",
    "WorkloadConfig",
    "average_interpolated_precision",
    "build_ground_truth",
    "build_workload",
    "effectiveness",
    "expand_event",
    "expand_events",
    "format_comparison",
    "format_error_table",
    "format_heatmap",
    "format_table",
    "generate_subscriptions",
    "interpolated_precision",
    "is_relevant",
    "load_grid",
    "save_grid",
    "matcher_cache_hit_rate",
    "max_f1_from_precisions",
    "measure_throughput",
    "nonthematic_matcher_factory",
    "partially_relax",
    "ranking_from_scores",
    "run_baseline",
    "run_grid",
    "run_sub_experiment",
    "sample_theme_combinations",
    "score_matrix",
    "theme_pool",
    "thematic_matcher_factory",
]
