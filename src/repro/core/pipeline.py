"""Staged batch execution of the matching path (the ``match_batch`` engine).

The naive matching loop scores every (subscription, event) pair from
scratch: each pair rebuilds its similarity matrix, each matrix entry
re-normalizes its terms, re-canonicalizes its themes and re-asks the
semantic measure — so a term pair appearing in 50 pairs of a batch is
keyed and looked up 50 times. This module replaces that loop with the
explicit staged pipeline the paper's Section 7 efficiency discussion
points at (and SIENA-style brokers implement for the exact fragment):

1. **Candidates** — cheap loss-free prefiltering: *arity* (an event with
   fewer tuples than the subscription has predicates carries no
   mapping) always applies; *exact anchors* (a non-approximated ``=``
   predicate requires its literal (attribute, value) tuple) apply when
   the caller only needs scores or threshold survivors, because a
   missing anchor proves the pair's score is exactly 0.0.
2. **Collection** — walk the surviving pairs and gather the *unique*
   (term, theme, term, theme) combinations their matrices will need,
   deduplicated across the whole batch against a table that persists
   between batches.
3. **Bulk scoring** — ask the semantic measure once per unique
   combination (theme projections are shared inside the PVSM), apply
   the matcher's calibration, and fill the persistent side-score table.
4. **Assignment** — build each pair's similarity matrix from plain
   table lookups and solve for the best mapping: full
   :func:`~repro.core.mapping.top_k_mappings` when result objects are
   needed, or the :func:`~repro.core.mapping.top_assignment_score`
   fast path when only scores are.

Every stage emits an observability span tagged with the batch size, and
the scoring stage carries the measured dedup ratio.

**Parity guarantee.** The batch path reproduces the per-pair path's
scores bit-for-bit: matrix entries replicate
:func:`~repro.core.similarity.predicate_tuple_score` operation for
operation (identity short-circuits, approximation gating, calibration,
``min_relatedness`` clamps, operator evaluation), side scores come from
the *same* measure instance (so memoized measures keep their exact
semantics), and assignment scoring reuses the per-pair solver. The
hypothesis parity suite in ``tests/core/test_pipeline.py`` asserts
exact equality against the reference per-pair loop.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.api import BatchMatchResult
from repro.core.events import Event
from repro.core.mapping import (
    assignment_costs,
    single_mapping,
    top_assignment,
    top_assignment_prepared,
    top_assignment_score,
    top_k_mappings,
)
from repro.core.matcher import MatchResult
from repro.core.similarity import SimilarityMatrix
from repro.core.subscriptions import Predicate, Subscription
from repro.obs import TRACER
from repro.semantics.pvsm import theme_key
from repro.semantics.tokenize import normalize_term

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.matcher import ThematicMatcher

__all__ = ["BatchStats", "StagedBatchPipeline"]


@dataclass
class BatchStats:
    """What one batch did, stage by stage (attached to the result)."""

    subscriptions: int = 0
    events: int = 0
    pairs: int = 0
    candidates: int = 0
    pruned_arity: int = 0
    pruned_anchor: int = 0
    term_pairs: int = 0
    unique_term_pairs: int = 0

    @property
    def pruned(self) -> int:
        return self.pruned_arity + self.pruned_anchor

    @property
    def dedup_ratio(self) -> float:
        """Share of term-pair lookups served without a measure call."""
        if self.term_pairs == 0:
            return 0.0
        return 1.0 - (self.unique_term_pairs / self.term_pairs)


class _CompiledPredicate:
    """One predicate, pre-normalized for batch matrix construction.

    ``attr_id``/``value_id`` are pipeline-global interned term ids
    (assigned by :meth:`StagedBatchPipeline._compile_subscription`);
    ``value_id`` is ``-1`` for non-string values, so it can never equal
    an event-side id.
    """

    __slots__ = (
        "predicate", "attribute", "attr_norm", "approx_attribute", "operator",
        "value", "value_is_str", "value_norm", "approx_value", "exact_key",
        "attr_id", "value_id",
    )

    def __init__(self, predicate: Predicate):
        self.predicate = predicate
        self.attribute = predicate.attribute
        self.attr_norm = normalize_term(predicate.attribute)
        self.approx_attribute = predicate.approx_attribute
        self.operator = predicate.operator
        self.value = predicate.value
        self.value_is_str = isinstance(predicate.value, str)
        self.value_norm = (
            normalize_term(predicate.value) if self.value_is_str else None
        )
        self.approx_value = predicate.approx_value
        # A non-approximated equality predicate demands its literal
        # (attribute, value) tuple verbatim — the exact anchor.
        if (
            predicate.operator == "="
            and not predicate.approx_attribute
            and not predicate.approx_value
        ):
            self.exact_key = (
                self.attr_norm,
                self.value_norm if self.value_is_str else self.value,
            )
        else:
            self.exact_key = None
        self.attr_id = -1
        self.value_id = -1


class _CompiledSubscription:
    __slots__ = ("subscription", "predicates", "arity", "exact_anchors",
                 "theme", "tkey")

    def __init__(self, subscription: Subscription):
        self.subscription = subscription
        self.predicates = tuple(
            _CompiledPredicate(p) for p in subscription.predicates
        )
        self.arity = len(self.predicates)
        self.exact_anchors = tuple(
            p.exact_key for p in self.predicates if p.exact_key is not None
        )
        self.theme = subscription.theme
        self.tkey = theme_key(subscription.theme)


class _CompiledTuple:
    __slots__ = ("attribute", "attr_norm", "value", "value_is_str", "value_norm")

    def __init__(self, attribute: str, value):
        self.attribute = attribute
        self.attr_norm = normalize_term(attribute)
        self.value = value
        self.value_is_str = isinstance(value, str)
        self.value_norm = normalize_term(value) if self.value_is_str else None


class _CompiledEvent:
    __slots__ = ("event", "tuples", "size", "exact_keys", "theme", "tkey")

    def __init__(self, event: Event):
        self.event = event
        self.tuples = tuple(
            _CompiledTuple(av.attribute, av.value) for av in event.payload
        )
        self.size = len(self.tuples)
        self.exact_keys = frozenset(
            (t.attr_norm, t.value_norm if t.value_is_str else t.value)
            for t in self.tuples
        )
        self.theme = event.theme
        self.tkey = theme_key(event.theme)


class StagedBatchPipeline:
    """Batch matcher over a :class:`ThematicMatcher`-family engine.

    One pipeline belongs to one matcher (its measure, calibration,
    ``min_relatedness`` and ``k`` parametrize every stage). Compiled
    subscriptions and the side-score table persist across batches, so a
    long-lived engine pays normalization and semantic scoring once per
    distinct subscription / term pair — both tables are bounded by the
    registered vocabulary, not by event count.
    """

    def __init__(
        self,
        matcher: "ThematicMatcher",
        *,
        span_tags: dict | None = None,
    ):
        self.matcher = matcher
        # Attributes stamped onto every span this pipeline emits — the
        # sharded broker labels each shard's private pipeline here.
        self._span_tags = dict(span_tags) if span_tags else {}
        # id() keys avoid re-hashing subscriptions per event; the value
        # keeps the subscription alive, so ids cannot be recycled.
        self._compiled_subs: dict[int, _CompiledSubscription] = {}
        # (sub theme key, event theme key) -> {(term_s, term_e): side score}.
        self._tables: dict[
            tuple[tuple[str, ...], tuple[str, ...]], dict[tuple[str, str], float]
        ] = {}
        # Pipeline-global term interner for the vectorized block fill:
        # normalized term -> dense id, plus per-id norm and a
        # representative original spelling (what the measure is asked
        # with — any original works, measures normalize internally,
        # which is the same property the score tables already rely on).
        # Bounded by the vocabulary seen, like the score tables.
        self._interned: dict[str, int] = {}
        self._norm_by_id: list[str] = []
        self._original_by_id: list[str] = []

    # -- compilation -------------------------------------------------------

    def _intern(self, norm: str, original: str) -> int:
        gid = self._interned.get(norm)
        if gid is None:
            gid = len(self._norm_by_id)
            self._interned[norm] = gid
            self._norm_by_id.append(norm)
            self._original_by_id.append(original)
        return gid

    def _compile_subscription(self, subscription: Subscription) -> _CompiledSubscription:
        compiled = self._compiled_subs.get(id(subscription))
        if compiled is None or compiled.subscription is not subscription:
            compiled = _CompiledSubscription(subscription)
            for p in compiled.predicates:
                p.attr_id = self._intern(p.attr_norm, p.attribute)
                if p.value_is_str:
                    p.value_id = self._intern(p.value_norm, p.value)
            self._compiled_subs[id(subscription)] = compiled
        return compiled

    def _table_for(
        self, sub: _CompiledSubscription, event: _CompiledEvent
    ) -> dict[tuple[str, str], float]:
        key = (sub.tkey, event.tkey)
        table = self._tables.get(key)
        if table is None:
            table = self._tables[key] = {}
        return table

    # -- the staged batch --------------------------------------------------

    def run(
        self,
        subscriptions: Sequence[Subscription],
        events: Sequence[Event],
        *,
        scores_only: bool = False,
        prune_zero: bool | None = None,
        deliver_threshold: float | None = None,
    ) -> BatchMatchResult:
        """Match every subscription against every event, staged.

        ``scores_only`` skips result-object construction (the harness's
        grid mode). ``prune_zero`` additionally prunes pairs whose score
        the exact anchors prove to be 0.0 — on by default in scores-only
        mode; full-result callers that must mirror per-pair ``match``
        output exactly (which returns zero-score results, not ``None``)
        leave it off unless, like the engine, they only consume
        above-threshold results.

        ``deliver_threshold`` selects the delivery-gated mode used by the
        micro-batching broker path: every candidate gets its (bit-
        identical) top assignment score, but full ``MatchResult`` objects
        — the expensive top-k enumeration — are materialized only for
        candidates at or above the threshold. Results below it come back
        as ``None``; callers that only deliver threshold survivors (the
        engine's dispatch contract) observe exactly the same outcome as
        the full-result mode. Mutually exclusive with ``scores_only``.
        """
        if deliver_threshold is not None and scores_only:
            raise ValueError("deliver_threshold is incompatible with scores_only")
        if prune_zero is None:
            prune_zero = scores_only
        subscriptions = tuple(subscriptions)
        events = tuple(events)
        stats = BatchStats(
            subscriptions=len(subscriptions),
            events=len(events),
            pairs=len(subscriptions) * len(events),
        )
        with TRACER.span(
            "pipeline.match_batch",
            subscriptions=stats.subscriptions,
            events=stats.events,
            scores_only=scores_only,
            **self._span_tags,
        ):
            scores: list[list[float]] = [
                [0.0] * len(events) for _ in subscriptions
            ]
            results: list[list[MatchResult | None]] | None = (
                None if scores_only
                else [[None] * len(events) for _ in subscriptions]
            )

            candidates = self._stage_candidates(
                subscriptions, events, prune_zero, stats
            )
            if deliver_threshold is not None:
                vectorized = getattr(self.matcher.measure, "vectorized", False)
                if vectorized and len(events) > 1:
                    # With a batch-vectorized measure and a real batch,
                    # the gated mode runs the block fill: vocab-level
                    # collection, one kernel call for the whole batch's
                    # missing term pairs, then numpy gathers building
                    # every candidate matrix at once.
                    self._stage_block_deliverable(
                        candidates, scores, results, deliver_threshold, stats
                    )
                else:
                    if vectorized:
                        # Single-event dispatch: block arithmetic has
                        # nothing to stack, so bulk-score the event's
                        # missing pairs (still one kernel call) and let
                        # fill-on-touch read warm tables.
                        missing = self._stage_collect(candidates, stats)
                        self._stage_score(missing, stats)
                    self._stage_assign_deliverable(
                        candidates, scores, results, deliver_threshold, stats
                    )
            else:
                missing = self._stage_collect(candidates, stats)
                self._stage_score(missing, stats)
                self._stage_assign(candidates, scores, results, stats)

        return BatchMatchResult(
            subscriptions=subscriptions,
            events=events,
            scores=scores,
            results=results,
            stats=stats,
        )

    # -- stage 1: candidate generation ------------------------------------

    def _stage_candidates(
        self,
        subscriptions: tuple[Subscription, ...],
        events: tuple[Event, ...],
        prune_zero: bool,
        stats: BatchStats,
    ) -> list[tuple[int, int, _CompiledSubscription, _CompiledEvent]]:
        with TRACER.span(
            "pipeline.candidates", batch=stats.pairs, **self._span_tags
        ):
            compiled_subs = [self._compile_subscription(s) for s in subscriptions]
            compiled_events = [_CompiledEvent(e) for e in events]
            candidates = []
            for i, sub in enumerate(compiled_subs):
                for j, event in enumerate(compiled_events):
                    if event.size < sub.arity:
                        stats.pruned_arity += 1
                        continue
                    if prune_zero and any(
                        anchor not in event.exact_keys
                        for anchor in sub.exact_anchors
                    ):
                        stats.pruned_anchor += 1
                        continue
                    candidates.append((i, j, sub, event))
            stats.candidates = len(candidates)
        return candidates

    # -- stage 2: term-pair collection with dedup --------------------------

    def _stage_collect(
        self,
        candidates: list[tuple[int, int, _CompiledSubscription, _CompiledEvent]],
        stats: BatchStats,
    ) -> list[tuple[dict, tuple[str, str], str, frozenset, str, frozenset]]:
        """Unique semantic lookups the batch needs but the tables lack."""
        with TRACER.span("pipeline.collect", batch=stats.pairs,
                         candidates=len(candidates), **self._span_tags):
            missing: list[
                tuple[dict, tuple[str, str], str, frozenset, str, frozenset]
            ] = []
            queued: set[tuple[int, tuple[str, str]]] = set()
            for _i, _j, sub, event in candidates:
                table = self._table_for(sub, event)
                table_id = id(table)
                for p in sub.predicates:
                    for t in event.tuples:
                        if p.approx_attribute and p.attr_norm != t.attr_norm:
                            stats.term_pairs += 1
                            key = (p.attr_norm, t.attr_norm)
                            if key not in table and (table_id, key) not in queued:
                                queued.add((table_id, key))
                                missing.append((
                                    table, key,
                                    p.attribute, sub.theme,
                                    t.attribute, event.theme,
                                ))
                        if (
                            p.approx_value
                            and t.value_is_str
                            and p.value_norm != t.value_norm
                        ):
                            stats.term_pairs += 1
                            key = (p.value_norm, t.value_norm)
                            if key not in table and (table_id, key) not in queued:
                                queued.add((table_id, key))
                                missing.append((
                                    table, key,
                                    p.value, sub.theme,
                                    t.value, event.theme,
                                ))
            stats.unique_term_pairs = len(missing)
        return missing

    # -- stage 3: bulk relatedness scoring ---------------------------------

    def _stage_score(
        self,
        missing: list[tuple[dict, tuple[str, str], str, frozenset, str, frozenset]],
        stats: BatchStats,
    ) -> None:
        matcher = self.matcher
        measure = matcher.measure
        calibration = matcher.calibration
        # Bulk-call only measures that declare themselves vectorized:
        # wrappers that intercept score() but proxy other attributes
        # (test doubles, instrumentation) must keep seeing every call.
        score_batch = (
            getattr(measure, "score_batch", None)
            if getattr(measure, "vectorized", False)
            else None
        )
        with TRACER.span(
            "pipeline.score",
            batch=stats.pairs,
            total=stats.term_pairs,
            unique=stats.unique_term_pairs,
            dedup_ratio=round(stats.dedup_ratio, 4),
            **self._span_tags,
        ):
            if score_batch is not None and missing:
                # One bulk call for every unique lookup of the batch.
                # Measures without a vectorized kernel implement this as
                # a per-lookup loop over score(), so values (and their
                # computation order) are identical to the loop below.
                raws = score_batch(
                    [
                        (term_s, theme_s, term_e, theme_e)
                        for _, _, term_s, theme_s, term_e, theme_e in missing
                    ]
                )
                for (table, key, *_), raw in zip(missing, raws, strict=True):
                    table[key] = (
                        calibration.apply(raw)
                        if calibration is not None
                        else raw
                    )
                return
            for table, key, term_s, theme_s, term_e, theme_e in missing:
                raw = measure.score(term_s, theme_s, term_e, theme_e)
                table[key] = (
                    calibration.apply(raw) if calibration is not None else raw
                )

    # -- stage 4: k-best assignment over table-backed matrices -------------

    def _stage_assign(
        self,
        candidates: list[tuple[int, int, _CompiledSubscription, _CompiledEvent]],
        scores: list[list[float]],
        results: list[list[MatchResult | None]] | None,
        stats: BatchStats,
    ) -> None:
        matcher = self.matcher
        min_relatedness = matcher.min_relatedness
        with TRACER.span(
            "pipeline.assign",
            batch=stats.pairs,
            candidates=len(candidates),
            dedup_ratio=round(stats.dedup_ratio, 4),
            **self._span_tags,
        ):
            for i, j, sub, event in candidates:
                table = self._table_for(sub, event)
                matrix = self._pair_matrix(sub, event, table, min_relatedness)
                if results is None:
                    scores[i][j] = top_assignment_score(matrix)
                    continue
                wrapped = SimilarityMatrix(
                    subscription=sub.subscription,
                    event=event.event,
                    scores=matrix,
                )
                mappings = top_k_mappings(wrapped, matcher.k)
                if not mappings:  # pragma: no cover - arity stage prevents it
                    continue
                result = MatchResult(
                    subscription=sub.subscription,
                    event=event.event,
                    matrix=wrapped,
                    mapping=mappings[0],
                    alternatives=tuple(mappings[1:]),
                )
                results[i][j] = result
                scores[i][j] = result.score

    # -- delivery-gated assignment (the micro-batching broker path) --------

    def _stage_assign_deliverable(
        self,
        candidates: list[tuple[int, int, _CompiledSubscription, _CompiledEvent]],
        scores: list[list[float]],
        results: list[list[MatchResult | None]],
        threshold: float,
        stats: BatchStats,
    ) -> None:
        """Collect, score and assign in one pass, materializing survivors.

        Each candidate's matrix is built directly against the persistent
        side-score table, computing (and memoizing) missing term-pair
        scores on first touch — the dedup guarantee of the collect stage
        holds implicitly, because a table entry is only ever computed
        once. Every candidate gets the cheap top assignment score (bit-
        identical to the full path's top-1 score); the expensive mapping
        materialization runs only for candidates whose score clears
        ``threshold``. In top-1 mode (``k == 1``) the gate's own solve
        is reused — :func:`~repro.core.mapping.single_mapping` rebuilds
        the full path's mapping object from the gate's assignment with
        the same arithmetic, so survivors cost one solver call instead
        of two. For ``k > 1`` survivors re-enter
        :func:`~repro.core.mapping.top_k_mappings` unchanged: same
        matrix, same solver, same arithmetic as full mode either way.
        """
        matcher = self.matcher
        min_relatedness = matcher.min_relatedness
        top_1 = matcher.k == 1
        with TRACER.span(
            "pipeline.assign_deliverable",
            batch=stats.pairs,
            candidates=len(candidates),
            threshold=threshold,
            **self._span_tags,
        ):
            for i, j, sub, event in candidates:
                table = self._table_for(sub, event)
                matrix = self._pair_matrix_fill(
                    sub, event, table, min_relatedness, stats
                )
                self._gate_candidate(
                    i, j, sub, event, matrix, scores, results, threshold, top_1
                )

    def _gate_candidate(
        self,
        i: int,
        j: int,
        sub: _CompiledSubscription,
        event: _CompiledEvent,
        matrix: np.ndarray,
        scores: list[list[float]],
        results: list[list[MatchResult | None]],
        threshold: float,
        top_1: bool,
        cost: np.ndarray | None = None,
    ) -> None:
        """Threshold-gate one candidate matrix, materializing survivors.

        ``cost`` optionally carries the candidate's precomputed ``-log``
        assignment cost matrix (the block path derives one for a whole
        sub-group in a single elementwise pass); the solved assignment
        and score are identical either way.
        """
        if top_1:
            if cost is not None:
                solved = top_assignment_prepared(matrix, cost)
            else:
                solved = top_assignment(matrix)
            if solved is None:  # pragma: no cover - arity stage prevents it
                return
            assignment, top = solved
            if top < threshold:
                scores[i][j] = top
                return
            wrapped = SimilarityMatrix(
                subscription=sub.subscription,
                event=event.event,
                scores=matrix,
            )
            mapping = single_mapping(wrapped, assignment)
            result = MatchResult(
                subscription=sub.subscription,
                event=event.event,
                matrix=wrapped,
                mapping=mapping,
            )
            results[i][j] = result
            scores[i][j] = result.score
            return
        top = top_assignment_score(matrix)
        if top < threshold:
            scores[i][j] = top
            return
        wrapped = SimilarityMatrix(
            subscription=sub.subscription,
            event=event.event,
            scores=matrix,
        )
        mappings = top_k_mappings(wrapped, self.matcher.k)
        if not mappings:  # pragma: no cover - arity stage prevents it
            scores[i][j] = top
            return
        result = MatchResult(
            subscription=sub.subscription,
            event=event.event,
            matrix=wrapped,
            mapping=mappings[0],
            alternatives=tuple(mappings[1:]),
        )
        results[i][j] = result
        scores[i][j] = result.score

    # -- vectorized block fill (the kernel-backed deliverable path) ---------

    def _stage_block_deliverable(
        self,
        candidates: list[tuple[int, int, _CompiledSubscription, _CompiledEvent]],
        scores: list[list[float]],
        results: list[list[MatchResult | None]],
        threshold: float,
        stats: BatchStats,
    ) -> None:
        """Deliverable-gated assignment with vectorized matrix fill.

        Semantically identical to :meth:`_stage_assign_deliverable` —
        same table entries, same clamps, same gate, same survivors —
        but the per-cell Python walk is replaced by numpy block
        arithmetic over each (subscription, event-theme) group of the
        batch:

        1. **Vocabulary collection** — each group's events contribute
           their unique attribute/value term norms to per-group
           vocabularies; the (predicate term × vocabulary term)
           rectangle is exactly the set of table lookups the per-cell
           walk would make, so missing entries are found at vocabulary
           granularity instead of cell granularity.
        2. **Bulk scoring** — one :meth:`_stage_score` call (one kernel
           batch) for every missing pair of the whole batch, same as
           full mode.
        3. **Block gather** — per group (sub-grouped by event size so
           events stack), score rectangles are gathered into
           ``(arity, events, size)`` blocks with the short-circuit /
           approximation / ``min_relatedness`` rules applied as masks.
           Cells ruled by extension operators or non-string values
           (never semantic lookups) are patched row-wise in Python via
           the same expressions the scalar walk uses. Each candidate's
           matrix is a contiguous slice of its block, float-identical
           to the fill-on-touch matrix because every cell is the same
           product of the same table floats.
        """
        matcher = self.matcher
        min_rel = matcher.min_relatedness
        top_1 = matcher.k == 1
        norms = self._norm_by_id
        originals = self._original_by_id
        # Group candidates by (subscription, event theme key): one score
        # rectangle per group, one table per group (tables already merge
        # raw themes sharing a canonical key).
        groups: dict[
            tuple[int, tuple[str, ...]],
            tuple[_CompiledSubscription, list[tuple[int, _CompiledEvent]]],
        ] = {}
        for i, j, sub, event in candidates:
            key = (i, event.tkey)
            group = groups.get(key)
            if group is None:
                groups[key] = (sub, [(j, event)])
            else:
                group[1].append((j, event))

        # Per-event interned index arrays, built once per batch and
        # shared by every group the event appears in: global attr ids,
        # global value ids (-2 for non-strings, so they can never equal
        # a predicate id), string mask, and the unique id sets feeding
        # group vocabularies.
        ev_cache: dict[
            int, tuple[np.ndarray, np.ndarray, np.ndarray, set[int], set[int]]
        ] = {}

        def _event_arrays(event: _CompiledEvent):
            data = ev_cache.get(id(event))
            if data is None:
                size = event.size
                a = np.empty(size, dtype=np.int64)
                v = np.full(size, -2, dtype=np.int64)
                s = np.zeros(size, dtype=bool)
                for t_idx, t in enumerate(event.tuples):
                    a[t_idx] = self._intern(t.attr_norm, t.attribute)
                    if t.value_is_str:
                        s[t_idx] = True
                        v[t_idx] = self._intern(t.value_norm, t.value)
                data = (a, v, s, set(a.tolist()), set(v[s].tolist()))
                ev_cache[id(event)] = data
            return data

        missing: list[
            tuple[dict, tuple[str, str], str, frozenset, str, frozenset]
        ] = []
        queued: set[tuple[int, tuple[str, str]]] = set()
        prepared: list[tuple] = []
        with TRACER.span("pipeline.collect", batch=stats.pairs,
                         candidates=len(candidates), **self._span_tags):
            for (i, _tkey), (sub, entries) in groups.items():
                first_event = entries[0][1]
                table = self._table_for(sub, first_event)
                table_id = id(table)
                theme_e = first_event.theme
                preds = sub.predicates
                arity = sub.arity

                # Group vocabularies: the unique interned ids this
                # group's events carry on each side.
                group_attr: set[int] = set()
                group_val: set[int] = set()
                for _j, event in entries:
                    _a, _v, _s, unique_a, unique_v = _event_arrays(event)
                    group_attr |= unique_a
                    group_val |= unique_v

                # Score rectangles over the global id space: row r holds
                # predicate r's table scores against every vocabulary
                # term (masked positions stay 0 and are never read).
                width = len(norms)
                s_attr = np.zeros((arity, max(1, width)))
                s_val = np.zeros((arity, max(1, width)))
                deferred: list[tuple[np.ndarray, int, int, tuple[str, str]]] = []
                for r, p in enumerate(preds):
                    if p.approx_attribute:
                        row = s_attr[r]
                        p_norm = p.attr_norm
                        p_id = p.attr_id
                        # Sorted: the iteration order decides the order
                        # of the `missing` work list (and so the batch
                        # scoring order downstream); a raw set here
                        # would make it interpreter-run-dependent.
                        for gid in sorted(group_attr):
                            if gid == p_id:
                                continue
                            pair = (p_norm, norms[gid])
                            got = table.get(pair)
                            if got is None:
                                if (table_id, pair) not in queued:
                                    queued.add((table_id, pair))
                                    missing.append((
                                        table, pair,
                                        p.attribute, sub.theme,
                                        originals[gid], theme_e,
                                    ))
                                deferred.append((s_attr, r, gid, pair))
                            else:
                                row[gid] = got
                    if p.approx_value:
                        # Validation guarantees approximated values are
                        # string equality predicates.
                        row = s_val[r]
                        p_norm = p.value_norm
                        p_id = p.value_id
                        # Sorted for the same reason as the attribute
                        # side: `missing` order must be run-stable.
                        for gid in sorted(group_val):
                            if gid == p_id:
                                continue
                            pair = (p_norm, norms[gid])
                            got = table.get(pair)
                            if got is None:
                                if (table_id, pair) not in queued:
                                    queued.add((table_id, pair))
                                    missing.append((
                                        table, pair,
                                        p.value, sub.theme,
                                        originals[gid], theme_e,
                                    ))
                                deferred.append((s_val, r, gid, pair))
                            else:
                                row[gid] = got

                # Predicate-side index/mask vectors (interned ids are
                # assigned at compile time).
                p_aid = np.fromiter(
                    (p.attr_id for p in preds), dtype=np.int64, count=arity
                )
                p_vid = np.fromiter(
                    (p.value_id for p in preds), dtype=np.int64, count=arity
                )
                approx_a = np.fromiter(
                    (p.approx_attribute for p in preds), dtype=bool, count=arity
                )
                approx_v = np.fromiter(
                    (p.approx_value for p in preds), dtype=bool, count=arity
                )
                # Rows the block arithmetic fully covers: string
                # equality predicates. Extension operators and
                # non-string values take the Python patch path.
                vec_row = np.fromiter(
                    (p.operator == "=" and p.value_is_str for p in preds),
                    dtype=bool, count=arity,
                )

                # Sub-group by event size so event index arrays stack.
                by_size: dict[int, list[tuple[int, _CompiledEvent]]] = {}
                for j, event in entries:
                    by_size.setdefault(event.size, []).append((j, event))
                subgroups = []
                for _size, evs in by_size.items():
                    ev_attr = np.stack(
                        [ev_cache[id(e)][0] for _, e in evs]
                    )
                    ev_val = np.stack([ev_cache[id(e)][1] for _, e in evs])
                    ev_str = np.stack([ev_cache[id(e)][2] for _, e in evs])
                    eq_a = p_aid[:, None, None] == ev_attr[None, :, :]
                    eq_v = p_vid[:, None, None] == ev_val[None, :, :]
                    # Lookup-walk accounting, identical to the collect
                    # stage's cell counts (approximated sides with
                    # differing norms).
                    stats.term_pairs += int(
                        np.count_nonzero(approx_a[:, None, None] & ~eq_a)
                    )
                    stats.term_pairs += int(np.count_nonzero(
                        approx_v[:, None, None] & ev_str[None, :, :] & ~eq_v
                    ))
                    subgroups.append((evs, ev_val, ev_str, eq_a, eq_v, ev_attr))
                prepared.append((
                    i, sub, s_attr, s_val, deferred, table,
                    approx_a, approx_v, vec_row, subgroups,
                ))
            stats.unique_term_pairs = len(missing)

        self._stage_score(missing, stats)

        with TRACER.span(
            "pipeline.assign_deliverable",
            batch=stats.pairs,
            candidates=len(candidates),
            threshold=threshold,
            **self._span_tags,
        ):
            for (
                i, sub, s_attr, s_val, deferred, table,
                approx_a, approx_v, vec_row, subgroups,
            ) in prepared:
                for target, r, gid, pair in deferred:
                    target[r, gid] = table[pair]
                preds = sub.predicates
                for evs, ev_val, ev_str, eq_a, eq_v, ev_attr in subgroups:
                    gathered_a = s_attr[:, ev_attr]
                    attr_sim = np.where(
                        eq_a, 1.0,
                        np.where(approx_a[:, None, None], gathered_a, 0.0),
                    )
                    attr_ok = (attr_sim >= min_rel) & (attr_sim != 0.0)
                    gathered_v = s_val[:, np.where(ev_val >= 0, ev_val, 0)]
                    value_sim = np.where(
                        eq_v, 1.0,
                        np.where(
                            (vec_row & approx_v)[:, None, None]
                            & ev_str[None, :, :],
                            gathered_v, 0.0,
                        ),
                    )
                    value_ok = value_sim >= min_rel
                    block = np.where(
                        attr_ok & value_ok & vec_row[:, None, None],
                        attr_sim * value_sim, 0.0,
                    )
                    for r in np.nonzero(~vec_row)[0]:
                        p = preds[r]
                        sim_r = attr_sim[r]
                        ok_r = attr_ok[r]
                        for e_idx, (_j, event) in enumerate(evs):
                            brow = block[r, e_idx]
                            for t_idx, t in enumerate(event.tuples):
                                if not ok_r[e_idx, t_idx]:
                                    continue
                                a = sim_r[e_idx, t_idx]
                                if p.operator != "=":
                                    if p.predicate.evaluate_value(t.value):
                                        brow[t_idx] = a
                                    continue
                                v = 1.0 if p.value == t.value else 0.0
                                if v >= min_rel:
                                    brow[t_idx] = a * v
                    if top_1:
                        # One elementwise pass builds every candidate's
                        # -log cost matrix; the gate below just solves.
                        cost_block = assignment_costs(block)
                        for e_idx, (j, event) in enumerate(evs):
                            matrix = np.ascontiguousarray(
                                block[:, e_idx, :]
                            )
                            self._gate_candidate(
                                i, j, sub, event, matrix,
                                scores, results, threshold, top_1,
                                cost=cost_block[:, e_idx, :],
                            )
                    else:
                        for e_idx, (j, event) in enumerate(evs):
                            matrix = np.ascontiguousarray(
                                block[:, e_idx, :]
                            )
                            self._gate_candidate(
                                i, j, sub, event, matrix,
                                scores, results, threshold, top_1,
                            )

    def _pair_matrix_fill(
        self,
        sub: _CompiledSubscription,
        event: _CompiledEvent,
        table: dict[tuple[str, str], float],
        min_relatedness: float,
        stats: BatchStats,
    ) -> np.ndarray:
        """Like :meth:`_pair_matrix`, but computes missing side scores.

        The same float operations in the same order as the collect +
        bulk-scoring stages would produce — each table entry comes from
        one measure call and one calibration application — only the
        *scheduling* differs (on first touch instead of batched), which
        cannot change any value: measure calls are independent and
        deterministic. Stats count each computed entry as one collected
        and one unique term pair (lookups served by the table are free
        in this mode and are not walked, so ``dedup_ratio`` is not
        meaningful here).
        """
        matcher = self.matcher
        measure = matcher.measure
        calibration = matcher.calibration
        matrix = np.zeros((sub.arity, event.size))
        for i, p in enumerate(sub.predicates):
            row = matrix[i]
            for j, t in enumerate(event.tuples):
                # Attribute side (two strings, always).
                if p.attr_norm == t.attr_norm:
                    attr_sim = 1.0
                elif not p.approx_attribute:
                    continue  # attr_sim == 0.0 -> entry stays 0.0
                else:
                    key = (p.attr_norm, t.attr_norm)
                    attr_sim = table.get(key)
                    if attr_sim is None:
                        raw = measure.score(
                            p.attribute, sub.theme, t.attribute, event.theme
                        )
                        attr_sim = (
                            calibration.apply(raw)
                            if calibration is not None else raw
                        )
                        table[key] = attr_sim
                        stats.term_pairs += 1
                        stats.unique_term_pairs += 1
                if attr_sim < min_relatedness or attr_sim == 0.0:
                    continue
                if p.operator != "=":
                    if p.predicate.evaluate_value(t.value):
                        row[j] = attr_sim
                    continue
                # Value side.
                if p.value_is_str and t.value_is_str:
                    if p.value_norm == t.value_norm:
                        value_sim = 1.0
                    elif not p.approx_value:
                        continue
                    else:
                        key = (p.value_norm, t.value_norm)
                        value_sim = table.get(key)
                        if value_sim is None:
                            raw = measure.score(
                                p.value, sub.theme, t.value, event.theme
                            )
                            value_sim = (
                                calibration.apply(raw)
                                if calibration is not None else raw
                            )
                            table[key] = value_sim
                            stats.term_pairs += 1
                            stats.unique_term_pairs += 1
                else:
                    value_sim = 1.0 if p.value == t.value else 0.0
                if value_sim < min_relatedness:
                    continue
                row[j] = attr_sim * value_sim
        return matrix

    def _pair_matrix(
        self,
        sub: _CompiledSubscription,
        event: _CompiledEvent,
        table: dict[tuple[str, str], float],
        min_relatedness: float,
    ) -> np.ndarray:
        """The pair's similarity matrix from precomputed side scores.

        Mirrors :func:`~repro.core.similarity.predicate_tuple_score`
        exactly — same short-circuits, same clamping order, same float
        operations — with every semantic lookup served by the table.
        """
        matrix = np.zeros((sub.arity, event.size))
        for i, p in enumerate(sub.predicates):
            row = matrix[i]
            for j, t in enumerate(event.tuples):
                # Attribute side (two strings, always).
                if p.attr_norm == t.attr_norm:
                    attr_sim = 1.0
                elif not p.approx_attribute:
                    continue  # attr_sim == 0.0 -> entry stays 0.0
                else:
                    attr_sim = table[(p.attr_norm, t.attr_norm)]
                if attr_sim < min_relatedness or attr_sim == 0.0:
                    continue
                if p.operator != "=":
                    if p.predicate.evaluate_value(t.value):
                        row[j] = attr_sim
                    continue
                # Value side.
                if p.value_is_str and t.value_is_str:
                    if p.value_norm == t.value_norm:
                        value_sim = 1.0
                    elif not p.approx_value:
                        continue
                    else:
                        value_sim = table[(p.value_norm, t.value_norm)]
                else:
                    value_sim = 1.0 if p.value == t.value else 0.0
                if value_sim < min_relatedness:
                    continue
                row[j] = attr_sim * value_sim
        return matrix
