"""Staged batch execution of the matching path (the ``match_batch`` engine).

The naive matching loop scores every (subscription, event) pair from
scratch: each pair rebuilds its similarity matrix, each matrix entry
re-normalizes its terms, re-canonicalizes its themes and re-asks the
semantic measure — so a term pair appearing in 50 pairs of a batch is
keyed and looked up 50 times. This module replaces that loop with the
explicit staged pipeline the paper's Section 7 efficiency discussion
points at (and SIENA-style brokers implement for the exact fragment):

1. **Candidates** — cheap loss-free prefiltering: *arity* (an event with
   fewer tuples than the subscription has predicates carries no
   mapping) always applies; *exact anchors* (a non-approximated ``=``
   predicate requires its literal (attribute, value) tuple) apply when
   the caller only needs scores or threshold survivors, because a
   missing anchor proves the pair's score is exactly 0.0.
2. **Collection** — walk the surviving pairs and gather the *unique*
   (term, theme, term, theme) combinations their matrices will need,
   deduplicated across the whole batch against a table that persists
   between batches.
3. **Bulk scoring** — ask the semantic measure once per unique
   combination (theme projections are shared inside the PVSM), apply
   the matcher's calibration, and fill the persistent side-score table.
4. **Assignment** — build each pair's similarity matrix from plain
   table lookups and solve for the best mapping: full
   :func:`~repro.core.mapping.top_k_mappings` when result objects are
   needed, or the :func:`~repro.core.mapping.top_assignment_score`
   fast path when only scores are.

Every stage emits an observability span tagged with the batch size, and
the scoring stage carries the measured dedup ratio.

**Parity guarantee.** The batch path reproduces the per-pair path's
scores bit-for-bit: matrix entries replicate
:func:`~repro.core.similarity.predicate_tuple_score` operation for
operation (identity short-circuits, approximation gating, calibration,
``min_relatedness`` clamps, operator evaluation), side scores come from
the *same* measure instance (so memoized measures keep their exact
semantics), and assignment scoring reuses the per-pair solver. The
hypothesis parity suite in ``tests/core/test_pipeline.py`` asserts
exact equality against the reference per-pair loop.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.api import BatchMatchResult
from repro.core.events import Event
from repro.core.mapping import (
    single_mapping,
    top_assignment,
    top_assignment_score,
    top_k_mappings,
)
from repro.core.matcher import MatchResult
from repro.core.similarity import SimilarityMatrix
from repro.core.subscriptions import Predicate, Subscription
from repro.obs import TRACER
from repro.semantics.pvsm import theme_key
from repro.semantics.tokenize import normalize_term

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.matcher import ThematicMatcher

__all__ = ["BatchStats", "StagedBatchPipeline"]


@dataclass
class BatchStats:
    """What one batch did, stage by stage (attached to the result)."""

    subscriptions: int = 0
    events: int = 0
    pairs: int = 0
    candidates: int = 0
    pruned_arity: int = 0
    pruned_anchor: int = 0
    term_pairs: int = 0
    unique_term_pairs: int = 0

    @property
    def pruned(self) -> int:
        return self.pruned_arity + self.pruned_anchor

    @property
    def dedup_ratio(self) -> float:
        """Share of term-pair lookups served without a measure call."""
        if self.term_pairs == 0:
            return 0.0
        return 1.0 - (self.unique_term_pairs / self.term_pairs)


class _CompiledPredicate:
    """One predicate, pre-normalized for batch matrix construction."""

    __slots__ = (
        "predicate", "attribute", "attr_norm", "approx_attribute", "operator",
        "value", "value_is_str", "value_norm", "approx_value", "exact_key",
    )

    def __init__(self, predicate: Predicate):
        self.predicate = predicate
        self.attribute = predicate.attribute
        self.attr_norm = normalize_term(predicate.attribute)
        self.approx_attribute = predicate.approx_attribute
        self.operator = predicate.operator
        self.value = predicate.value
        self.value_is_str = isinstance(predicate.value, str)
        self.value_norm = (
            normalize_term(predicate.value) if self.value_is_str else None
        )
        self.approx_value = predicate.approx_value
        # A non-approximated equality predicate demands its literal
        # (attribute, value) tuple verbatim — the exact anchor.
        if (
            predicate.operator == "="
            and not predicate.approx_attribute
            and not predicate.approx_value
        ):
            self.exact_key = (
                self.attr_norm,
                self.value_norm if self.value_is_str else self.value,
            )
        else:
            self.exact_key = None


class _CompiledSubscription:
    __slots__ = ("subscription", "predicates", "arity", "exact_anchors",
                 "theme", "tkey")

    def __init__(self, subscription: Subscription):
        self.subscription = subscription
        self.predicates = tuple(
            _CompiledPredicate(p) for p in subscription.predicates
        )
        self.arity = len(self.predicates)
        self.exact_anchors = tuple(
            p.exact_key for p in self.predicates if p.exact_key is not None
        )
        self.theme = subscription.theme
        self.tkey = theme_key(subscription.theme)


class _CompiledTuple:
    __slots__ = ("attribute", "attr_norm", "value", "value_is_str", "value_norm")

    def __init__(self, attribute: str, value):
        self.attribute = attribute
        self.attr_norm = normalize_term(attribute)
        self.value = value
        self.value_is_str = isinstance(value, str)
        self.value_norm = normalize_term(value) if self.value_is_str else None


class _CompiledEvent:
    __slots__ = ("event", "tuples", "size", "exact_keys", "theme", "tkey")

    def __init__(self, event: Event):
        self.event = event
        self.tuples = tuple(
            _CompiledTuple(av.attribute, av.value) for av in event.payload
        )
        self.size = len(self.tuples)
        self.exact_keys = frozenset(
            (t.attr_norm, t.value_norm if t.value_is_str else t.value)
            for t in self.tuples
        )
        self.theme = event.theme
        self.tkey = theme_key(event.theme)


class StagedBatchPipeline:
    """Batch matcher over a :class:`ThematicMatcher`-family engine.

    One pipeline belongs to one matcher (its measure, calibration,
    ``min_relatedness`` and ``k`` parametrize every stage). Compiled
    subscriptions and the side-score table persist across batches, so a
    long-lived engine pays normalization and semantic scoring once per
    distinct subscription / term pair — both tables are bounded by the
    registered vocabulary, not by event count.
    """

    def __init__(
        self,
        matcher: "ThematicMatcher",
        *,
        span_tags: dict | None = None,
    ):
        self.matcher = matcher
        # Attributes stamped onto every span this pipeline emits — the
        # sharded broker labels each shard's private pipeline here.
        self._span_tags = dict(span_tags) if span_tags else {}
        # id() keys avoid re-hashing subscriptions per event; the value
        # keeps the subscription alive, so ids cannot be recycled.
        self._compiled_subs: dict[int, _CompiledSubscription] = {}
        # (sub theme key, event theme key) -> {(term_s, term_e): side score}.
        self._tables: dict[
            tuple[tuple[str, ...], tuple[str, ...]], dict[tuple[str, str], float]
        ] = {}

    # -- compilation -------------------------------------------------------

    def _compile_subscription(self, subscription: Subscription) -> _CompiledSubscription:
        compiled = self._compiled_subs.get(id(subscription))
        if compiled is None or compiled.subscription is not subscription:
            compiled = _CompiledSubscription(subscription)
            self._compiled_subs[id(subscription)] = compiled
        return compiled

    def _table_for(
        self, sub: _CompiledSubscription, event: _CompiledEvent
    ) -> dict[tuple[str, str], float]:
        key = (sub.tkey, event.tkey)
        table = self._tables.get(key)
        if table is None:
            table = self._tables[key] = {}
        return table

    # -- the staged batch --------------------------------------------------

    def run(
        self,
        subscriptions: Sequence[Subscription],
        events: Sequence[Event],
        *,
        scores_only: bool = False,
        prune_zero: bool | None = None,
        deliver_threshold: float | None = None,
    ) -> BatchMatchResult:
        """Match every subscription against every event, staged.

        ``scores_only`` skips result-object construction (the harness's
        grid mode). ``prune_zero`` additionally prunes pairs whose score
        the exact anchors prove to be 0.0 — on by default in scores-only
        mode; full-result callers that must mirror per-pair ``match``
        output exactly (which returns zero-score results, not ``None``)
        leave it off unless, like the engine, they only consume
        above-threshold results.

        ``deliver_threshold`` selects the delivery-gated mode used by the
        micro-batching broker path: every candidate gets its (bit-
        identical) top assignment score, but full ``MatchResult`` objects
        — the expensive top-k enumeration — are materialized only for
        candidates at or above the threshold. Results below it come back
        as ``None``; callers that only deliver threshold survivors (the
        engine's dispatch contract) observe exactly the same outcome as
        the full-result mode. Mutually exclusive with ``scores_only``.
        """
        if deliver_threshold is not None and scores_only:
            raise ValueError("deliver_threshold is incompatible with scores_only")
        if prune_zero is None:
            prune_zero = scores_only
        subscriptions = tuple(subscriptions)
        events = tuple(events)
        stats = BatchStats(
            subscriptions=len(subscriptions),
            events=len(events),
            pairs=len(subscriptions) * len(events),
        )
        with TRACER.span(
            "pipeline.match_batch",
            subscriptions=stats.subscriptions,
            events=stats.events,
            scores_only=scores_only,
            **self._span_tags,
        ):
            scores: list[list[float]] = [
                [0.0] * len(events) for _ in subscriptions
            ]
            results: list[list[MatchResult | None]] | None = (
                None if scores_only
                else [[None] * len(events) for _ in subscriptions]
            )

            candidates = self._stage_candidates(
                subscriptions, events, prune_zero, stats
            )
            if deliver_threshold is not None:
                self._stage_assign_deliverable(
                    candidates, scores, results, deliver_threshold, stats
                )
            else:
                missing = self._stage_collect(candidates, stats)
                self._stage_score(missing, stats)
                self._stage_assign(candidates, scores, results, stats)

        return BatchMatchResult(
            subscriptions=subscriptions,
            events=events,
            scores=scores,
            results=results,
            stats=stats,
        )

    # -- stage 1: candidate generation ------------------------------------

    def _stage_candidates(
        self,
        subscriptions: tuple[Subscription, ...],
        events: tuple[Event, ...],
        prune_zero: bool,
        stats: BatchStats,
    ) -> list[tuple[int, int, _CompiledSubscription, _CompiledEvent]]:
        with TRACER.span(
            "pipeline.candidates", batch=stats.pairs, **self._span_tags
        ):
            compiled_subs = [self._compile_subscription(s) for s in subscriptions]
            compiled_events = [_CompiledEvent(e) for e in events]
            candidates = []
            for i, sub in enumerate(compiled_subs):
                for j, event in enumerate(compiled_events):
                    if event.size < sub.arity:
                        stats.pruned_arity += 1
                        continue
                    if prune_zero and any(
                        anchor not in event.exact_keys
                        for anchor in sub.exact_anchors
                    ):
                        stats.pruned_anchor += 1
                        continue
                    candidates.append((i, j, sub, event))
            stats.candidates = len(candidates)
        return candidates

    # -- stage 2: term-pair collection with dedup --------------------------

    def _stage_collect(
        self,
        candidates: list[tuple[int, int, _CompiledSubscription, _CompiledEvent]],
        stats: BatchStats,
    ) -> list[tuple[dict, tuple[str, str], str, frozenset, str, frozenset]]:
        """Unique semantic lookups the batch needs but the tables lack."""
        with TRACER.span("pipeline.collect", batch=stats.pairs,
                         candidates=len(candidates), **self._span_tags):
            missing: list[
                tuple[dict, tuple[str, str], str, frozenset, str, frozenset]
            ] = []
            queued: set[tuple[int, tuple[str, str]]] = set()
            for _i, _j, sub, event in candidates:
                table = self._table_for(sub, event)
                table_id = id(table)
                for p in sub.predicates:
                    for t in event.tuples:
                        if p.approx_attribute and p.attr_norm != t.attr_norm:
                            stats.term_pairs += 1
                            key = (p.attr_norm, t.attr_norm)
                            if key not in table and (table_id, key) not in queued:
                                queued.add((table_id, key))
                                missing.append((
                                    table, key,
                                    p.attribute, sub.theme,
                                    t.attribute, event.theme,
                                ))
                        if (
                            p.approx_value
                            and t.value_is_str
                            and p.value_norm != t.value_norm
                        ):
                            stats.term_pairs += 1
                            key = (p.value_norm, t.value_norm)
                            if key not in table and (table_id, key) not in queued:
                                queued.add((table_id, key))
                                missing.append((
                                    table, key,
                                    p.value, sub.theme,
                                    t.value, event.theme,
                                ))
            stats.unique_term_pairs = len(missing)
        return missing

    # -- stage 3: bulk relatedness scoring ---------------------------------

    def _stage_score(
        self,
        missing: list[tuple[dict, tuple[str, str], str, frozenset, str, frozenset]],
        stats: BatchStats,
    ) -> None:
        matcher = self.matcher
        measure = matcher.measure
        calibration = matcher.calibration
        with TRACER.span(
            "pipeline.score",
            batch=stats.pairs,
            total=stats.term_pairs,
            unique=stats.unique_term_pairs,
            dedup_ratio=round(stats.dedup_ratio, 4),
            **self._span_tags,
        ):
            for table, key, term_s, theme_s, term_e, theme_e in missing:
                raw = measure.score(term_s, theme_s, term_e, theme_e)
                table[key] = (
                    calibration.apply(raw) if calibration is not None else raw
                )

    # -- stage 4: k-best assignment over table-backed matrices -------------

    def _stage_assign(
        self,
        candidates: list[tuple[int, int, _CompiledSubscription, _CompiledEvent]],
        scores: list[list[float]],
        results: list[list[MatchResult | None]] | None,
        stats: BatchStats,
    ) -> None:
        matcher = self.matcher
        min_relatedness = matcher.min_relatedness
        with TRACER.span(
            "pipeline.assign",
            batch=stats.pairs,
            candidates=len(candidates),
            dedup_ratio=round(stats.dedup_ratio, 4),
            **self._span_tags,
        ):
            for i, j, sub, event in candidates:
                table = self._table_for(sub, event)
                matrix = self._pair_matrix(sub, event, table, min_relatedness)
                if results is None:
                    scores[i][j] = top_assignment_score(matrix)
                    continue
                wrapped = SimilarityMatrix(
                    subscription=sub.subscription,
                    event=event.event,
                    scores=matrix,
                )
                mappings = top_k_mappings(wrapped, matcher.k)
                if not mappings:  # pragma: no cover - arity stage prevents it
                    continue
                result = MatchResult(
                    subscription=sub.subscription,
                    event=event.event,
                    matrix=wrapped,
                    mapping=mappings[0],
                    alternatives=tuple(mappings[1:]),
                )
                results[i][j] = result
                scores[i][j] = result.score

    # -- delivery-gated assignment (the micro-batching broker path) --------

    def _stage_assign_deliverable(
        self,
        candidates: list[tuple[int, int, _CompiledSubscription, _CompiledEvent]],
        scores: list[list[float]],
        results: list[list[MatchResult | None]],
        threshold: float,
        stats: BatchStats,
    ) -> None:
        """Collect, score and assign in one pass, materializing survivors.

        Each candidate's matrix is built directly against the persistent
        side-score table, computing (and memoizing) missing term-pair
        scores on first touch — the dedup guarantee of the collect stage
        holds implicitly, because a table entry is only ever computed
        once. Every candidate gets the cheap top assignment score (bit-
        identical to the full path's top-1 score); the expensive mapping
        materialization runs only for candidates whose score clears
        ``threshold``. In top-1 mode (``k == 1``) the gate's own solve
        is reused — :func:`~repro.core.mapping.single_mapping` rebuilds
        the full path's mapping object from the gate's assignment with
        the same arithmetic, so survivors cost one solver call instead
        of two. For ``k > 1`` survivors re-enter
        :func:`~repro.core.mapping.top_k_mappings` unchanged: same
        matrix, same solver, same arithmetic as full mode either way.
        """
        matcher = self.matcher
        min_relatedness = matcher.min_relatedness
        top_1 = matcher.k == 1
        with TRACER.span(
            "pipeline.assign_deliverable",
            batch=stats.pairs,
            candidates=len(candidates),
            threshold=threshold,
            **self._span_tags,
        ):
            for i, j, sub, event in candidates:
                table = self._table_for(sub, event)
                matrix = self._pair_matrix_fill(
                    sub, event, table, min_relatedness, stats
                )
                if top_1:
                    solved = top_assignment(matrix)
                    if solved is None:  # pragma: no cover - arity stage prevents it
                        continue
                    assignment, top = solved
                    if top < threshold:
                        scores[i][j] = top
                        continue
                    wrapped = SimilarityMatrix(
                        subscription=sub.subscription,
                        event=event.event,
                        scores=matrix,
                    )
                    mapping = single_mapping(wrapped, assignment)
                    result = MatchResult(
                        subscription=sub.subscription,
                        event=event.event,
                        matrix=wrapped,
                        mapping=mapping,
                    )
                    results[i][j] = result
                    scores[i][j] = result.score
                    continue
                top = top_assignment_score(matrix)
                if top < threshold:
                    scores[i][j] = top
                    continue
                wrapped = SimilarityMatrix(
                    subscription=sub.subscription,
                    event=event.event,
                    scores=matrix,
                )
                mappings = top_k_mappings(wrapped, matcher.k)
                if not mappings:  # pragma: no cover - arity stage prevents it
                    scores[i][j] = top
                    continue
                result = MatchResult(
                    subscription=sub.subscription,
                    event=event.event,
                    matrix=wrapped,
                    mapping=mappings[0],
                    alternatives=tuple(mappings[1:]),
                )
                results[i][j] = result
                scores[i][j] = result.score

    def _pair_matrix_fill(
        self,
        sub: _CompiledSubscription,
        event: _CompiledEvent,
        table: dict[tuple[str, str], float],
        min_relatedness: float,
        stats: BatchStats,
    ) -> np.ndarray:
        """Like :meth:`_pair_matrix`, but computes missing side scores.

        The same float operations in the same order as the collect +
        bulk-scoring stages would produce — each table entry comes from
        one measure call and one calibration application — only the
        *scheduling* differs (on first touch instead of batched), which
        cannot change any value: measure calls are independent and
        deterministic. Stats count each computed entry as one collected
        and one unique term pair (lookups served by the table are free
        in this mode and are not walked, so ``dedup_ratio`` is not
        meaningful here).
        """
        matcher = self.matcher
        measure = matcher.measure
        calibration = matcher.calibration
        matrix = np.zeros((sub.arity, event.size))
        for i, p in enumerate(sub.predicates):
            row = matrix[i]
            for j, t in enumerate(event.tuples):
                # Attribute side (two strings, always).
                if p.attr_norm == t.attr_norm:
                    attr_sim = 1.0
                elif not p.approx_attribute:
                    continue  # attr_sim == 0.0 -> entry stays 0.0
                else:
                    key = (p.attr_norm, t.attr_norm)
                    attr_sim = table.get(key)
                    if attr_sim is None:
                        raw = measure.score(
                            p.attribute, sub.theme, t.attribute, event.theme
                        )
                        attr_sim = (
                            calibration.apply(raw)
                            if calibration is not None else raw
                        )
                        table[key] = attr_sim
                        stats.term_pairs += 1
                        stats.unique_term_pairs += 1
                if attr_sim < min_relatedness or attr_sim == 0.0:
                    continue
                if p.operator != "=":
                    if p.predicate.evaluate_value(t.value):
                        row[j] = attr_sim
                    continue
                # Value side.
                if p.value_is_str and t.value_is_str:
                    if p.value_norm == t.value_norm:
                        value_sim = 1.0
                    elif not p.approx_value:
                        continue
                    else:
                        key = (p.value_norm, t.value_norm)
                        value_sim = table.get(key)
                        if value_sim is None:
                            raw = measure.score(
                                p.value, sub.theme, t.value, event.theme
                            )
                            value_sim = (
                                calibration.apply(raw)
                                if calibration is not None else raw
                            )
                            table[key] = value_sim
                            stats.term_pairs += 1
                            stats.unique_term_pairs += 1
                else:
                    value_sim = 1.0 if p.value == t.value else 0.0
                if value_sim < min_relatedness:
                    continue
                row[j] = attr_sim * value_sim
        return matrix

    def _pair_matrix(
        self,
        sub: _CompiledSubscription,
        event: _CompiledEvent,
        table: dict[tuple[str, str], float],
        min_relatedness: float,
    ) -> np.ndarray:
        """The pair's similarity matrix from precomputed side scores.

        Mirrors :func:`~repro.core.similarity.predicate_tuple_score`
        exactly — same short-circuits, same clamping order, same float
        operations — with every semantic lookup served by the table.
        """
        matrix = np.zeros((sub.arity, event.size))
        for i, p in enumerate(sub.predicates):
            row = matrix[i]
            for j, t in enumerate(event.tuples):
                # Attribute side (two strings, always).
                if p.attr_norm == t.attr_norm:
                    attr_sim = 1.0
                elif not p.approx_attribute:
                    continue  # attr_sim == 0.0 -> entry stays 0.0
                else:
                    attr_sim = table[(p.attr_norm, t.attr_norm)]
                if attr_sim < min_relatedness or attr_sim == 0.0:
                    continue
                if p.operator != "=":
                    if p.predicate.evaluate_value(t.value):
                        row[j] = attr_sim
                    continue
                # Value side.
                if p.value_is_str and t.value_is_str:
                    if p.value_norm == t.value_norm:
                        value_sim = 1.0
                    elif not p.approx_value:
                        continue
                    else:
                        value_sim = table[(p.value_norm, t.value_norm)]
                else:
                    value_sim = 1.0 if p.value == t.value else 0.0
                if value_sim < min_relatedness:
                    continue
                row[j] = attr_sim * value_sim
        return matrix
