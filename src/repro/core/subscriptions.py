"""The thematic subscription language model (Section 3.4).

A subscription is a pair ``(th, pr)``: theme tags plus conjunctive
attribute–value predicates. Each predicate is the quadruple
``(a, v, app_a, app_v)``: the tilde ``~`` operator of the language marks
an attribute and/or value as *approximated*, i.e. the matcher may accept
any semantically related term instead of requiring string equality.

The paper keeps operators other than (approximate) equality out of the
language "for the sake of discourse simplicity". As a practical
extension this implementation supports them — ``!=``, ``>``, ``>=``,
``<``, ``<=`` — on the *value* side of a predicate (the attribute side
can still be semantically approximated: ``temperature~ > 30`` reads
"any attribute related to temperature, with a value above 30").
Approximation of a non-equality value is meaningless and rejected.
Richer value logic (ranges, sets, custom code) lives in the CEP layer
(:mod:`repro.cep`).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.core.events import Value
from repro.semantics.tokenize import normalize_term

__all__ = ["OPERATORS", "Predicate", "Subscription"]

#: Supported predicate operators. "=" is the paper's (approximable)
#: equality; the rest are the practical extension (exact-only).
OPERATORS: tuple[str, ...] = ("=", "!=", ">", ">=", "<", "<=")

#: Operators that require a numeric comparison value.
_NUMERIC_OPERATORS = frozenset({">", ">=", "<", "<="})


@dataclass(frozen=True)
class Predicate:
    """One conjunct ``(a, v, app_a, app_v)`` with an optional operator.

    ``approx_attribute`` / ``approx_value`` correspond to ``a~`` and
    ``v~`` in the surface syntax: they permit the matcher to relax that
    side of the equality semantically. ``operator`` defaults to the
    paper's equality; see the module docstring for the extension.
    """

    attribute: str
    value: Value
    approx_attribute: bool = False
    approx_value: bool = False
    operator: str = "="

    def __post_init__(self) -> None:
        if not normalize_term(self.attribute):
            raise ValueError("predicate attribute must be a non-empty term")
        if self.operator not in OPERATORS:
            raise ValueError(f"unknown operator {self.operator!r}")
        if self.approx_value:
            if self.operator != "=":
                raise ValueError(
                    "only equality values can be approximated with ~"
                )
            if not isinstance(self.value, str):
                raise ValueError("only term (string) values can be approximated")
        if self.operator in _NUMERIC_OPERATORS and isinstance(self.value, str):
            raise ValueError(
                f"operator {self.operator!r} needs a numeric comparison value"
            )

    def evaluate_value(self, value: Value) -> bool:
        """Non-semantic value test for the extension operators.

        Only meaningful when ``operator != "="``; the semantic matcher
        calls this for those predicates.
        """
        if self.operator == "!=":
            if isinstance(value, str) and isinstance(self.value, str):
                return normalize_term(value) != normalize_term(self.value)
            return value != self.value
        if isinstance(value, bool) or isinstance(value, str):
            try:
                value = float(value)  # numeric strings compare numerically
            except (TypeError, ValueError):
                return False
        if self.operator == ">":
            return value > self.value
        if self.operator == ">=":
            return value >= self.value
        if self.operator == "<":
            return value < self.value
        if self.operator == "<=":
            return value <= self.value
        raise AssertionError(f"evaluate_value on operator {self.operator!r}")

    def __str__(self) -> str:
        attr = f"{self.attribute}~" if self.approx_attribute else self.attribute
        value = f"{self.value}~" if self.approx_value else f"{self.value}"
        return f"{attr}{self.operator} {value}"


@dataclass(frozen=True)
class Subscription:
    """An immutable thematic subscription ``(theme, predicates)``."""

    theme: frozenset[str]
    predicates: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if not self.predicates:
            raise ValueError("a subscription needs at least one predicate")
        seen: set[str] = set()
        for predicate in self.predicates:
            key = normalize_term(predicate.attribute)
            if key in seen:
                raise ValueError(
                    f"duplicate predicate attribute {predicate.attribute!r}"
                )
            seen.add(key)

    @classmethod
    def create(
        cls,
        theme: Iterable[str] = (),
        predicates: Iterable[Predicate] = (),
        *,
        exact: Mapping[str, Value] | None = None,
        approximate: Mapping[str, str] | None = None,
    ) -> "Subscription":
        """Build a subscription from predicate objects and/or shorthands.

        ``exact`` entries become plain equality predicates; ``approximate``
        entries become fully relaxed ones (``a~ = v~``), the paper's 100%
        degree of approximation.
        """
        preds = list(predicates)
        for attr, value in (exact or {}).items():
            preds.append(Predicate(attr, value))
        for attr, value in (approximate or {}).items():
            preds.append(
                Predicate(attr, value, approx_attribute=True, approx_value=True)
            )
        return cls(theme=frozenset(theme), predicates=tuple(preds))

    # -- properties ----------------------------------------------------------

    def degree_of_approximation(self) -> float:
        """Proportion of relaxed attributes and values in ``[0, 1]``.

        An exact subscription has degree 0; the evaluation's fully tilded
        subscriptions have degree 1 (Section 3.4).
        """
        total = 2 * len(self.predicates)
        relaxed = sum(
            int(p.approx_attribute) + int(p.approx_value) for p in self.predicates
        )
        return relaxed / total

    def relax(self) -> "Subscription":
        """Fully approximated copy: every term gets the ``~`` operator.

        Non-string values stay exact (numbers have no semantic
        neighbourhood). This is the transformation the evaluation applies
        to exact subscriptions (Section 5.2.3).
        """
        return Subscription(
            theme=self.theme,
            predicates=tuple(
                Predicate(
                    p.attribute,
                    p.value,
                    approx_attribute=True,
                    approx_value=isinstance(p.value, str) and p.operator == "=",
                    operator=p.operator,
                )
                for p in self.predicates
            ),
        )

    def terms(self) -> tuple[str, ...]:
        """Every term in the predicates (attributes + str values)."""
        out: list[str] = []
        for p in self.predicates:
            out.append(p.attribute)
            if isinstance(p.value, str):
                out.append(p.value)
        return tuple(out)

    def with_theme(self, theme: Iterable[str]) -> "Subscription":
        return Subscription(theme=frozenset(theme), predicates=self.predicates)

    def __len__(self) -> int:
        return len(self.predicates)

    def __str__(self) -> str:
        tags = ", ".join(sorted(self.theme))
        preds = ", ".join(str(p) for p in self.predicates)
        return f"({{{tags}}}, {{{preds}}})"
