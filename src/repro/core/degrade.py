"""Degraded matching mode: fall back to exact-anchor matching under load.

The thematic matcher's semantic backend (PVSM projections, relatedness
scoring) is the expensive part of the pipeline. Internet-scale
approximate pub/sub systems (S-ToPSS, "I know what you mean") stress
that the approximate layer must *degrade gracefully* rather than fail
closed when the semantic backend is slow or unhealthy: better to keep
delivering the exact fragment of the workload late-and-complete than to
wedge the broker behind a stalled scorer.

:class:`DegradedMode` implements that policy for
:class:`~repro.core.engine.ThematicEventEngine`. The engine times every
full ``match_batch`` through an injected clock and reports the elapsed
time here; when a batch exceeds the configured latency budget for
``trip_after`` consecutive batches (or the backend is marked unhealthy
explicitly, e.g. by a cache health check), the controller trips and the
engine routes subsequent batches through an **exact-anchor fallback** —
the same staged pipeline over an
:class:`~repro.semantics.measures.ExactMeasure`, where only literal
(normalized) term matches score. Approximate semantics are suspended,
never the delivery of exactly-matching events.

Recovery is probe-based: after ``cooldown`` seconds in degraded mode the
next batch runs the full thematic path as a probe; a within-budget probe
closes the loop, an over-budget probe re-trips. Every transition is
recorded as a :class:`DowngradeEvent` and counted in the engine's
metrics registry (``engine.degraded_*``), so a downgrade is always
observable, never silent.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass

from repro.obs import MetricsRegistry
from repro.obs.clock import MONOTONIC_CLOCK, Clock
from repro.obs.flightrec import trigger_dump

__all__ = ["DegradedMode", "DegradedPolicy", "DowngradeEvent"]

logger = logging.getLogger(__name__)

#: Controller states.
HEALTHY = "healthy"
DEGRADED = "degraded"


@dataclass(frozen=True)
class DegradedPolicy:
    """When to abandon semantic scoring and how eagerly to come back.

    Parameters
    ----------
    latency_budget:
        Maximum acceptable duration (seconds) of one full thematic
        ``match_batch`` call. Budgets are per batch, so size them for
        the broker's ``max_batch`` (micro-batches are bounded).
    cooldown:
        Seconds to stay degraded before probing the full path again.
    trip_after:
        Consecutive over-budget batches required to trip. 1 trips on
        the first slow batch; higher values ride out isolated spikes.
    """

    latency_budget: float
    cooldown: float = 1.0
    trip_after: int = 1

    def __post_init__(self) -> None:
        if self.latency_budget <= 0:
            raise ValueError("latency_budget must be positive")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if self.trip_after < 1:
            raise ValueError("trip_after must be >= 1")


@dataclass(frozen=True)
class DowngradeEvent:
    """One recorded mode transition (times are clock readings)."""

    kind: str  # "trip" | "recover" | "mark_unhealthy" | "mark_healthy"
    reason: str
    at: float


class DegradedMode:
    """Trip/probe/recover state machine guarding the thematic path.

    Thread-safe: the sharded broker may run one engine's batches from a
    pool worker while another thread reads health state.
    """

    def __init__(
        self,
        policy: DegradedPolicy,
        *,
        clock: Clock | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.policy = policy
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        registry = registry if registry is not None else MetricsRegistry()
        self._trips = registry.counter("engine.degraded_trips")
        self._recoveries = registry.counter("engine.degraded_recoveries")
        self._fallback_batches = registry.counter("engine.degraded_batches")
        self._fallback_matches = registry.counter("engine.degraded_matches")
        self._active = registry.gauge("engine.degraded_active")
        self._lock = threading.Lock()
        self._state = HEALTHY
        self._over_budget = 0
        self._tripped_at = 0.0
        self._probing = False
        self._manual = False
        self.events: list[DowngradeEvent] = []

    # -- queries -----------------------------------------------------------

    @property
    def degraded(self) -> bool:
        with self._lock:
            return self._state == DEGRADED or self._manual

    def use_fallback(self) -> bool:
        """Decide the mode of the next batch (and arm probes).

        Returns True when the batch should run the exact-anchor
        fallback. While degraded, one batch per elapsed ``cooldown``
        runs the full path as a recovery probe (returns False with the
        probe armed; :meth:`observe` settles it).
        """
        with self._lock:
            if self._manual:
                return True
            if self._state != DEGRADED:
                return False
            now = self.clock.monotonic()
            if now - self._tripped_at >= self.policy.cooldown:
                self._probing = True
                return False
            return True

    # -- reports from the engine -------------------------------------------

    def note_fallback_batch(self) -> None:
        """Count one batch served by the exact-anchor fallback."""
        self._fallback_batches.inc()

    def note_fallback_match(self) -> None:
        """Count one single-pair match served by the exact-anchor fallback.

        The replay/ad-hoc path (``ThematicEventEngine.match_one``) is
        accounted separately from batches: its durations are never fed
        to :meth:`observe`, because the latency budget is sized per
        batch and a cheap single pair would dilute the over-budget
        streak (and recover the controller spuriously as a probe).
        """
        self._fallback_matches.inc()

    def observe(self, elapsed: float) -> None:
        """Feed the duration of one *full* (thematic) batch."""
        tripped: str | None = None
        with self._lock:
            over = elapsed > self.policy.latency_budget
            probing, self._probing = self._probing, False
            if over:
                self._over_budget += 1
                if probing or self._over_budget >= self.policy.trip_after:
                    tripped = (
                        f"batch took {elapsed:.6f}s "
                        f"> budget {self.policy.latency_budget:.6f}s"
                        + (" (probe)" if probing else "")
                    )
                    self._trip(tripped)
            else:
                self._over_budget = 0
                if self._state == DEGRADED:
                    self._recover(f"probe within budget ({elapsed:.6f}s)")
        if tripped is not None:
            # With the lock released: the dump takes its own lock and
            # does file I/O; nesting it inside ours would let a slow disk
            # block every thread feeding batch timings.
            trigger_dump("degraded_mode_trip", tripped)

    # -- manual health overrides -------------------------------------------

    def mark_unhealthy(self, reason: str = "backend marked unhealthy") -> None:
        """Force degraded mode until :meth:`mark_healthy` (no auto-probe)."""
        transitioned = False
        with self._lock:
            if not self._manual:
                self._manual = True
                transitioned = True
                self._active.set(1.0)
                self._record("mark_unhealthy", reason)
                logger.warning("matching degraded (manual): %s", reason)
        if transitioned:
            trigger_dump("degraded_mode_trip", reason)

    def mark_healthy(self, reason: str = "backend marked healthy") -> None:
        with self._lock:
            if self._manual:
                self._manual = False
                self._record("mark_healthy", reason)
                if self._state != DEGRADED:
                    self._active.set(0.0)

    # -- internals (call with the lock held) -------------------------------

    def _trip(self, reason: str) -> None:
        self._tripped_at = self.clock.monotonic()
        self._over_budget = 0
        if self._state != DEGRADED:
            self._state = DEGRADED
            self._trips.inc()
            self._active.set(1.0)
            self._record("trip", reason)
            logger.warning(
                "matching degraded to exact-anchor fallback: %s", reason
            )
        else:
            # A failed probe: stay degraded, restart the cooldown.
            self._trips.inc()
            self._record("trip", reason)

    def _recover(self, reason: str) -> None:
        self._state = HEALTHY
        self._over_budget = 0
        self._recoveries.inc()
        if not self._manual:
            self._active.set(0.0)
        self._record("recover", reason)
        logger.info("matching recovered to full thematic path: %s", reason)

    def _record(self, kind: str, reason: str) -> None:
        self.events.append(
            DowngradeEvent(kind=kind, reason=reason, at=self.clock.monotonic())
        )
