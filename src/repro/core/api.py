"""The unified matching contract: one protocol for every Table-1 approach.

Historically the four comparison systems exposed three incompatible
interfaces (``ThematicMatcher.match -> MatchResult | None``,
``ExactMatcher``/``RewritingMatcher`` with boolean ``matches``/binary
``score`` only, and no batch entry point anywhere), so every consumer —
engine, broker, harness, CLI — special-cased them. This module defines
the single contract they all implement now:

* :class:`MatchEngine` — the protocol: per-pair ``match`` / ``matches``
  / ``score``, a ``threshold``, and the staged batch entry point
  ``match_batch(subscriptions, events)``;
* :class:`BatchMatchResult` — the uniform result of a batch: an
  ``S x E`` score grid (bit-identical to what per-pair ``score`` calls
  would produce) plus, outside scores-only mode, the full per-pair
  :class:`~repro.core.matcher.MatchResult` objects;
* :func:`pairwise_match_batch` — the reference batch implementation
  (a per-pair loop) that any engine can fall back on, and that the
  parity tests compare the staged pipeline against.

Semantics that make the four approaches interchangeable:

* ``score`` is a match strength in ``[0, 1]``; boolean approaches
  (exact, rewriting) report 1.0/0.0.
* ``match`` returns ``None`` when the engine has *no result to
  explain* — for the probabilistic matchers that is only the no-mapping
  case (event smaller than the subscription); the boolean engines also
  return ``None`` for plain non-matches, since they have no partial
  scores to report. In every case ``match() is None`` implies
  ``score() == 0.0``.
* ``match_batch`` must agree with the per-pair path: grid entry
  ``(i, j)`` equals ``score(subscriptions[i], events[j])`` exactly.
  Implementations may accept extra keyword arguments (``scores_only``,
  ``prune_zero``) — all in-tree engines do — but must work when called
  with the two positional arguments alone.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.core.events import Event
from repro.core.matcher import MatchResult
from repro.core.subscriptions import Subscription

__all__ = ["MatchEngine", "BatchMatchResult", "pairwise_match_batch"]


@dataclass
class BatchMatchResult:
    """Outcome of matching ``S`` subscriptions against ``E`` events.

    ``scores[i][j]`` is the match strength of ``subscriptions[i]``
    against ``events[j]`` — always populated, and exactly equal to what
    the per-pair ``score`` path returns for that pair.

    ``results[i][j]`` carries the full :class:`MatchResult` when the
    batch ran in full-result mode, and is ``None`` where the engine has
    no result object for the pair: scores-only batches, pairs with no
    possible mapping, pairs a loss-free prefilter proved unmatchable
    (their score is exactly 0.0), and non-matches of boolean engines.
    """

    subscriptions: tuple[Subscription, ...]
    events: tuple[Event, ...]
    scores: list[list[float]]
    results: list[list[MatchResult | None]] | None = None
    #: Optional execution detail (e.g. the staged pipeline's
    #: :class:`~repro.core.pipeline.BatchStats`); engines that have
    #: nothing to report leave it ``None``.
    stats: object | None = None

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self.subscriptions), len(self.events))

    def score(self, i: int, j: int) -> float:
        return self.scores[i][j]

    def result(self, i: int, j: int) -> MatchResult | None:
        """Full result for one pair; ``None`` in scores-only mode."""
        if self.results is None:
            return None
        return self.results[i][j]

    def matched(self, threshold: float) -> Iterator[tuple[int, int, MatchResult]]:
        """Pairs whose score clears ``threshold``, subscription-major.

        Only available on full-result batches (results attached);
        scores-only batches raise, because there is nothing to deliver.
        """
        if self.results is None:
            raise ValueError("matched() needs a full-result batch")
        for i, row in enumerate(self.results):
            for j, result in enumerate(row):
                if result is not None and result.is_match(threshold):
                    yield (i, j, result)

    def score_grid(self) -> list[list[float]]:
        """Copy of the score grid (rows are subscriptions)."""
        return [list(row) for row in self.scores]


@runtime_checkable
class MatchEngine(Protocol):
    """The one matching contract all Table-1 approaches implement.

    ``threshold`` is the engine's boolean decision point: ``matches``
    says yes when ``score >= threshold``. Probabilistic engines use a
    calibrated 0.5 by default; boolean engines score 1.0/0.0 so any
    threshold in ``(0, 1]`` behaves identically.
    """

    threshold: float

    def match(
        self, subscription: Subscription, event: Event
    ) -> MatchResult | None:
        """Full per-pair outcome, or ``None`` (see module docstring)."""
        ...

    def matches(self, subscription: Subscription, event: Event) -> bool:
        """Boolean decision at this engine's threshold."""
        ...

    def score(self, subscription: Subscription, event: Event) -> float:
        """Match strength in ``[0, 1]``; 0 when there is no match."""
        ...

    def match_batch(
        self,
        subscriptions: Sequence[Subscription],
        events: Sequence[Event],
    ) -> BatchMatchResult:
        """Match every subscription against every event in one call."""
        ...


def pairwise_match_batch(
    engine: MatchEngine,
    subscriptions: Sequence[Subscription],
    events: Sequence[Event],
    *,
    scores_only: bool = False,
) -> BatchMatchResult:
    """Reference ``match_batch``: the naive per-pair loop.

    This is the behaviour every staged implementation must reproduce
    bit-for-bit on the score grid; the parity tests run both and
    compare. Engines with no batch-friendly structure can simply
    delegate to it.
    """
    subscriptions = tuple(subscriptions)
    events = tuple(events)
    if scores_only:
        return BatchMatchResult(
            subscriptions=subscriptions,
            events=events,
            scores=[
                [engine.score(sub, event) for event in events]
                for sub in subscriptions
            ],
        )
    results = [
        [engine.match(sub, event) for event in events] for sub in subscriptions
    ]
    scores = [
        [result.score if result is not None else 0.0 for result in row]
        for row in results
    ]
    return BatchMatchResult(
        subscriptions=subscriptions,
        events=events,
        scores=scores,
        results=results,
    )
