"""The thematic event model (Section 3.3).

An event is a pair ``(th, av)``: a set of theme tags ``th ⊆ TH`` and a
set of attribute–value tuples ``av ⊆ AV`` in which no two tuples share
an attribute. Theme tags are free-form single- or multi-word terms.

Values are usually terms (strings) — that is what the semantic measure
operates on — but numeric values are allowed and compared by equality
(and by the CEP layer's numeric filters).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.semantics.tokenize import normalize_term

__all__ = ["Value", "AttributeValue", "Event"]

#: Event values: terms, or plain numbers for quantitative tuples.
Value = str | int | float


@dataclass(frozen=True)
class AttributeValue:
    """One event tuple ``(a, v)``."""

    attribute: str
    value: Value

    def __post_init__(self) -> None:
        if not normalize_term(self.attribute):
            raise ValueError("attribute must be a non-empty term")

    def __str__(self) -> str:
        return f"{self.attribute}: {self.value}"


@dataclass(frozen=True)
class Event:
    """An immutable thematic event ``(theme, payload)``.

    ``payload`` preserves tuple order (events print the way they were
    authored) while enforcing the no-duplicate-attribute rule of the
    model; attribute identity is normalized (case / whitespace).
    """

    theme: frozenset[str]
    payload: tuple[AttributeValue, ...]
    _by_attribute: dict[str, AttributeValue] = field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        by_attribute: dict[str, AttributeValue] = {}
        for av in self.payload:
            key = normalize_term(av.attribute)
            if key in by_attribute:
                raise ValueError(f"duplicate attribute {av.attribute!r} in event")
            by_attribute[key] = av
        object.__setattr__(self, "_by_attribute", by_attribute)

    @classmethod
    def create(
        cls,
        theme: Iterable[str] = (),
        payload: Mapping[str, Value] | Iterable[tuple[str, Value]] = (),
    ) -> "Event":
        """Convenient constructor from any mapping or pair iterable.

        >>> Event.create(
        ...     theme={"energy", "appliances", "building"},
        ...     payload={"type": "increased energy consumption event",
        ...              "device": "computer", "office": "room 112"},
        ... )  # doctest: +ELLIPSIS
        Event(...)
        """
        pairs = payload.items() if isinstance(payload, Mapping) else payload
        return cls(
            theme=frozenset(theme),
            payload=tuple(AttributeValue(attr, value) for attr, value in pairs),
        )

    # -- queries -----------------------------------------------------------

    def value(self, attribute: str) -> Value | None:
        """Value of ``attribute`` (normalized lookup), or ``None``."""
        av = self._by_attribute.get(normalize_term(attribute))
        return av.value if av is not None else None

    def attributes(self) -> tuple[str, ...]:
        return tuple(av.attribute for av in self.payload)

    def terms(self) -> tuple[str, ...]:
        """Every term appearing in the payload (attributes + str values)."""
        out: list[str] = []
        for av in self.payload:
            out.append(av.attribute)
            if isinstance(av.value, str):
                out.append(av.value)
        return tuple(out)

    def with_theme(self, theme: Iterable[str]) -> "Event":
        """Copy of this event carrying a different theme."""
        return Event(theme=frozenset(theme), payload=self.payload)

    def __len__(self) -> int:
        return len(self.payload)

    def __str__(self) -> str:
        tags = ", ".join(sorted(self.theme))
        tuples = ", ".join(str(av) for av in self.payload)
        return f"({{{tags}}}, {{{tuples}}})"
