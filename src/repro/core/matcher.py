"""The approximate semantic single-event matcher ``M`` (Section 3.5).

The matcher decides on the semantic relevance of an event to a
subscription by finding the most probable mapping(s) between the
subscription's predicates and the event's tuples. It is parametrized by
a :class:`~repro.semantics.measures.SemanticMeasure`, which is where the
thematic/non-thematic/exact distinction lives:

* ``ThematicMatcher(ThematicMeasure(pvsm))`` — this paper's system;
* ``ThematicMatcher(NonThematicMeasure(space))`` — prior work [16];
* ``ThematicMatcher(ExactMeasure())`` — degenerates to content-based
  matching (every approximation scores 0 unless strings are equal).

Two modes (Figure 4): **top-1** returns the single most probable mapping
σ*; **top-k** returns the k most probable mappings with their
probability space ``P``, for consumption by the CEP layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import Event
from repro.core.mapping import Mapping, top_k_mappings
from repro.core.similarity import Calibration, SimilarityMatrix, build_similarity_matrix
from repro.core.subscriptions import Subscription
from repro.obs import TRACER
from repro.semantics.measures import SemanticMeasure

#: Shared default: Calibration is a frozen value object, so one
#: instance serves every matcher (and keeps the call out of the
#: argument-default position).
_DEFAULT_CALIBRATION = Calibration()

__all__ = ["MatchResult", "ThematicMatcher"]


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching one event against one subscription.

    ``mapping`` is the top-1 mapping σ*; ``alternatives`` holds the rest
    of the top-k set (empty in top-1 mode). ``score`` is σ*'s geometric-
    mean correspondence score — the match strength used for ranking and
    thresholding.
    """

    subscription: Subscription
    event: Event
    matrix: SimilarityMatrix
    mapping: Mapping
    alternatives: tuple[Mapping, ...] = ()

    @property
    def score(self) -> float:
        return self.mapping.score

    @property
    def probability(self) -> float:
        return self.mapping.probability

    def mappings(self) -> tuple[Mapping, ...]:
        """All enumerated mappings, best first."""
        return (self.mapping, *self.alternatives)

    def is_match(self, threshold: float) -> bool:
        return self.score >= threshold

    def explain(self) -> str:
        """Human-readable account of the chosen mapping."""
        lines = [f"score={self.score:.3f} probability={self.probability:.3f}"]
        for corr in self.mapping.correspondences:
            lines.append(f"  {corr.describe(self.matrix)} score={corr.score:.3f}")
        return "\n".join(lines)


class ThematicMatcher:
    """Approximate probabilistic matcher, top-1 or top-k (Section 3.5).

    Parameters
    ----------
    measure:
        The semantic measure scoring term pairs (with themes).
    k:
        How many mappings to enumerate; ``k=1`` is top-1 mode.
    threshold:
        Minimum mapping score for :meth:`matches` to say yes (calibrated
        scores behave like probabilities, so 0.5 is a sensible default).
    min_relatedness:
        Noise-floor clamp forwarded to the similarity matrix.
    calibration:
        Logistic calibration of raw relatedness into correspondence
        probabilities (see :class:`~repro.core.similarity.Calibration`).
        On by default; pass ``None`` for raw Equation 6 scores.
    """

    def __init__(
        self,
        measure: SemanticMeasure,
        *,
        k: int = 1,
        threshold: float = 0.5,
        min_relatedness: float = 0.0,
        calibration: Calibration | None = _DEFAULT_CALIBRATION,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.measure = measure
        self.k = k
        self.threshold = threshold
        self.min_relatedness = min_relatedness
        self.calibration = calibration
        self._pipeline = None  # lazy StagedBatchPipeline (see match_batch)

    def similarity_matrix(
        self, subscription: Subscription, event: Event
    ) -> SimilarityMatrix:
        return build_similarity_matrix(
            subscription,
            event,
            self.measure,
            min_relatedness=self.min_relatedness,
            calibration=self.calibration,
        )

    def match(self, subscription: Subscription, event: Event) -> MatchResult | None:
        """Full match outcome, or ``None`` when no mapping exists.

        No mapping exists only when the event has fewer tuples than the
        subscription has predicates (a mapping needs exactly ``n``
        distinct correspondences).
        """
        with TRACER.span(
            "matcher.match",
            n=len(subscription.predicates),
            m=len(event.payload),
        ):
            matrix = self.similarity_matrix(subscription, event)
            mappings = top_k_mappings(matrix, self.k)
        if not mappings:
            return None
        return MatchResult(
            subscription=subscription,
            event=event,
            matrix=matrix,
            mapping=mappings[0],
            alternatives=tuple(mappings[1:]),
        )

    def score(self, subscription: Subscription, event: Event) -> float:
        """Match strength in ``[0, 1]``; 0 when no mapping exists."""
        result = self.match(subscription, event)
        return result.score if result is not None else 0.0

    def matches(self, subscription: Subscription, event: Event) -> bool:
        """Boolean decision at this matcher's threshold."""
        result = self.match(subscription, event)
        return result is not None and result.is_match(self.threshold)

    def new_pipeline(self, *, span_tags: dict | None = None):
        """A fresh :class:`~repro.core.pipeline.StagedBatchPipeline`.

        The default :meth:`match_batch` pipeline is shared state (its
        compiled-subscription and side-score tables mutate per batch),
        so concurrent callers — one engine per broker shard — each take
        a private pipeline instead. ``span_tags`` label every span the
        pipeline emits (e.g. with a shard id).
        """
        # Imported here: pipeline.py imports MatchResult from this
        # module, so a top-level import would be circular.
        from repro.core.pipeline import StagedBatchPipeline

        return StagedBatchPipeline(self, span_tags=span_tags)

    def match_batch(
        self,
        subscriptions,
        events,
        *,
        scores_only: bool = False,
        prune_zero: bool | None = None,
        deliver_threshold: float | None = None,
    ):
        """Match every subscription against every event, staged.

        Runs the :class:`~repro.core.pipeline.StagedBatchPipeline`
        (candidates → term-pair collection → bulk scoring → assignment),
        which deduplicates semantic lookups across the whole batch. The
        score grid is bit-identical to per-pair :meth:`score` calls; see
        :mod:`repro.core.api` for the contract and the keyword options,
        and :meth:`StagedBatchPipeline.run` for the delivery-gated
        ``deliver_threshold`` mode.
        """
        if self._pipeline is None:
            self._pipeline = self.new_pipeline()
        return self._pipeline.run(
            subscriptions,
            events,
            scores_only=scores_only,
            prune_zero=prune_zero,
            deliver_threshold=deliver_threshold,
        )
