"""JSON wire codec for events and subscriptions.

Brokers interoperate through serialized messages, not Python objects.
This codec defines a stable JSON shape for both artifact kinds:

.. code-block:: json

    {"kind": "event",
     "theme": ["energy", "appliances"],
     "payload": [["type", "increased energy consumption event"],
                 ["reading", 21.5]]}

    {"kind": "subscription",
     "theme": ["power"],
     "predicates": [{"attribute": "device", "value": "laptop",
                     "approx_attribute": true, "approx_value": true,
                     "operator": "="}]}

Payload order is preserved (lists, not objects), themes are sorted for
canonical output, and numbers stay numbers. ``dumps``/``loads`` are
strict inverses for every valid artifact.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.events import Event
from repro.core.subscriptions import Predicate, Subscription

__all__ = [
    "event_to_dict",
    "event_from_dict",
    "subscription_to_dict",
    "subscription_from_dict",
    "dumps",
    "loads",
]


def event_to_dict(event: Event) -> dict[str, Any]:
    return {
        "kind": "event",
        "theme": sorted(event.theme),
        "payload": [[av.attribute, av.value] for av in event.payload],
    }


def event_from_dict(data: dict[str, Any]) -> Event:
    if data.get("kind") != "event":
        raise ValueError(f"not an event payload: kind={data.get('kind')!r}")
    return Event.create(
        theme=data.get("theme", ()),
        payload=[(attr, value) for attr, value in data["payload"]],
    )


def subscription_to_dict(subscription: Subscription) -> dict[str, Any]:
    return {
        "kind": "subscription",
        "theme": sorted(subscription.theme),
        "predicates": [
            {
                "attribute": p.attribute,
                "value": p.value,
                "approx_attribute": p.approx_attribute,
                "approx_value": p.approx_value,
                "operator": p.operator,
            }
            for p in subscription.predicates
        ],
    }


def subscription_from_dict(data: dict[str, Any]) -> Subscription:
    if data.get("kind") != "subscription":
        raise ValueError(
            f"not a subscription payload: kind={data.get('kind')!r}"
        )
    return Subscription(
        theme=frozenset(data.get("theme", ())),
        predicates=tuple(
            Predicate(
                attribute=p["attribute"],
                value=p["value"],
                approx_attribute=p.get("approx_attribute", False),
                approx_value=p.get("approx_value", False),
                operator=p.get("operator", "="),
            )
            for p in data["predicates"]
        ),
    )


def dumps(artifact: Event | Subscription) -> str:
    """Serialize an event or subscription to a JSON string."""
    if isinstance(artifact, Event):
        return json.dumps(event_to_dict(artifact))
    if isinstance(artifact, Subscription):
        return json.dumps(subscription_to_dict(artifact))
    raise TypeError(f"cannot serialize {type(artifact).__name__}")


def loads(text: str) -> Event | Subscription:
    """Parse a JSON string into an event or subscription by its kind."""
    data = json.loads(text)
    kind = data.get("kind")
    if kind == "event":
        return event_from_dict(data)
    if kind == "subscription":
        return subscription_from_dict(data)
    raise ValueError(f"unknown artifact kind {kind!r}")
