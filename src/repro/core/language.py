"""Surface syntax for events and subscriptions, as written in the paper.

Events (Section 3.3)::

    ({energy, appliances, building},
     {type: increased energy consumption event,
      measurement unit: kilowatt hour, device: computer, office: room 112})

Subscriptions (Section 3.4) use ``=`` and the tilde ``~`` operator::

    ({power, computers},
     {type= increased energy usage event~, device~= laptop~, office= room 112})

The grammar is deliberately small: two brace groups in parentheses (the
theme may be omitted along with its parentheses), comma-separated items,
``:`` or ``=`` separators, ``~`` suffixes. Terms must not contain
commas, braces, tildes or comparison operators. Values that look like
numbers parse as numbers. Subscriptions additionally accept the
extension operators ``!= > >= < <=`` (see
:mod:`repro.core.subscriptions`), e.g. ``temperature~ > 30``.

:func:`format_event` / :func:`format_subscription` are inverses of the
parsers up to whitespace and theme-tag order (themes are sets).
"""

from __future__ import annotations

import re

from repro.core.events import Event, Value
from repro.core.subscriptions import Predicate, Subscription

__all__ = [
    "ParseError",
    "parse_event",
    "parse_subscription",
    "format_event",
    "format_subscription",
]


class ParseError(ValueError):
    """Raised when a textual event or subscription is malformed."""


_NUMBER_RE = re.compile(r"^[+-]?(\d+\.?\d*|\.\d+)$")


def _parse_value(text: str) -> Value:
    text = text.strip()
    if _NUMBER_RE.match(text):
        return float(text) if ("." in text) else int(text)
    return text


def _brace_groups(text: str) -> list[str]:
    """Contents of every top-level ``{...}`` group, left to right."""
    groups: list[str] = []
    depth = 0
    start = 0
    for i, ch in enumerate(text):
        if ch == "{":
            if depth == 0:
                start = i + 1
            depth += 1
        elif ch == "}":
            depth -= 1
            if depth < 0:
                raise ParseError(f"unbalanced braces in {text!r}")
            if depth == 0:
                groups.append(text[start:i])
    if depth != 0:
        raise ParseError(f"unbalanced braces in {text!r}")
    return groups


def _items(group: str) -> list[str]:
    return [item.strip() for item in group.split(",") if item.strip()]


def _split_theme_and_body(text: str) -> tuple[list[str], str]:
    groups = _brace_groups(text)
    if len(groups) == 1:
        return [], groups[0]
    if len(groups) == 2:
        return _items(groups[0]), groups[1]
    raise ParseError(
        f"expected one or two brace groups, found {len(groups)} in {text!r}"
    )


def parse_event(text: str) -> Event:
    """Parse the paper's event syntax into an :class:`Event`.

    >>> e = parse_event("({energy}, {type: increased energy consumption event})")
    >>> e.value("type")
    'increased energy consumption event'
    """
    theme, body = _split_theme_and_body(text)
    pairs: list[tuple[str, Value]] = []
    for item in _items(body):
        if ":" not in item:
            raise ParseError(f"event tuple needs ':' separator: {item!r}")
        attr, value = item.split(":", 1)
        if "~" in item:
            raise ParseError(f"events cannot carry the ~ operator: {item!r}")
        pairs.append((attr.strip(), _parse_value(value)))
    if not pairs:
        raise ParseError(f"event has no tuples: {text!r}")
    return Event.create(theme=theme, payload=pairs)


#: Operator spellings, longest first so ``>=`` wins over ``>``/``=``.
_OPERATOR_SPELLINGS = ("!=", ">=", "<=", "=", ">", "<")


def _split_operator(item: str) -> tuple[str, str, str]:
    """Split a predicate item into (operator, attribute part, value part).

    The first operator occurrence splits the item; longer spellings take
    precedence at the same position (``>=`` is never read as ``>``).
    """
    best: tuple[int, str] | None = None
    for spelling in _OPERATOR_SPELLINGS:
        index = item.find(spelling)
        if index == -1:
            continue
        if best is None or index < best[0] or (
            index == best[0] and len(spelling) > len(best[1])
        ):
            best = (index, spelling)
    if best is None:
        raise ParseError(f"predicate needs an operator: {item!r}")
    index, spelling = best
    return spelling, item[:index].strip(), item[index + len(spelling):].strip()


def parse_subscription(text: str) -> Subscription:
    """Parse the paper's subscription syntax into a :class:`Subscription`.

    >>> s = parse_subscription("({power}, {device~= laptop~, office= room 112})")
    >>> s.predicates[0].approx_attribute, s.predicates[0].approx_value
    (True, True)
    >>> s.degree_of_approximation()
    0.5
    """
    theme, body = _split_theme_and_body(text)
    predicates: list[Predicate] = []
    for item in _items(body):
        operator, attr_part, value_part = _split_operator(item)
        approx_attr = attr_part.endswith("~")
        approx_value = value_part.endswith("~")
        attr = attr_part.rstrip("~").strip()
        value = _parse_value(value_part.rstrip("~"))
        if approx_value and not isinstance(value, str):
            raise ParseError(f"numeric values cannot be approximated: {item!r}")
        if approx_value and operator != "=":
            raise ParseError(
                f"only equality values can be approximated: {item!r}"
            )
        try:
            predicates.append(
                Predicate(
                    attr,
                    value,
                    approx_attribute=approx_attr,
                    approx_value=approx_value,
                    operator=operator,
                )
            )
        except ValueError as exc:
            raise ParseError(f"{exc}: {item!r}") from exc
    if not predicates:
        raise ParseError(f"subscription has no predicates: {text!r}")
    return Subscription.create(theme=theme, predicates=predicates)


def format_event(event: Event) -> str:
    """Serialize an event back to the surface syntax."""
    return str(event)


def format_subscription(subscription: Subscription) -> str:
    """Serialize a subscription back to the surface syntax."""
    return str(subscription)
