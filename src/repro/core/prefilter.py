"""Two-phase matching: cheap candidate filtering before the full matcher.

Section 7 lists "building an efficient indexing for thematic projection
[and] throughput optimization" as future work; this module supplies the
standard two-phase design:

**Phase 1 (candidate filter)** rejects (subscription, event) pairs that
cannot match, using only cheap structural checks:

* *arity*: an event with fewer tuples than the subscription has
  predicates can never carry a full mapping — exact, loss-free;
* *exact anchors*: a predicate side without ``~`` requires verbatim
  equality, so any non-approximated (attribute, value) pair is indexed
  counting-style; events missing an anchor are rejected — exact,
  loss-free (this is why partially-approximated workloads are much
  cheaper than the paper's worst-case 100% ones);
* *semantic anchors* (optional, **lossy**): for a fully-approximated
  predicate, the event must contain at least one token whose full-space
  relatedness to the predicate's tokens reaches ``prefilter_threshold``.
  Thematic projection can *raise* relatedness above its full-space value,
  so an aggressive threshold can drop true matches; the default sits just
  above the orthogonal floor, and :class:`PrefilterStats` exposes the
  numbers needed to measure the trade (the prefilter bench does).

The semantic-anchor phase comes in three *anchor modes*
(:data:`PREFILTER_MODES`): ``"exact"`` disables it (only the loss-free
structural checks run), ``"semantic"`` computes neighborhoods with the
exact full-vocabulary scan (:class:`TokenNeighborhoods`, the historical
behaviour), and ``"ann"`` generates them through the LSH index
(:class:`~repro.semantics.index.ApproxNeighborIndex`) with recall tuned
by ``ann_recall_target`` — at ``1.0`` the index falls back to the exact
scan, bit-identical to ``"semantic"``.

**Phase 2** runs the full probabilistic matcher on the survivors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import Event
from repro.core.matcher import MatchResult, ThematicMatcher
from repro.core.subscriptions import Predicate, Subscription
from repro.obs import MetricsRegistry
from repro.semantics.index import DEFAULT_NEIGHBOR_THRESHOLD, ApproxNeighborIndex
from repro.semantics.space import DistributionalVectorSpace
from repro.semantics.tokenize import normalize_term, tokenize

__all__ = [
    "TokenNeighborhoods",
    "PrefilterStats",
    "TwoPhaseMatcher",
    "AnchorIndex",
    "PREFILTER_MODES",
    "build_neighborhoods",
]

#: Historical name for the shared neighborhood threshold; the value (and
#: its rationale) now lives with the indexes in ``semantics.index``.
DEFAULT_PREFILTER_THRESHOLD = DEFAULT_NEIGHBOR_THRESHOLD

#: Supported semantic-anchor modes (see module docstring).
PREFILTER_MODES = ("exact", "semantic", "ann")


def build_neighborhoods(
    space: DistributionalVectorSpace | None,
    *,
    mode: str = "semantic",
    threshold: float = DEFAULT_PREFILTER_THRESHOLD,
    recall_target: float = 1.0,
    registry: MetricsRegistry | None = None,
):
    """Neighborhood provider for one anchor mode (``None`` disables).

    Returns an object with a ``neighbors(term) -> frozenset[str]``
    method, or ``None`` for ``mode="exact"`` (or when no space is
    available to compute neighborhoods against).
    """
    if mode not in PREFILTER_MODES:
        raise ValueError(
            f"unknown prefilter mode {mode!r} (expected one of {PREFILTER_MODES})"
        )
    if mode == "exact" or space is None:
        return None
    if mode == "ann":
        return ApproxNeighborIndex(
            space,
            threshold=threshold,
            recall_target=recall_target,
            registry=registry,
        )
    return TokenNeighborhoods(space, threshold=threshold)


class TokenNeighborhoods:
    """Per-token sets of corpus tokens related above a threshold.

    Neighborhoods are computed lazily against the *full* space (theme
    projection happens later, in phase 2) and cached; a term's
    neighborhood is the union over its tokens, always including the
    tokens themselves.
    """

    def __init__(
        self,
        space: DistributionalVectorSpace,
        *,
        threshold: float = DEFAULT_PREFILTER_THRESHOLD,
    ):
        self.space = space
        self.threshold = threshold
        self._by_token: dict[str, frozenset[str]] = {}
        self._vocabulary = sorted(space.vocabulary())

    def _token_neighborhood(self, token: str) -> frozenset[str]:
        cached = self._by_token.get(token)
        if cached is not None:
            return cached
        vector = self.space.token_vector(token)
        if not vector:
            neighborhood = frozenset({token})
        else:
            related = {token}
            for candidate in self._vocabulary:
                other = self.space.token_vector(candidate)
                if other and self.space.vector_relatedness(vector, other) >= self.threshold:
                    related.add(candidate)
            neighborhood = frozenset(related)
        self._by_token[token] = neighborhood
        return neighborhood

    def neighbors(self, term: str) -> frozenset[str]:
        """Union of the term's tokens' neighborhoods."""
        out: set[str] = set()
        for token in tokenize(term):
            out |= self._token_neighborhood(token)
        return frozenset(out)


@dataclass
class PrefilterStats:
    """Observability for the prune/match trade-off."""

    events: int = 0
    pairs_considered: int = 0
    pruned_arity: int = 0
    pruned_exact_anchor: int = 0
    pruned_semantic_anchor: int = 0
    full_matches_run: int = 0
    delivered: int = 0

    def pruned_total(self) -> int:
        return (
            self.pruned_arity
            + self.pruned_exact_anchor
            + self.pruned_semantic_anchor
        )

    def prune_rate(self) -> float:
        if self.pairs_considered == 0:
            return 0.0
        return self.pruned_total() / self.pairs_considered


@dataclass
class _Entry:
    subscription: Subscription
    arity: int
    exact_anchors: tuple[tuple[str, object], ...]
    semantic_anchors: tuple[frozenset[str], ...]


def _exact_key(attribute: str, value) -> tuple[str, object]:
    if isinstance(value, str):
        return (normalize_term(attribute), normalize_term(value))
    return (normalize_term(attribute), value)


class AnchorIndex:
    """Phase-1 anchor entries keyed by caller-chosen ids.

    The candidate-filter state that used to live inside
    :class:`TwoPhaseMatcher`, split out so the engine can run the same
    anchor phases in front of its staged batch pipeline. Stats
    accounting stays here: every ``survives`` call attributes a prune to
    the phase that rejected it.
    """

    def __init__(self, neighborhoods=None, *, stats: PrefilterStats | None = None):
        self.neighborhoods = neighborhoods
        self.stats = stats if stats is not None else PrefilterStats()
        self._entries: dict[int, _Entry] = {}

    def _semantic_anchor(self, predicate: Predicate) -> frozenset[str] | None:
        """Token neighborhood a fully-approximated predicate value needs."""
        if self.neighborhoods is None:
            return None
        if not isinstance(predicate.value, str):
            return None
        if not (predicate.approx_attribute and predicate.approx_value):
            return None  # the exact anchor covers it better
        return self.neighborhoods.neighbors(predicate.value)

    def add(self, key: int, subscription: Subscription) -> None:
        exact_anchors = tuple(
            _exact_key(p.attribute, p.value)
            for p in subscription.predicates
            if p.operator == "=" and not p.approx_attribute and not p.approx_value
        )
        semantic_anchors = tuple(
            anchor
            for anchor in (
                self._semantic_anchor(p) for p in subscription.predicates
            )
            if anchor is not None
        )
        self._entries[key] = _Entry(
            subscription=subscription,
            arity=len(subscription.predicates),
            exact_anchors=exact_anchors,
            semantic_anchors=semantic_anchors,
        )

    def remove(self, key: int) -> bool:
        return self._entries.pop(key, None) is not None

    def entry(self, key: int) -> _Entry:
        return self._entries[key]

    def items(self):
        return self._entries.items()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def event_exact_keys(event: Event) -> set[tuple[str, object]]:
        return {_exact_key(av.attribute, av.value) for av in event.payload}

    @staticmethod
    def event_tokens(event: Event) -> set[str]:
        tokens: set[str] = set()
        for av in event.payload:
            if isinstance(av.value, str):
                tokens.update(tokenize(av.value))
            tokens.update(tokenize(av.attribute))
        return tokens

    def survives(
        self,
        entry: _Entry,
        event: Event,
        exact_keys: set[tuple[str, object]],
        event_tokens: set[str],
    ) -> bool:
        if len(event.payload) < entry.arity:
            self.stats.pruned_arity += 1
            return False
        for anchor in entry.exact_anchors:
            if anchor not in exact_keys:
                self.stats.pruned_exact_anchor += 1
                return False
        for neighborhood in entry.semantic_anchors:
            if not (neighborhood & event_tokens):
                self.stats.pruned_semantic_anchor += 1
                return False
        return True

    def survivor_flags(self, entries, event: Event) -> list[bool]:
        """One survive/prune decision per entry for one event."""
        exact_keys = self.event_exact_keys(event)
        event_tokens = self.event_tokens(event)
        self.stats.events += 1
        self.stats.pairs_considered += len(entries)
        return [
            self.survives(entry, event, exact_keys, event_tokens)
            for entry in entries
        ]


class TwoPhaseMatcher:
    """Subscription index with candidate filtering + full matching.

    Parameters
    ----------
    matcher:
        The phase-2 matcher (thematic or otherwise).
    space:
        Space for semantic-anchor neighborhoods; pass ``None`` to disable
        the (lossy) semantic anchors and keep only the exact phases.
    prefilter_threshold:
        Relatedness floor for semantic anchors (see module docstring).
    prefilter_mode:
        Anchor mode — one of :data:`PREFILTER_MODES`. The default
        ``"semantic"`` preserves the historical exact-scan behaviour;
        ``"ann"`` swaps in the LSH index at ``ann_recall_target``.
    ann_recall_target:
        Recall knob for ``prefilter_mode="ann"``; ``1.0`` is the exact
        fallback (bit-identical neighborhoods to ``"semantic"``).
    """

    def __init__(
        self,
        matcher: ThematicMatcher,
        space: DistributionalVectorSpace | None = None,
        *,
        prefilter_threshold: float = DEFAULT_PREFILTER_THRESHOLD,
        prefilter_mode: str = "semantic",
        ann_recall_target: float = 1.0,
        registry: MetricsRegistry | None = None,
    ):
        self.matcher = matcher
        self._anchors = AnchorIndex(
            build_neighborhoods(
                space,
                mode=prefilter_mode,
                threshold=prefilter_threshold,
                recall_target=ann_recall_target,
                registry=registry,
            )
        )
        self.stats = self._anchors.stats
        self._next_id = 0

    # -- registration ----------------------------------------------------------

    def add(self, subscription: Subscription) -> int:
        sub_id = self._next_id
        self._next_id += 1
        self._anchors.add(sub_id, subscription)
        return sub_id

    def remove(self, sub_id: int) -> bool:
        return self._anchors.remove(sub_id)

    def __len__(self) -> int:
        return len(self._anchors)

    # -- matching ----------------------------------------------------------

    def match_event(self, event: Event) -> list[tuple[int, MatchResult]]:
        """Phase-1 filter then full matching; returns accepted matches."""
        self.stats.events += 1
        exact_keys = AnchorIndex.event_exact_keys(event)
        event_tokens = AnchorIndex.event_tokens(event)
        accepted: list[tuple[int, MatchResult]] = []
        for sub_id, entry in self._anchors.items():
            self.stats.pairs_considered += 1
            if not self._anchors.survives(entry, event, exact_keys, event_tokens):
                continue
            self.stats.full_matches_run += 1
            result = self.matcher.match(entry.subscription, event)
            if result is not None and result.is_match(self.matcher.threshold):
                self.stats.delivered += 1
                accepted.append((sub_id, result))
        return accepted
