"""Two-phase matching: cheap candidate filtering before the full matcher.

Section 7 lists "building an efficient indexing for thematic projection
[and] throughput optimization" as future work; this module supplies the
standard two-phase design:

**Phase 1 (candidate filter)** rejects (subscription, event) pairs that
cannot match, using only cheap structural checks:

* *arity*: an event with fewer tuples than the subscription has
  predicates can never carry a full mapping — exact, loss-free;
* *exact anchors*: a predicate side without ``~`` requires verbatim
  equality, so any non-approximated (attribute, value) pair is indexed
  counting-style; events missing an anchor are rejected — exact,
  loss-free (this is why partially-approximated workloads are much
  cheaper than the paper's worst-case 100% ones);
* *semantic anchors* (optional, **lossy**): for a fully-approximated
  predicate, the event must contain at least one token whose full-space
  relatedness to the predicate's tokens reaches ``prefilter_threshold``.
  Thematic projection can *raise* relatedness above its full-space value,
  so an aggressive threshold can drop true matches; the default sits just
  above the orthogonal floor, and :class:`PrefilterStats` exposes the
  numbers needed to measure the trade (the prefilter bench does).

**Phase 2** runs the full probabilistic matcher on the survivors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.events import Event
from repro.core.matcher import MatchResult, ThematicMatcher
from repro.core.subscriptions import Predicate, Subscription
from repro.semantics.space import DistributionalVectorSpace
from repro.semantics.tokenize import normalize_term, tokenize

__all__ = ["TokenNeighborhoods", "PrefilterStats", "TwoPhaseMatcher"]

#: Just above the orthogonal floor of the normalized-Euclidean
#: relatedness (1/(1+sqrt(2)) ≈ 0.4142): prunes only pairs with
#: essentially no full-space evidence.
DEFAULT_PREFILTER_THRESHOLD = 0.435


class TokenNeighborhoods:
    """Per-token sets of corpus tokens related above a threshold.

    Neighborhoods are computed lazily against the *full* space (theme
    projection happens later, in phase 2) and cached; a term's
    neighborhood is the union over its tokens, always including the
    tokens themselves.
    """

    def __init__(
        self,
        space: DistributionalVectorSpace,
        *,
        threshold: float = DEFAULT_PREFILTER_THRESHOLD,
    ):
        self.space = space
        self.threshold = threshold
        self._by_token: dict[str, frozenset[str]] = {}
        self._vocabulary = sorted(space.vocabulary())

    def _token_neighborhood(self, token: str) -> frozenset[str]:
        cached = self._by_token.get(token)
        if cached is not None:
            return cached
        vector = self.space.token_vector(token)
        if not vector:
            neighborhood = frozenset({token})
        else:
            related = {token}
            for candidate in self._vocabulary:
                other = self.space.token_vector(candidate)
                if other and self.space.vector_relatedness(vector, other) >= self.threshold:
                    related.add(candidate)
            neighborhood = frozenset(related)
        self._by_token[token] = neighborhood
        return neighborhood

    def neighbors(self, term: str) -> frozenset[str]:
        """Union of the term's tokens' neighborhoods."""
        out: set[str] = set()
        for token in tokenize(term):
            out |= self._token_neighborhood(token)
        return frozenset(out)


@dataclass
class PrefilterStats:
    """Observability for the prune/match trade-off."""

    events: int = 0
    pairs_considered: int = 0
    pruned_arity: int = 0
    pruned_exact_anchor: int = 0
    pruned_semantic_anchor: int = 0
    full_matches_run: int = 0
    delivered: int = 0

    def pruned_total(self) -> int:
        return (
            self.pruned_arity
            + self.pruned_exact_anchor
            + self.pruned_semantic_anchor
        )

    def prune_rate(self) -> float:
        if self.pairs_considered == 0:
            return 0.0
        return self.pruned_total() / self.pairs_considered


@dataclass
class _Entry:
    subscription: Subscription
    arity: int
    exact_anchors: tuple[tuple[str, object], ...]
    semantic_anchors: tuple[frozenset[str], ...]


def _exact_key(attribute: str, value) -> tuple[str, object]:
    if isinstance(value, str):
        return (normalize_term(attribute), normalize_term(value))
    return (normalize_term(attribute), value)


class TwoPhaseMatcher:
    """Subscription index with candidate filtering + full matching.

    Parameters
    ----------
    matcher:
        The phase-2 matcher (thematic or otherwise).
    space:
        Space for semantic-anchor neighborhoods; pass ``None`` to disable
        the (lossy) semantic anchors and keep only the exact phases.
    prefilter_threshold:
        Relatedness floor for semantic anchors (see module docstring).
    """

    def __init__(
        self,
        matcher: ThematicMatcher,
        space: DistributionalVectorSpace | None = None,
        *,
        prefilter_threshold: float = DEFAULT_PREFILTER_THRESHOLD,
    ):
        self.matcher = matcher
        self.stats = PrefilterStats()
        self._neighborhoods = (
            TokenNeighborhoods(space, threshold=prefilter_threshold)
            if space is not None
            else None
        )
        self._entries: dict[int, _Entry] = {}
        self._next_id = 0

    # -- registration ----------------------------------------------------------

    def _semantic_anchor(self, predicate: Predicate) -> frozenset[str] | None:
        """Token neighborhood a fully-approximated predicate value needs."""
        if self._neighborhoods is None:
            return None
        if not isinstance(predicate.value, str):
            return None
        if not (predicate.approx_attribute and predicate.approx_value):
            return None  # the exact anchor covers it better
        return self._neighborhoods.neighbors(predicate.value)

    def add(self, subscription: Subscription) -> int:
        exact_anchors = tuple(
            _exact_key(p.attribute, p.value)
            for p in subscription.predicates
            if p.operator == "=" and not p.approx_attribute and not p.approx_value
        )
        semantic_anchors = tuple(
            anchor
            for anchor in (
                self._semantic_anchor(p) for p in subscription.predicates
            )
            if anchor is not None
        )
        entry = _Entry(
            subscription=subscription,
            arity=len(subscription.predicates),
            exact_anchors=exact_anchors,
            semantic_anchors=semantic_anchors,
        )
        sub_id = self._next_id
        self._next_id += 1
        self._entries[sub_id] = entry
        return sub_id

    def remove(self, sub_id: int) -> bool:
        return self._entries.pop(sub_id, None) is not None

    def __len__(self) -> int:
        return len(self._entries)

    # -- matching ----------------------------------------------------------

    def _event_exact_keys(self, event: Event) -> set[tuple[str, object]]:
        return {_exact_key(av.attribute, av.value) for av in event.payload}

    def _event_tokens(self, event: Event) -> set[str]:
        tokens: set[str] = set()
        for av in event.payload:
            if isinstance(av.value, str):
                tokens.update(tokenize(av.value))
            tokens.update(tokenize(av.attribute))
        return tokens

    def _survives_prefilter(
        self,
        entry: _Entry,
        event: Event,
        exact_keys: set[tuple[str, object]],
        event_tokens: set[str],
    ) -> bool:
        if len(event.payload) < entry.arity:
            self.stats.pruned_arity += 1
            return False
        for anchor in entry.exact_anchors:
            if anchor not in exact_keys:
                self.stats.pruned_exact_anchor += 1
                return False
        for neighborhood in entry.semantic_anchors:
            if not (neighborhood & event_tokens):
                self.stats.pruned_semantic_anchor += 1
                return False
        return True

    def match_event(self, event: Event) -> list[tuple[int, MatchResult]]:
        """Phase-1 filter then full matching; returns accepted matches."""
        self.stats.events += 1
        exact_keys = self._event_exact_keys(event)
        event_tokens = self._event_tokens(event)
        accepted: list[tuple[int, MatchResult]] = []
        for sub_id, entry in self._entries.items():
            self.stats.pairs_considered += 1
            if not self._survives_prefilter(entry, event, exact_keys, event_tokens):
                continue
            self.stats.full_matches_run += 1
            result = self.matcher.match(entry.subscription, event)
            if result is not None and result.is_match(self.matcher.threshold):
                self.stats.delivered += 1
                accepted.append((sub_id, result))
        return accepted
