"""The combined attribute–value similarity matrix of Figure 4.

For a subscription with ``n`` predicates and an event with ``m`` tuples,
the matcher needs an ``n x m`` matrix whose entry ``(i, j)`` scores how
well predicate ``i`` corresponds to tuple ``j``. Each entry combines an
attribute-side and a value-side similarity:

* a side marked with ``~`` is scored by the semantic measure
  ``sm(th_s, term_s, th_e, term_e)`` (thematic or not depending on the
  measure plugged in);
* an unmarked side requires exact (normalized) string equality;
* identical strings short-circuit to 1.0 even when approximated;
* non-string values compare by equality on either side.

The two sides multiply: a correspondence is only as strong as its weaker
half, and an exact-side mismatch zeroes the entry outright.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.events import Event
from repro.core.subscriptions import Predicate, Subscription
from repro.obs import TRACER
from repro.semantics.measures import SemanticMeasure
from repro.semantics.tokenize import normalize_term

__all__ = [
    "Calibration",
    "SimilarityMatrix",
    "build_similarity_matrix",
    "predicate_tuple_score",
]


@dataclass(frozen=True)
class Calibration:
    """Logistic map turning raw relatedness into a match probability.

    Distance-derived relatedness (Equation 6) lives on a compressed
    scale: with L2-normalized vectors even orthogonal terms score
    ``1/(1+sqrt(2)) ≈ 0.41`` and true synonyms hover around 0.5–0.7. The
    probabilistic matcher of Section 3.5 needs each correspondence to
    carry *the probability that the mapping is correct*, so raw
    relatedness is calibrated through a logistic:

        ``p = sigma((relatedness - midpoint) / temperature)``

    With the defaults, unrelated pairs land near 0, synonym-level pairs
    well above 0.5, and exact matches at ~1 — making the conjunctive
    combination behave like a soft Boolean, which is what separates "all
    predicates semantically matched" from "most exact, one wrong".

    ``midpoint``/``temperature`` are deployment calibration constants
    (they depend on corpus statistics, like any similarity threshold).
    The defaults are tuned to the bundled synthetic corpus: its
    orthogonal-pair floor sits at ≈0.41–0.44 and synonym pairs at
    ≈0.48–0.7, so the midpoint separates the two populations.
    """

    midpoint: float = 0.46
    temperature: float = 0.03

    def __post_init__(self) -> None:
        if self.temperature <= 0:
            raise ValueError("temperature must be positive")

    def apply(self, relatedness: float) -> float:
        z = (relatedness - self.midpoint) / self.temperature
        # Guard exp overflow for extreme z.
        if z >= 36:
            return 1.0
        if z <= -36:
            return 0.0
        return 1.0 / (1.0 + math.exp(-z))


def _term_similarity(
    term_s: str,
    term_e: str,
    approximate: bool,
    measure: SemanticMeasure,
    theme_s: frozenset[str],
    theme_e: frozenset[str],
    calibration: Calibration | None,
) -> float:
    if normalize_term(term_s) == normalize_term(term_e):
        return 1.0
    if not approximate:
        return 0.0
    raw = measure.score(term_s, theme_s, term_e, theme_e)
    return calibration.apply(raw) if calibration is not None else raw


def predicate_tuple_score(
    predicate: Predicate,
    attribute: str,
    value,
    measure: SemanticMeasure,
    theme_s: frozenset[str],
    theme_e: frozenset[str],
    *,
    min_relatedness: float = 0.0,
    calibration: Calibration | None = None,
) -> float:
    """Combined score of one predicate against one event tuple.

    ``min_relatedness`` clamps the measure's noise floor: per-side scores
    strictly below it are treated as 0. With distance-derived relatedness
    even orthogonal vectors score above 0 (Equation 6 never reaches 0),
    so the clamp is how a deployment expresses "this is just noise".
    ``calibration`` maps raw relatedness to correspondence probabilities
    (see :class:`Calibration`).
    """
    attr_sim = _term_similarity(
        predicate.attribute, attribute, predicate.approx_attribute,
        measure, theme_s, theme_e, calibration,
    )
    if attr_sim < min_relatedness or attr_sim == 0.0:
        return 0.0

    if predicate.operator != "=":
        # Extension operators (!=, >, >=, <, <=): non-semantic value test.
        return attr_sim if predicate.evaluate_value(value) else 0.0

    if isinstance(predicate.value, str) and isinstance(value, str):
        value_sim = _term_similarity(
            predicate.value, value, predicate.approx_value,
            measure, theme_s, theme_e, calibration,
        )
    else:
        value_sim = 1.0 if predicate.value == value else 0.0
    if value_sim < min_relatedness:
        return 0.0
    return attr_sim * value_sim


@dataclass(frozen=True)
class SimilarityMatrix:
    """``n x m`` combined similarity scores plus the artifacts they score."""

    subscription: Subscription
    event: Event
    scores: np.ndarray

    def __post_init__(self) -> None:
        n, m = self.scores.shape
        if n != len(self.subscription.predicates) or m != len(self.event.payload):
            raise ValueError("matrix shape does not fit subscription/event")

    @property
    def shape(self) -> tuple[int, int]:
        return self.scores.shape  # type: ignore[return-value]

    def row_probabilities(self) -> np.ndarray:
        """Per-predicate probability space ``P_sigma``: rows normalized.

        Row ``i`` gives ``P(predicate i -> tuple j)`` over tuples. An
        all-zero row (predicate matches nothing) stays all-zero.
        """
        totals = self.scores.sum(axis=1, keepdims=True)
        safe = np.where(totals == 0.0, 1.0, totals)
        return self.scores / safe


def build_similarity_matrix(
    subscription: Subscription,
    event: Event,
    measure: SemanticMeasure,
    *,
    min_relatedness: float = 0.0,
    calibration: Calibration | None = None,
) -> SimilarityMatrix:
    """Score every (predicate, tuple) pair (Figure 4, matrix ``M``)."""
    n = len(subscription.predicates)
    m = len(event.payload)
    with TRACER.span("matcher.similarity_matrix", n=n, m=m):
        scores = np.zeros((n, m))
        for i, predicate in enumerate(subscription.predicates):
            for j, av in enumerate(event.payload):
                scores[i, j] = predicate_tuple_score(
                    predicate,
                    av.attribute,
                    av.value,
                    measure,
                    subscription.theme,
                    event.theme,
                    min_relatedness=min_relatedness,
                    calibration=calibration,
                )
    return SimilarityMatrix(subscription=subscription, event=event, scores=scores)
