"""Mappings between subscription predicates and event tuples (Section 3.5).

A *mapping* σ assigns every predicate of the subscription to a distinct
tuple of the event — exactly ``n`` correspondences for ``n`` predicates.
The matcher needs the most probable mapping (top-1 mode) or the ``k``
most probable ones (top-k mode, which "increases the chance of hitting
the correct mapping" [13]).

Finding the best mapping is a rectangular assignment problem over the
similarity matrix; we maximize the *product* of correspondence scores
(the probabilistic reading) by minimizing summed negative logs with
``scipy.optimize.linear_sum_assignment``. The top-k enumeration uses
Murty's partitioning algorithm with the same solver as its subroutine.

Probability spaces (Section 3.5):

* ``P_sigma`` — per-correspondence: row-normalized similarity, i.e.
  ``P(p -> t) = M[p, t] / sum_t' M[p, t']``;
* ``P`` — over mappings: each mapping's weight is the product of its
  correspondences' ``P_sigma`` values; weights are normalized across the
  enumerated top-k set. (Exact normalization over all ``m!/(m-n)!``
  mappings is a matrix-permanent computation; normalizing over the
  enumerated set is the standard tractable approximation and matches the
  top-k usage the paper inherits from [16].)
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.similarity import SimilarityMatrix
from repro.obs import TRACER

__all__ = [
    "Correspondence",
    "Mapping",
    "assignment_costs",
    "k_best_assignments",
    "single_mapping",
    "top_assignment",
    "top_assignment_prepared",
    "top_k_mappings",
    "top_assignment_score",
]

#: Scores below this are treated as impossible edges in the assignment.
_EPSILON = 1e-12
#: Cost standing in for -log(0): any assignment using such an edge has
#: zero product weight but may still be structurally valid.
_FORBIDDEN_COST = -math.log(_EPSILON)


@dataclass(frozen=True)
class Correspondence:
    """One predicate-to-tuple edge of a mapping, with its probabilities."""

    predicate_index: int
    tuple_index: int
    score: float
    probability: float

    def describe(self, matrix: SimilarityMatrix) -> str:
        predicate = matrix.subscription.predicates[self.predicate_index]
        av = matrix.event.payload[self.tuple_index]
        return f"({predicate} <-> {av})"


@dataclass(frozen=True)
class Mapping:
    """A full mapping σ with its score and probability-space values.

    ``score`` is the geometric mean of correspondence scores — a
    size-independent match strength in ``[0, 1]`` used for ranking and
    thresholding. ``weight`` is the raw product of ``P_sigma``
    probabilities; ``probability`` is ``weight`` normalized across the
    mappings enumerated together (set by :func:`top_k_mappings`).
    """

    correspondences: tuple[Correspondence, ...]
    score: float
    weight: float
    probability: float

    def tuple_for(self, predicate_index: int) -> int:
        for corr in self.correspondences:
            if corr.predicate_index == predicate_index:
                return corr.tuple_index
        raise KeyError(predicate_index)

    def assignment(self) -> tuple[int, ...]:
        """Tuple index chosen for each predicate, in predicate order."""
        ordered = sorted(self.correspondences, key=lambda c: c.predicate_index)
        return tuple(c.tuple_index for c in ordered)

    def describe(self, matrix: SimilarityMatrix) -> str:
        inner = ", ".join(c.describe(matrix) for c in self.correspondences)
        return f"{{{inner}}}"


def _solve(cost: np.ndarray) -> tuple[tuple[int, ...], float] | None:
    """Best assignment of all rows to distinct columns; None if infeasible."""
    n, m = cost.shape
    if n > m:
        return None
    rows, cols = linear_sum_assignment(cost)
    total = float(cost[rows, cols].sum())
    assignment = [0] * n
    for r, c in zip(rows, cols, strict=True):
        assignment[r] = int(c)
    return tuple(assignment), total


def k_best_assignments(
    scores: np.ndarray, k: int
) -> list[tuple[tuple[int, ...], float]]:
    """The ``k`` best row-to-column assignments by product of scores.

    Returns ``(assignment, cost)`` pairs, best first, where
    ``assignment[i]`` is the column for row ``i`` and ``cost`` is the
    summed ``-log`` score (lower is better). Murty's algorithm: pop the
    best solution, then partition its search space by fixing a prefix of
    its edges and excluding the next edge, re-solving each partition.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    n, m = scores.shape
    if n == 0 or n > m:
        return []
    base_cost = -np.log(np.maximum(scores, _EPSILON))
    base_cost = np.minimum(base_cost, _FORBIDDEN_COST)

    first = _solve(base_cost)
    if first is None:
        return []

    results: list[tuple[tuple[int, ...], float]] = []
    seen: set[tuple[int, ...]] = set()
    # Heap entries: (cost, tiebreak, assignment, fixed edges, exclusions).
    counter = 0
    heap: list[tuple[float, int, tuple[int, ...], tuple[tuple[int, int], ...],
                     frozenset[tuple[int, int]]]] = []
    heapq.heappush(heap, (first[1], counter, first[0], (), frozenset()))

    while heap and len(results) < k:
        cost_value, _, assignment, fixed, excluded = heapq.heappop(heap)
        if assignment in seen:
            continue
        seen.add(assignment)
        results.append((assignment, cost_value))

        if len(results) == k:
            # Partitioning the final solution's search space would only
            # push heap entries that are never popped; skip the (k x n
            # solver calls) of wasted work — a large share of top-1 cost.
            break

        fixed_rows = {row for row, _ in fixed}
        free_rows = [row for row in range(n) if row not in fixed_rows]
        partition_fixed = list(fixed)
        partition_excluded = set(excluded)
        for row in free_rows:
            exclusion = (row, assignment[row])
            candidate = _solve_restricted(
                base_cost,
                tuple(partition_fixed),
                frozenset(partition_excluded | {exclusion}),
            )
            if candidate is not None:
                counter += 1
                cand_assignment, cand_cost = candidate
                heapq.heappush(
                    heap,
                    (
                        cand_cost,
                        counter,
                        cand_assignment,
                        tuple(partition_fixed),
                        frozenset(partition_excluded | {exclusion}),
                    ),
                )
            # Deeper partitions keep this row fixed to its current column.
            partition_fixed.append(exclusion)
    return results


def _solve_restricted(
    base_cost: np.ndarray,
    fixed: tuple[tuple[int, int], ...],
    excluded: frozenset[tuple[int, int]],
) -> tuple[tuple[int, ...], float] | None:
    """Solve with some edges forced and some forbidden."""
    n, m = base_cost.shape
    cost = base_cost.copy()
    big = _FORBIDDEN_COST * (n + 1)
    for row, col in excluded:
        cost[row, col] = big
    fixed_cols = {col for _, col in fixed}
    fixed_rows = {row for row, _ in fixed}
    free_rows = [r for r in range(n) if r not in fixed_rows]
    free_cols = [c for c in range(m) if c not in fixed_cols]
    if len(free_rows) > len(free_cols):
        return None
    if free_rows:
        sub = cost[np.ix_(free_rows, free_cols)]
        solved = _solve(sub)
        if solved is None:
            return None
        sub_assignment, _ = solved
    else:
        sub_assignment = ()
    assignment = [0] * n
    total = 0.0
    for row, col in fixed:
        assignment[row] = col
        total += float(base_cost[row, col])
    for local_row, local_col in enumerate(sub_assignment):
        row = free_rows[local_row]
        col = free_cols[local_col]
        if (row, col) in excluded:
            return None
        assignment[row] = col
        total += float(cost[row, col])
    # Reject solutions that were only "feasible" through a forbidden edge.
    if any(cost[r, c] >= big for r, c in enumerate(assignment)):
        return None
    return tuple(assignment), total


def top_assignment_score(scores: np.ndarray) -> float:
    """Geometric-mean score of the single best assignment; 0.0 if none.

    The scores-only fast path of the batch pipeline: solves the same
    assignment problem as :func:`k_best_assignments` with ``k=1`` and
    reproduces :func:`top_k_mappings`'s score arithmetic operation for
    operation, so the result is bit-identical to
    ``top_k_mappings(matrix, k)[0].score`` — without enumerating
    alternatives or materializing mapping objects.
    """
    n, m = scores.shape
    if n == 0 or n > m:
        return 0.0
    cost = -np.log(np.maximum(scores, _EPSILON))
    cost = np.minimum(cost, _FORBIDDEN_COST)
    # Inlined _solve without the assignment-tuple bookkeeping, and a
    # plain sequential product instead of np.prod — numpy's
    # multiply.reduce over a handful of float64s is the same
    # left-to-right chain, so the float result is unchanged while the
    # per-call wrapper overhead (the bulk of scores-only batch cost at
    # small arities) disappears.
    rows, cols = linear_sum_assignment(cost)
    product = 1.0
    for r, c in zip(rows, cols, strict=True):
        product *= float(scores[r, c])
    return float(product ** (1.0 / n))


def assignment_costs(scores: np.ndarray) -> np.ndarray:
    """The ``-log`` cost array every top-assignment solver builds.

    Exposed so batch callers can compute costs for a whole block of
    matrices in one elementwise pass and feed slices to
    :func:`top_assignment_prepared`; the expression is identical to the
    inline construction in :func:`top_assignment` /
    :func:`k_best_assignments`, so precomputed costs are bit-identical.
    Works on arrays of any shape (costs are elementwise).
    """
    return np.minimum(-np.log(np.maximum(scores, _EPSILON)), _FORBIDDEN_COST)


def top_assignment_prepared(
    scores: np.ndarray, cost: np.ndarray
) -> tuple[tuple[int, ...], float] | None:
    """:func:`top_assignment` with the cost array already built.

    ``cost`` must be ``assignment_costs(scores)`` (or a slice of a block
    of them); the solver, bookkeeping and score arithmetic are the same,
    so the result is bit-identical to :func:`top_assignment`.
    """
    n, m = scores.shape
    if n == 0 or n > m:
        return None
    rows, cols = linear_sum_assignment(cost)
    assignment = [0] * n
    product = 1.0
    for r, c in zip(rows, cols, strict=True):
        assignment[r] = int(c)
        product *= float(scores[r, c])
    return tuple(assignment), float(product ** (1.0 / n))


def top_assignment(scores: np.ndarray) -> tuple[tuple[int, ...], float] | None:
    """Best assignment and its geometric-mean score; ``None`` if infeasible.

    :func:`top_assignment_score` for callers that also need the
    assignment itself — the delivery-gated batch path solves once, gates
    on the score, and (in top-1 mode) reuses the assignment via
    :func:`single_mapping` instead of re-solving through
    :func:`top_k_mappings`. Same cost construction, same solver, same
    score arithmetic, so both outputs are bit-identical to the full
    path's top-1 result.
    """
    n, m = scores.shape
    if n == 0 or n > m:
        return None
    cost = -np.log(np.maximum(scores, _EPSILON))
    cost = np.minimum(cost, _FORBIDDEN_COST)
    rows, cols = linear_sum_assignment(cost)
    assignment = [0] * n
    product = 1.0
    for r, c in zip(rows, cols, strict=True):
        assignment[r] = int(c)
        product *= float(scores[r, c])
    return tuple(assignment), float(product ** (1.0 / n))


def single_mapping(matrix: SimilarityMatrix, assignment: tuple[int, ...]) -> Mapping:
    """The :class:`Mapping` that ``top_k_mappings(matrix, 1)[0]`` builds
    for this assignment — field-identical, without the enumeration
    machinery (heap, partitioning, re-solving).

    The arithmetic below mirrors :func:`top_k_mappings` expression for
    expression; with a single enumerated mapping its normalized
    probability is exactly ``1.0`` (``weight / weight``) whenever the
    weight is positive, ``0.0`` otherwise.
    """
    row_probs = matrix.row_probabilities()
    correspondences = tuple(
        Correspondence(
            predicate_index=i,
            tuple_index=j,
            score=float(matrix.scores[i, j]),
            probability=float(row_probs[i, j]),
        )
        for i, j in enumerate(assignment)
    )
    # Sequential products instead of np.prod over small lists: numpy's
    # multiply.reduce is the same left-to-right chain at these lengths,
    # so the floats are unchanged while the array-conversion overhead
    # (a large share of per-survivor cost in the batch path) disappears.
    score_product = 1.0
    weight = 1.0
    for c in correspondences:
        score_product *= c.score
        weight *= c.probability
    geo_mean = (
        float(score_product ** (1.0 / len(correspondences)))
        if correspondences
        else 0.0
    )
    return Mapping(
        correspondences=correspondences,
        score=geo_mean,
        weight=weight,
        probability=1.0 if weight > 0 else 0.0,
    )


def top_k_mappings(matrix: SimilarityMatrix, k: int) -> list[Mapping]:
    """The top-k most probable mappings for a similarity matrix.

    Mappings whose product weight is zero (some correspondence scored 0)
    are still returned — the caller decides via score/threshold — but a
    subscription with more predicates than the event has tuples yields
    no mapping at all (the model requires exactly ``n`` correspondences).
    """
    with TRACER.span("matcher.top_k", k=k):
        assignments = k_best_assignments(matrix.scores, k)
    if not assignments:
        return []
    row_probs = matrix.row_probabilities()
    drafts: list[tuple[tuple[Correspondence, ...], float, float]] = []
    for assignment, _cost in assignments:
        correspondences = tuple(
            Correspondence(
                predicate_index=i,
                tuple_index=j,
                score=float(matrix.scores[i, j]),
                probability=float(row_probs[i, j]),
            )
            for i, j in enumerate(assignment)
        )
        scores = [c.score for c in correspondences]
        geo_mean = float(np.prod(scores) ** (1.0 / len(scores))) if scores else 0.0
        weight = float(np.prod([c.probability for c in correspondences]))
        drafts.append((correspondences, geo_mean, weight))

    total_weight = sum(weight for _, _, weight in drafts)
    mappings = [
        Mapping(
            correspondences=correspondences,
            score=geo_mean,
            weight=weight,
            probability=(weight / total_weight) if total_weight > 0 else 0.0,
        )
        for correspondences, geo_mean, weight in drafts
    ]
    return mappings
