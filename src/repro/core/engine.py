"""Subscription registry + dispatch: the in-process event engine.

:class:`ThematicEventEngine` is the smallest useful host for the
matcher: register subscriptions with callbacks, feed it events, and it
delivers :class:`~repro.core.matcher.MatchResult` objects for every
subscription whose match score clears the threshold. The distributed
broker (:mod:`repro.broker`) embeds one engine per broker node.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.events import Event
from repro.core.matcher import MatchResult, ThematicMatcher
from repro.core.subscriptions import Subscription

__all__ = ["SubscriptionHandle", "EngineStats", "ThematicEventEngine"]

#: Callback invoked on every delivered match.
MatchCallback = Callable[[MatchResult], None]


@dataclass(frozen=True)
class SubscriptionHandle:
    """Opaque ticket for cancelling a registration."""

    subscription_id: int
    subscription: Subscription


@dataclass
class EngineStats:
    """Counters for observability and the throughput benchmarks."""

    events_processed: int = 0
    evaluations: int = 0
    deliveries: int = 0


class ThematicEventEngine:
    """Match-and-dispatch engine over a set of registered subscriptions."""

    def __init__(self, matcher: ThematicMatcher):
        self.matcher = matcher
        self.stats = EngineStats()
        self._subscriptions: dict[int, tuple[Subscription, MatchCallback]] = {}
        self._next_id = 0

    def subscribe(
        self, subscription: Subscription, callback: MatchCallback
    ) -> SubscriptionHandle:
        """Register a subscription; returns a handle for unsubscribing."""
        handle = SubscriptionHandle(self._next_id, subscription)
        self._subscriptions[self._next_id] = (subscription, callback)
        self._next_id += 1
        return handle

    def unsubscribe(self, handle: SubscriptionHandle) -> bool:
        """Remove a registration; True if it was present."""
        return self._subscriptions.pop(handle.subscription_id, None) is not None

    def subscription_count(self) -> int:
        return len(self._subscriptions)

    def process(self, event: Event) -> list[MatchResult]:
        """Match ``event`` against every subscription and dispatch.

        Returns the delivered results (also handed to callbacks), in
        registration order.
        """
        self.stats.events_processed += 1
        delivered: list[MatchResult] = []
        for subscription, callback in list(self._subscriptions.values()):
            self.stats.evaluations += 1
            result = self.matcher.match(subscription, event)
            if result is not None and result.is_match(self.matcher.threshold):
                self.stats.deliveries += 1
                delivered.append(result)
                callback(result)
        return delivered
