"""Subscription registry + dispatch: the in-process event engine.

:class:`ThematicEventEngine` is the smallest useful host for the
matcher: register subscriptions with callbacks, feed it events, and it
delivers :class:`~repro.core.matcher.MatchResult` objects for every
subscription whose match score clears the threshold. The distributed
broker (:mod:`repro.broker`) embeds one engine per broker node.

Dispatch runs through the engine's ``match_batch`` (one event against
the whole registration snapshot per call), which stages the work —
loss-free prefiltering, cross-subscription term-pair dedup, bulk
semantic scoring, assignment — instead of matching pair by pair. The
exact-anchor prefilter prunes pairs whose score is provably 0.0 before
any semantic scoring happens; since delivery only wants results at or
above the matcher's threshold, pruning is loss-free for any positive
threshold (and is disabled automatically at threshold 0.0, where
zero-score results are deliverable).

Configuration is an :class:`EngineConfig`; when a
:class:`~repro.core.degrade.DegradedPolicy` is set, every full batch is
timed through the injected clock and an over-budget (or manually
unhealthy) backend flips dispatch to an exact-anchor fallback pipeline
until a probe recovers — see :mod:`repro.core.degrade`.
"""

from __future__ import annotations

import hashlib
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from threading import Lock
from typing import TYPE_CHECKING, Any

from repro._compat import config_from_kwargs
from repro.core.degrade import DegradedMode, DegradedPolicy
from repro.core.events import Event
from repro.core.matcher import MatchResult, ThematicMatcher
from repro.core.prefilter import PREFILTER_MODES, AnchorIndex, build_neighborhoods
from repro.core.subscriptions import Subscription
from repro.obs import MetricsRegistry
from repro.obs.clock import MONOTONIC_CLOCK, Clock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.broker.reliability import DeliveryPolicy

__all__ = [
    "EngineConfig",
    "EngineStats",
    "SubscriptionHandle",
    "ThematicEventEngine",
    "stable_subscriber_key",
]

#: Callback invoked on every delivered match.
MatchCallback = Callable[[MatchResult], None]


def stable_subscriber_key(sub_id: int, subscription: Subscription | None) -> str:
    """Serializable identity for one registration.

    Handles are identity objects (``eq=False``), which a replayed
    journal cannot reference; this key is a pure function of the
    registration order and the subscription's deterministic string
    form, so a recovered broker re-derives the *same* key for the same
    registration and durable records can name subscribers across
    restarts.
    """
    text = f"{sub_id}|{subscription}" if subscription is not None else f"{sub_id}|"
    return "sub-" + hashlib.sha1(text.encode("utf-8")).hexdigest()[:12]


@dataclass(eq=False)
class SubscriptionHandle:
    """One registration, shared by the engine and every broker front-end.

    Historically the engine and the brokers each grew their own handle
    type (a frozen ``SubscriptionHandle`` ticket here, a mutable
    ``SubscriberHandle`` with an inbox in the broker); this is the
    unified replacement. ``id`` is the registration order (also the
    delivery-order key for the sharded broker's merge), ``policy`` an
    optional per-subscription
    :class:`~repro.broker.reliability.DeliveryPolicy` override, and
    ``inbox``/``callback`` the delivery wiring (unused when the handle
    only serves as an engine ticket).

    Identity semantics (``eq=False``): two registrations of the same
    subscription are distinct subscribers. :meth:`append` and
    :meth:`drain` are lock-guarded so a subscriber may drain its inbox
    while a broker thread is delivering — drains never tear and never
    drop: every delivery lands in exactly one drain, in delivery order.
    """

    id: int
    subscription: Subscription
    policy: "DeliveryPolicy | None" = None
    callback: Callable[..., None] | None = None
    inbox: deque = field(default_factory=deque, repr=False)
    key: str = ""
    on_drain: Callable[[int], None] | None = field(default=None, repr=False)
    _lock: Lock = field(default_factory=Lock, init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.key:
            self.key = stable_subscriber_key(self.id, self.subscription)

    @property
    def subscription_id(self) -> int:
        """Engine-era alias for :attr:`id`."""
        return self.id

    @property
    def subscriber_id(self) -> int:
        """Broker-era alias for :attr:`id`."""
        return self.id

    def append(self, item: Any) -> None:
        """Deliver one item into the inbox (thread-safe)."""
        with self._lock:
            self.inbox.append(item)

    def drain(self) -> list:
        """Remove and return everything currently in the inbox."""
        with self._lock:
            items = list(self.inbox)
            self.inbox.clear()
        # The hook journals the consumption; it runs outside the inbox
        # lock so a journal append can never nest inside it.
        if items and self.on_drain is not None:
            self.on_drain(len(items))
        return items


@dataclass(frozen=True)
class EngineConfig:
    """Typed construction knobs for :class:`ThematicEventEngine`.

    Replaces the sprawling keyword arguments (still accepted through a
    deprecation shim for one release).

    Parameters
    ----------
    prefilter:
        Whether dispatch may use loss-free zero-score pruning (arity +
        exact anchors). Only applies while the matcher's threshold is
        positive; disable to force full scoring of every pair.
    private_pipeline:
        Give this engine its own staged pipeline (when the matcher
        supports one) instead of the matcher's shared lazy instance.
        Required when several engines over the same matcher run
        concurrently — the sharded broker's layout.
    span_tags:
        Extra attributes stamped on every pipeline span (e.g. a shard
        label); only meaningful with ``private_pipeline``.
    degraded:
        Optional :class:`~repro.core.degrade.DegradedPolicy`; when set,
        slow or unhealthy semantic scoring flips dispatch to the
        exact-anchor fallback instead of failing closed.
    prefilter_mode:
        Semantic-anchor candidate phase in front of the batch pipeline
        (:data:`~repro.core.prefilter.PREFILTER_MODES`). ``"exact"``
        (default) keeps only the loss-free structural prefilter;
        ``"semantic"`` adds exact-scan token-neighborhood anchors for
        fully-approximated predicates (lossy — see
        :mod:`repro.core.prefilter`); ``"ann"`` generates the same
        anchors through the LSH index at ``ann_recall_target``. Both
        non-exact modes need a matcher whose measure exposes a semantic
        space.
    ann_recall_target:
        Recall knob for ``prefilter_mode="ann"``; ``1.0`` (default)
        falls back to the exact scan, bit-identical to ``"semantic"``.
    score_store_path:
        Optional path to a persistent precomputed-score snapshot
        (``repro warm-cache``). When set, the engine layers a
        :class:`~repro.semantics.measures.PrecomputedMeasure` over the
        matcher's measure so both the scalar and block-fill scoring
        paths consult the store before any cache or kernel; the
        snapshot's corpus digest is verified against the matcher's
        space when one is reachable.
    warm_on_start:
        Materialize the score store into RAM at construction instead of
        paging it in lazily (requires ``score_store_path``).
    """

    prefilter: bool = True
    private_pipeline: bool = False
    span_tags: dict | None = None
    degraded: DegradedPolicy | None = None
    prefilter_mode: str = "exact"
    ann_recall_target: float = 1.0
    score_store_path: str | None = None
    warm_on_start: bool = False


class EngineStats:
    """Registry-backed counters for observability and the benchmarks.

    Formerly a plain dataclass of bare ints mutated in place — the last
    unsynchronized counter on the hot path, racy once an engine runs
    under :class:`~repro.broker.threaded.ThreadedBroker`. Counters now
    live in a :class:`~repro.obs.registry.MetricsRegistry` (a private
    one by default, or a shared one passed in), so increments are
    thread-safe and :meth:`snapshot` gives readers a coherent, JSON-ready
    view. The old attribute reads (``stats.events_processed`` …) still
    work.
    """

    FIELDS = ("events_processed", "evaluations", "deliveries", "pruned")

    def __init__(
        self, registry: MetricsRegistry | None = None, *, prefix: str = "engine"
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.prefix = prefix
        self._counters = {
            name: self.registry.counter(f"{prefix}.{name}") for name in self.FIELDS
        }

    def inc(self, name: str, amount: int = 1) -> None:
        self._counters[name].inc(amount)

    def snapshot(self) -> dict[str, int]:
        """Thread-safe point-in-time view of all counters."""
        return {name: counter.value for name, counter in self._counters.items()}

    @property
    def events_processed(self) -> int:
        return self._counters["events_processed"].value

    @property
    def evaluations(self) -> int:
        return self._counters["evaluations"].value

    @property
    def deliveries(self) -> int:
        return self._counters["deliveries"].value

    @property
    def pruned(self) -> int:
        """Pairs the loss-free prefilter skipped before semantic scoring."""
        return self._counters["pruned"].value


class ThematicEventEngine:
    """Match-and-dispatch engine over a set of registered subscriptions.

    Parameters
    ----------
    matcher:
        Any :class:`~repro.core.api.MatchEngine` implementation; all
        four Table-1 approaches qualify.
    config:
        An :class:`EngineConfig`. The legacy keyword arguments
        (``prefilter``/``private_pipeline``/``span_tags``) are still
        accepted with a :class:`DeprecationWarning` for one release.
    registry:
        Metrics registry backing :class:`EngineStats`; defaults to a
        private one. The broker passes its own so one snapshot covers
        both layers.
    clock:
        Time source for the degraded-mode latency budget; injectable so
        the fault harness controls every timing decision.
    """

    def __init__(
        self,
        matcher: ThematicMatcher,
        config: EngineConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
        clock: Clock | None = None,
        **legacy,
    ):
        self.config = config_from_kwargs(
            config,
            EngineConfig(),
            (
                "prefilter",
                "private_pipeline",
                "span_tags",
                "prefilter_mode",
                "ann_recall_target",
                "score_store_path",
                "warm_on_start",
            ),
            legacy,
            scope="engine",
        )
        if self.config.prefilter_mode not in PREFILTER_MODES:
            raise ValueError(
                f"unknown prefilter mode {self.config.prefilter_mode!r} "
                f"(expected one of {PREFILTER_MODES})"
            )
        if self.config.warm_on_start and self.config.score_store_path is None:
            raise ValueError("warm_on_start requires score_store_path")
        self.stats = EngineStats(registry)
        self.score_store = None
        if self.config.score_store_path is not None:
            matcher = self._wrap_with_store(matcher)
        self.matcher = matcher
        self._anchors: AnchorIndex | None = None
        self._entry_snapshot: list | None = None
        if self.config.prefilter_mode != "exact":
            space = self._find_space(matcher.measure)
            if space is None:
                raise ValueError(
                    f"prefilter_mode {self.config.prefilter_mode!r} needs a "
                    "matcher whose measure exposes a semantic space"
                )
            self._anchors = AnchorIndex(
                build_neighborhoods(
                    space,
                    mode=self.config.prefilter_mode,
                    recall_target=self.config.ann_recall_target,
                    registry=self.stats.registry,
                )
            )
        self.prefilter = self.config.prefilter
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self._pipeline = None
        if self.config.private_pipeline:
            factory = getattr(matcher, "new_pipeline", None)
            if factory is not None:
                self._pipeline = factory(span_tags=self.config.span_tags)
        self.degraded: DegradedMode | None = None
        self._fallback_matcher = None
        self._fallback_pipeline = None
        if self.config.degraded is not None:
            self._fallback_matcher = self._build_fallback(matcher)
            self._fallback_pipeline = self._fallback_matcher.new_pipeline(
                span_tags={"degraded": True}
            )
            self.degraded = DegradedMode(
                self.config.degraded,
                clock=self.clock,
                registry=self.stats.registry,
            )
        self._subscriptions: dict[int, tuple[Subscription, MatchCallback]] = {}
        self._next_id = 0
        # Registration snapshot, rebuilt only when the set changes —
        # process() used to re-materialize it on every single event.
        self._snapshot: list[tuple[Subscription, MatchCallback]] | None = None

    @staticmethod
    def _build_fallback(matcher: ThematicMatcher) -> ThematicMatcher:
        """Exact-anchor fallback matcher mirroring the matcher's knobs.

        Same ``k``/``threshold``/arity handling, but the measure is
        :class:`~repro.semantics.measures.ExactMeasure` with no
        calibration: a non-identical approximated term scores exactly
        0.0, so only literal anchors carry matches — content-based
        matching at the original matcher's delivery threshold. The
        batch path runs it through a private pipeline; the single-pair
        path (:meth:`match_one`) calls it directly.
        """
        required = ("measure", "k", "threshold", "min_relatedness")
        if any(not hasattr(matcher, name) for name in required):
            raise ValueError(
                "degraded mode needs a ThematicMatcher-family engine "
                f"(got {type(matcher).__name__})"
            )
        from repro.semantics.measures import ExactMeasure

        return ThematicMatcher(
            ExactMeasure(),
            k=matcher.k,
            threshold=matcher.threshold,
            min_relatedness=matcher.min_relatedness,
            calibration=None,
        )

    @staticmethod
    def _find_space(measure):
        """The semantic space behind a (possibly layered) measure.

        Measures wrap each other (``PrecomputedMeasure`` over
        ``CachedMeasure`` over ``ThematicMeasure``); the space sits on
        the innermost scoring measure. Walks ``.space`` / ``.inner`` /
        ``.fallback`` and returns the first corpus-backed space, or
        ``None`` (e.g. ``ExactMeasure``).
        """
        seen: set[int] = set()
        queue = [measure]
        while queue:
            obj = queue.pop()
            if id(obj) in seen:
                continue
            seen.add(id(obj))
            space = getattr(obj, "space", None)
            if space is not None and hasattr(space, "documents"):
                return space
            for attr in ("inner", "fallback"):
                inner = getattr(obj, attr, None)
                if inner is not None:
                    queue.append(inner)
        return None

    def _wrap_with_store(self, matcher: ThematicMatcher) -> ThematicMatcher:
        """Layer the persistent score tier over the matcher's measure.

        Rebuilds the matcher (same type, same knobs) around a
        :class:`~repro.semantics.measures.PrecomputedMeasure` whose
        fallback is the original measure — the store is consulted first
        on both the scalar and block-fill scoring paths, and anything
        it misses flows through the unchanged cache/kernel stack. The
        snapshot's corpus digest is checked against the matcher's space
        whenever one is reachable, so a store warmed against a
        different corpus is rejected at construction, not silently
        consulted.
        """
        required = ("measure", "k", "threshold", "min_relatedness", "calibration")
        if any(not hasattr(matcher, name) for name in required):
            raise ValueError(
                "score_store_path needs a ThematicMatcher-family engine "
                f"(got {type(matcher).__name__})"
            )
        from repro.semantics.cache import PersistentScoreStore
        from repro.semantics.measures import PrecomputedMeasure

        expected = None
        space = self._find_space(matcher.measure)
        if space is not None:
            from repro.semantics.persistence import corpus_digest

            expected = corpus_digest(space.documents)
        store = PersistentScoreStore.load(
            self.config.score_store_path,
            expected_digest=expected,
            registry=self.stats.registry,
        )
        if self.config.warm_on_start:
            store.warm()
        self.score_store = store
        return type(matcher)(
            PrecomputedMeasure(store, fallback=matcher.measure),
            k=matcher.k,
            threshold=matcher.threshold,
            min_relatedness=matcher.min_relatedness,
            calibration=matcher.calibration,
        )

    def subscribe(
        self, subscription: Subscription, callback: MatchCallback
    ) -> SubscriptionHandle:
        """Register a subscription; returns a handle for unsubscribing."""
        handle = SubscriptionHandle(
            self._next_id, subscription, callback=callback
        )
        self._subscriptions[self._next_id] = (subscription, callback)
        if self._anchors is not None:
            self._anchors.add(self._next_id, subscription)
        self._next_id += 1
        self._snapshot = None
        return handle

    def unsubscribe(self, handle: SubscriptionHandle) -> bool:
        """Remove a registration; True if it was present."""
        removed = self._subscriptions.pop(handle.id, None) is not None
        if removed:
            if self._anchors is not None:
                self._anchors.remove(handle.id)
            self._snapshot = None
        return removed

    def subscription_count(self) -> int:
        return len(self._subscriptions)

    def metrics_snapshot(self) -> dict[str, int]:
        """Coherent view of the engine counters (JSON-ready)."""
        return self.stats.snapshot()

    def _registrations(self) -> list[tuple[Subscription, MatchCallback]]:
        if self._snapshot is None:
            self._snapshot = list(self._subscriptions.values())
            if self._anchors is not None:
                # Anchor entries aligned with the snapshot (same dict,
                # same iteration order).
                self._entry_snapshot = [
                    self._anchors.entry(key) for key in self._subscriptions
                ]
        return self._snapshot

    def _anchor_survivors(
        self,
        registrations: list[tuple[Subscription, MatchCallback]],
        events: list[Event],
    ) -> list[tuple[Subscription, MatchCallback]]:
        """Registrations any event in the batch keeps after the anchor phase.

        Per-event anchor decisions are OR-ed across the batch so the
        grid stays rectangular: a registration survives when at least
        one event keeps it, which makes the batch path never lossier
        than the equivalent sequence of single-event calls. Pairs
        skipped (dropped registrations x batch size) are charged to the
        ``pruned`` counter — they never reach semantic scoring.
        """
        assert self._anchors is not None and self._entry_snapshot is not None
        union = [False] * len(registrations)
        for event in events:
            flags = self._anchors.survivor_flags(self._entry_snapshot, event)
            union = [kept or flag for kept, flag in zip(union, flags)]
        survivors = [reg for reg, kept in zip(registrations, union) if kept]
        self.stats.inc(
            "pruned", (len(registrations) - len(survivors)) * len(events)
        )
        return survivors

    def match_one(self, subscription: Subscription, event: Event) -> MatchResult | None:
        """Per-pair match through this engine (replay, ad-hoc queries).

        Counts the evaluation but does not dispatch; returns the result
        only when it clears the matcher's threshold.

        While the degraded controller is tripped (or the backend is
        marked unhealthy) the pair runs the exact-anchor fallback
        matcher, like every batch, so replay traffic cannot sneak past
        the shield onto the slow semantic backend. Trip/probe/recovery
        accounting stays batch-driven: the latency budget is sized per
        batch, so single-pair durations are never fed to the controller
        (see
        :meth:`~repro.core.degrade.DegradedMode.note_fallback_match`).
        """
        self.stats.inc("evaluations")
        matcher = self.matcher
        if self.degraded is not None and self.degraded.degraded:
            self.degraded.note_fallback_match()
            matcher = self._fallback_matcher
        result = matcher.match(subscription, event)
        if result is None or not result.is_match(matcher.threshold):
            return None
        return result

    def _run_batch(
        self,
        subscriptions: list[Subscription],
        events: list[Event],
        *,
        prune_zero: bool,
        deliver_threshold: float | None = None,
    ):
        """One ``match_batch`` through this engine's pipeline choice.

        A private pipeline takes precedence; otherwise the matcher's own
        ``match_batch`` runs (with the delivery-gated mode forwarded only
        when the matcher family supports it — Boolean baselines build
        full results either way, and dispatch filters identically).

        With a degraded policy configured the full path is timed and an
        over-budget (or manually unhealthy) backend routes subsequent
        batches to the exact-anchor fallback; recovery probes re-enter
        the full path (see :class:`~repro.core.degrade.DegradedMode`).
        """
        if self.degraded is not None:
            if self.degraded.use_fallback():
                self.degraded.note_fallback_batch()
                return self._fallback_pipeline.run(
                    subscriptions,
                    events,
                    prune_zero=prune_zero,
                    deliver_threshold=deliver_threshold,
                )
            started = self.clock.monotonic()
            batch = self._run_full(
                subscriptions,
                events,
                prune_zero=prune_zero,
                deliver_threshold=deliver_threshold,
            )
            self.degraded.observe(self.clock.monotonic() - started)
            return batch
        return self._run_full(
            subscriptions,
            events,
            prune_zero=prune_zero,
            deliver_threshold=deliver_threshold,
        )

    def _run_full(
        self,
        subscriptions: list[Subscription],
        events: list[Event],
        *,
        prune_zero: bool,
        deliver_threshold: float | None = None,
    ):
        if self._pipeline is not None:
            return self._pipeline.run(
                subscriptions,
                events,
                prune_zero=prune_zero,
                deliver_threshold=deliver_threshold,
            )
        if deliver_threshold is not None and hasattr(self.matcher, "new_pipeline"):
            return self.matcher.match_batch(
                subscriptions,
                events,
                prune_zero=prune_zero,
                deliver_threshold=deliver_threshold,
            )
        return self.matcher.match_batch(subscriptions, events, prune_zero=prune_zero)

    def snapshot_batch(
        self, events: list[Event], *, deliverable_only: bool = False
    ):
        """Match a micro-batch against the registration snapshot — no
        dispatch.

        The sharded broker's unit of work: returns the registration
        snapshot the batch was matched against (so the caller can merge
        per-shard results into a globally ordered delivery stream) and
        the :class:`~repro.core.api.BatchMatchResult`, or ``None`` when
        there was nothing to match. ``deliverable_only`` materializes
        result objects only for pairs at or above the matcher's
        threshold — exactly the set dispatch would deliver — via the
        pipeline's delivery-gated mode.
        """
        registrations = self._registrations()
        events = list(events)
        self.stats.inc("events_processed", len(events))
        self.stats.inc("evaluations", len(registrations) * len(events))
        if not registrations or not events:
            return registrations, None
        if self._anchors is not None:
            registrations = self._anchor_survivors(registrations, events)
            if not registrations:
                return registrations, None
        prune = self.prefilter and self.matcher.threshold > 0
        deliver = self.matcher.threshold if deliverable_only else None
        batch = self._run_batch(
            [subscription for subscription, _ in registrations],
            events,
            prune_zero=prune,
            deliver_threshold=deliver,
        )
        if batch.stats is not None:
            self.stats.inc("pruned", batch.stats.pruned)
        return registrations, batch

    def process(self, event: Event) -> list[MatchResult]:
        """Match ``event`` against every subscription and dispatch.

        Returns the delivered results (also handed to callbacks), in
        registration order. One staged ``match_batch`` call covers the
        whole registration snapshot; ``evaluations`` counts the pairs
        considered (pre-prefilter) and ``pruned`` how many of those the
        loss-free prefilter settled without semantic scoring.
        """
        registrations = self._registrations()
        self.stats.inc("events_processed")
        self.stats.inc("evaluations", len(registrations))
        if not registrations:
            return []
        if self._anchors is not None:
            registrations = self._anchor_survivors(registrations, [event])
            if not registrations:
                return []
        prune = self.prefilter and self.matcher.threshold > 0
        batch = self._run_batch(
            [subscription for subscription, _ in registrations],
            [event],
            prune_zero=prune,
        )
        batch_stats = batch.stats
        if batch_stats is not None:
            self.stats.inc("pruned", batch_stats.pruned)
        delivered: list[MatchResult] = []
        threshold = self.matcher.threshold
        for index, (_, callback) in enumerate(registrations):
            result = batch.result(index, 0)
            if result is not None and result.is_match(threshold):
                self.stats.inc("deliveries")
                delivered.append(result)
                callback(result)
        return delivered

    def process_batch(self, events: list[Event]) -> list[list[MatchResult]]:
        """Match and dispatch a micro-batch; one result list per event.

        The batched counterpart of :meth:`process`: one delivery-gated
        ``match_batch`` covers the whole (snapshot × batch) grid, then
        callbacks fire per event in arrival order, each in registration
        order — the same deliveries, in the same per-subscriber order,
        as the equivalent sequence of :meth:`process` calls.
        """
        registrations, batch = self.snapshot_batch(events, deliverable_only=True)
        delivered: list[list[MatchResult]] = [[] for _ in events]
        if batch is None:
            return delivered
        threshold = self.matcher.threshold
        for j in range(len(events)):
            for index, (_, callback) in enumerate(registrations):
                result = batch.result(index, j)
                if result is not None and result.is_match(threshold):
                    self.stats.inc("deliveries")
                    delivered[j].append(result)
                    callback(result)
        return delivered
