"""Core thematic event processing model (Sections 2–4 of the paper)."""

from repro.core.codec import (
    dumps,
    event_from_dict,
    event_to_dict,
    loads,
    subscription_from_dict,
    subscription_to_dict,
)
from repro.core.engine import EngineStats, SubscriptionHandle, ThematicEventEngine
from repro.core.events import AttributeValue, Event, Value
from repro.core.language import (
    ParseError,
    format_event,
    format_subscription,
    parse_event,
    parse_subscription,
)
from repro.core.mapping import Correspondence, Mapping, k_best_assignments, top_k_mappings
from repro.core.matcher import MatchResult, ThematicMatcher
from repro.core.prefilter import PrefilterStats, TokenNeighborhoods, TwoPhaseMatcher
from repro.core.similarity import (
    Calibration,
    SimilarityMatrix,
    build_similarity_matrix,
    predicate_tuple_score,
)
from repro.core.subscriptions import OPERATORS, Predicate, Subscription

__all__ = [
    "AttributeValue",
    "OPERATORS",
    "Calibration",
    "Correspondence",
    "EngineStats",
    "Event",
    "Mapping",
    "MatchResult",
    "ParseError",
    "Predicate",
    "PrefilterStats",
    "SimilarityMatrix",
    "TokenNeighborhoods",
    "TwoPhaseMatcher",
    "Subscription",
    "SubscriptionHandle",
    "ThematicEventEngine",
    "ThematicMatcher",
    "Value",
    "build_similarity_matrix",
    "dumps",
    "event_from_dict",
    "event_to_dict",
    "loads",
    "subscription_from_dict",
    "subscription_to_dict",
    "format_event",
    "format_subscription",
    "k_best_assignments",
    "parse_event",
    "parse_subscription",
    "predicate_tuple_score",
    "top_k_mappings",
]
