"""Core thematic event processing model (Sections 2–4 of the paper)."""

from repro.core.api import BatchMatchResult, MatchEngine, pairwise_match_batch
from repro.core.codec import (
    dumps,
    event_from_dict,
    event_to_dict,
    loads,
    subscription_from_dict,
    subscription_to_dict,
)
from repro.core.degrade import DegradedMode, DegradedPolicy, DowngradeEvent
from repro.core.engine import (
    EngineConfig,
    EngineStats,
    SubscriptionHandle,
    ThematicEventEngine,
)
from repro.core.events import AttributeValue, Event, Value
from repro.core.language import (
    ParseError,
    format_event,
    format_subscription,
    parse_event,
    parse_subscription,
)
from repro.core.mapping import (
    Correspondence,
    Mapping,
    k_best_assignments,
    top_assignment_score,
    top_k_mappings,
)
from repro.core.matcher import MatchResult, ThematicMatcher
from repro.core.pipeline import BatchStats, StagedBatchPipeline
from repro.core.prefilter import PrefilterStats, TokenNeighborhoods, TwoPhaseMatcher
from repro.core.similarity import (
    Calibration,
    SimilarityMatrix,
    build_similarity_matrix,
    predicate_tuple_score,
)
from repro.core.subscriptions import OPERATORS, Predicate, Subscription

__all__ = [
    "AttributeValue",
    "BatchMatchResult",
    "BatchStats",
    "OPERATORS",
    "Calibration",
    "Correspondence",
    "DegradedMode",
    "DegradedPolicy",
    "DowngradeEvent",
    "EngineConfig",
    "EngineStats",
    "Event",
    "Mapping",
    "MatchEngine",
    "MatchResult",
    "ParseError",
    "Predicate",
    "PrefilterStats",
    "SimilarityMatrix",
    "StagedBatchPipeline",
    "TokenNeighborhoods",
    "TwoPhaseMatcher",
    "Subscription",
    "SubscriptionHandle",
    "ThematicEventEngine",
    "ThematicMatcher",
    "Value",
    "build_similarity_matrix",
    "dumps",
    "event_from_dict",
    "event_to_dict",
    "loads",
    "subscription_from_dict",
    "subscription_to_dict",
    "format_event",
    "format_subscription",
    "k_best_assignments",
    "pairwise_match_batch",
    "parse_event",
    "parse_subscription",
    "predicate_tuple_score",
    "top_assignment_score",
    "top_k_mappings",
]
