"""Synthetic Wikipedia-like corpus generator.

The paper builds its ESA space from the 2013 Wikipedia dump. A full
Wikipedia is neither available offline nor needed: ESA only depends on
*which terms co-occur in which documents*. This generator produces a
corpus with precisely controlled co-occurrence statistics, derived from
the thesaurus:

* **concept articles** — a few documents per concept in which the
  concept's synonym ring co-occurs, along with a sample of the domain's
  top terms and a couple of sibling concepts. These make synonyms
  distributionally close and anchor the domain's top terms to the
  domain's documents (so thematic bases select the right sub-corpus);
* **domain overview articles** — top terms together with many of the
  domain's preferred terms; the hub documents of each domain;
* **confuser articles** — mix two concepts from *different* domains
  without any top terms. They create the spurious cross-domain
  relatedness that hurts the non-thematic matcher; thematic projection
  drops them whenever themes exclude them, which is the mechanism behind
  the paper's effectiveness gain;
* **general reference articles** — digest documents sampling several
  concept rings across domains together with a few top terms. They model
  Wikipedia's density: any theme tag's basis includes a slice of them,
  so even a narrow theme keeps (weaker) evidence about every domain's
  vocabulary rather than zeroing foreign terms outright;
* **noise articles** — filler-only documents adding background mass.

Everything is driven by a seeded :class:`random.Random`, so a given
``(thesaurus, CorpusConfig)`` always yields the identical corpus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from repro.knowledge.eurovoc import AFFINITIES, CONTRAST_PAIRS, default_thesaurus
from repro.knowledge.thesaurus import Thesaurus
from repro.semantics.documents import Document, DocumentSet

__all__ = ["CorpusConfig", "build_corpus", "default_corpus", "FILLER_WORDS"]

#: Neutral vocabulary for padding documents. Deliberately disjoint from
#: the thesaurus vocabulary so filler never creates domain relatedness.
FILLER_WORDS: tuple[str, ...] = (
    "analysis", "method", "result", "finding", "overview", "summary",
    "history", "background", "example", "general", "common", "various",
    "century", "decade", "development", "research", "study", "survey",
    "group", "number", "period", "several", "important", "major",
    "typical", "model", "approach", "process", "often", "usually",
    "within", "between", "around", "article", "context", "detail",
    "aspect", "feature", "element", "factor", "practice", "theory",
    "notably", "widely", "known", "described", "discussed", "considered",
    "proposed", "introduced", "established", "observed", "reported",
    "section", "chapter", "figure", "table", "source", "reference",
    "author", "editor", "review", "journal", "volume", "edition",
)


@dataclass(frozen=True)
class CorpusConfig:
    """Knobs for corpus size and mixture.

    The defaults produce ~1,700 documents — enough for stable distances
    and fast tests. ``paper_scale()`` produces a denser corpus for the
    full-dimension benchmark runs. docs/corpus.md records what each knob
    is for and how the defaults were calibrated.
    """

    docs_per_concept: int = 3
    overview_docs_per_domain: int = 5
    confuser_docs: int = 200
    concepts_per_confuser_doc: int = 5
    contrast_docs_per_pair: int = 36
    noise_docs: int = 48
    general_docs: int = 150
    concepts_per_general_doc: int = 8
    tops_per_general_doc: int = 3
    bridge_docs_per_affinity: int = 3
    top_terms_per_concept_doc: int = 3
    siblings_per_concept_doc: int = 2
    filler_per_doc: int = 12
    term_repetitions: int = 2
    seed: int = 7

    @classmethod
    def paper_scale(cls) -> "CorpusConfig":
        return cls(
            docs_per_concept=5,
            overview_docs_per_domain=8,
            confuser_docs=300,
            contrast_docs_per_pair=56,
            noise_docs=96,
            general_docs=300,
            bridge_docs_per_affinity=5,
        )


#: Concepts used across every topical domain: the trend/status reporting
#: vocabulary. Their concept articles sample top terms from *all*
#: domains (a Wikipedia article mentioning "increased" exists in every
#: topical slice), so every thematic basis retains the synonym evidence
#: that disambiguates a qualifier flip from a qualifier synonym.
UNIVERSAL_CONCEPTS: frozenset[str] = frozenset(
    {"increased", "decreased", "high", "low", "occupied", "free"}
)


def _concept_documents(
    thesaurus: Thesaurus, config: CorpusConfig, rng: random.Random
) -> list[Document]:
    all_tops = [
        top
        for domain in thesaurus.domains()
        for top in thesaurus.micro(domain).top_terms
    ]
    docs: list[Document] = []
    for domain in thesaurus.domains():
        micro = thesaurus.micro(domain)
        preferred_pool = [c.preferred for c in micro.concepts]
        for concept in micro.concepts:
            universal = concept.preferred in UNIVERSAL_CONCEPTS
            copies = config.docs_per_concept * (3 if universal else 1)
            for copy in range(copies):
                words: list[str] = []
                for term in concept.terms():
                    words.extend([term] * config.term_repetitions)
                words.extend(concept.related)
                top_pool = all_tops if universal else list(micro.top_terms)
                words.extend(
                    rng.sample(
                        top_pool,
                        min(config.top_terms_per_concept_doc, len(top_pool)),
                    )
                )
                siblings = [p for p in preferred_pool if p != concept.preferred]
                if siblings:
                    words.extend(
                        rng.sample(
                            siblings,
                            min(config.siblings_per_concept_doc, len(siblings)),
                        )
                    )
                words.extend(rng.choices(FILLER_WORDS, k=config.filler_per_doc))
                rng.shuffle(words)
                docs.append(
                    Document(
                        name=f"{domain}/{concept.preferred}/{copy}",
                        text=" ".join(words),
                    )
                )
    return docs


def _overview_documents(
    thesaurus: Thesaurus, config: CorpusConfig, rng: random.Random
) -> list[Document]:
    docs: list[Document] = []
    for domain in thesaurus.domains():
        micro = thesaurus.micro(domain)
        preferred_pool = [c.preferred for c in micro.concepts]
        for copy in range(config.overview_docs_per_domain):
            words = list(micro.top_terms) * 2
            words.extend(
                rng.sample(preferred_pool, min(10, len(preferred_pool)))
            )
            words.extend(rng.choices(FILLER_WORDS, k=config.filler_per_doc))
            rng.shuffle(words)
            docs.append(
                Document(name=f"{domain}/overview/{copy}", text=" ".join(words))
            )
    return docs


def _bridge_documents(
    thesaurus: Thesaurus, config: CorpusConfig, rng: random.Random
) -> list[Document]:
    """Cross-domain affinity articles (see AFFINITIES in eurovoc).

    Each bridge document carries both concepts' synonym rings plus top
    terms from *both* domains, so both domains' thematic bases include
    it — the overlap that lets differently-themed projections still
    measure a meaningful distance.
    """
    docs: list[Document] = []
    concept_by_key = {
        (domain, concept.preferred): concept
        for domain in thesaurus.domains()
        for concept in thesaurus.micro(domain).concepts
    }
    for pair_index, ((dom_a, pref_a), (dom_b, pref_b)) in enumerate(AFFINITIES):
        concept_a = concept_by_key[(dom_a, pref_a)]
        concept_b = concept_by_key[(dom_b, pref_b)]
        tops_a = thesaurus.micro(dom_a).top_terms
        tops_b = thesaurus.micro(dom_b).top_terms
        for copy in range(config.bridge_docs_per_affinity):
            words: list[str] = []
            for term in concept_a.terms():
                words.extend([term] * config.term_repetitions)
            for term in concept_b.terms():
                words.extend([term] * config.term_repetitions)
            words.extend(rng.sample(tops_a, min(2, len(tops_a))))
            words.extend(rng.sample(tops_b, min(2, len(tops_b))))
            words.extend(rng.choices(FILLER_WORDS, k=config.filler_per_doc))
            rng.shuffle(words)
            docs.append(
                Document(
                    name=f"bridge/{pair_index}/{pref_a}--{pref_b}/{copy}",
                    text=" ".join(words),
                )
            )
    return docs


#: Concepts that actually occur in IoT event payloads (Table 3
#: capabilities, devices, statuses, locations). Confuser documents focus
#: on this vocabulary: cross-domain tabloid/news-style articles mention
#: the words people publish events about, not arbitrary thesaurus tails,
#: and it is spurious relatedness *between event terms* that produces
#: false matches for the non-thematic matcher.
FOCUS_TERMS: tuple[str, ...] = (
    "solar radiation", "particles", "speed", "wind direction", "wind speed",
    "temperature", "water flow", "atmospheric pressure", "noise", "ozone",
    "rainfall", "parking", "radiation par", "co", "ground temperature",
    "light", "no2", "soil moisture tension", "relative humidity",
    "energy consumption", "cpu usage", "memory usage", "kilowatt hour",
    "device", "refrigerator", "air conditioner", "washing machine",
    "dishwasher", "microwave", "kettle", "heater", "lamp", "oven", "fan",
    "computer", "server", "monitor", "printer", "television", "mobile phone",
    "occupied", "free", "vehicle", "bus", "bicycle", "traffic",
    "room", "office", "building", "zone", "city", "country",
    "galway", "dublin", "santander", "bordeaux",
    "ireland", "spain", "france", "europe", "sensor", "measurement unit",
)


def _confuser_documents(
    thesaurus: Thesaurus, config: CorpusConfig, rng: random.Random
) -> list[Document]:
    """Cross-domain articles with no top terms (see module docstring).

    Each confuser mixes the synonym rings of several *event-vocabulary*
    concepts from at least two domains, with the same term repetition as
    genuine concept articles — so the spurious co-occurrence it creates
    is as strong as real synonym evidence, but lives outside every
    thematic basis (confusers carry no top terms).
    """
    focus: list[tuple[str, object]] = []
    focus_set = {term for term in FOCUS_TERMS}
    for domain in thesaurus.domains():
        for concept in thesaurus.micro(domain).concepts:
            if concept.preferred in focus_set:
                focus.append((domain, concept))
    if not focus:  # custom thesauri without the IoT vocabulary
        focus = [
            (domain, concept)
            for domain in thesaurus.domains()
            for concept in thesaurus.micro(domain).concepts
        ]
    docs: list[Document] = []
    for i in range(config.confuser_docs):
        picked = rng.sample(focus, min(config.concepts_per_confuser_doc, len(focus)))
        if len({domain for domain, _ in picked}) < 2:
            continue  # a same-domain mix is just a weaker concept article
        words: list[str] = []
        for _, concept in picked:
            for term in concept.terms():
                words.extend([term] * config.term_repetitions)
        words.extend(rng.choices(FILLER_WORDS, k=config.filler_per_doc))
        rng.shuffle(words)
        docs.append(Document(name=f"confuser/{i}", text=" ".join(words)))
    return docs


def _contrast_documents(
    thesaurus: Thesaurus, config: CorpusConfig, rng: random.Random
) -> list[Document]:
    """Contrast articles: "rose and fell", "Galway and Dublin" prose.

    Each CONTRAST_PAIR gets dedicated documents where the two *preferred*
    terms co-occur heavily — generic prose uses the common surface forms,
    not the topical synonyms — and with no top terms. Consequences, by
    construction:

    * in the full space the contrasting pair becomes about as related as
      a genuine synonym pair (these documents dominate both terms'
      distributions), which is the classic distributional-antonymy
      failure the non-thematic matcher inherits;
    * every thematic basis excludes these documents, so the projected
      space keeps synonyms related and contrasts apart — the concrete
      mechanism behind the paper's effectiveness gain.
    """
    concept_by_key = {
        (domain, concept.preferred): concept
        for domain in thesaurus.domains()
        for concept in thesaurus.micro(domain).concepts
    }
    docs: list[Document] = []
    for pair_index, (key_a, key_b) in enumerate(CONTRAST_PAIRS):
        if key_a not in concept_by_key or key_b not in concept_by_key:
            continue
        concept_a, concept_b = concept_by_key[key_a], concept_by_key[key_b]
        for copy in range(config.contrast_docs_per_pair):
            words: list[str] = []
            for concept in (concept_a, concept_b):
                words.extend([concept.preferred] * (config.term_repetitions + 1))
            words.extend(rng.choices(FILLER_WORDS, k=config.filler_per_doc))
            rng.shuffle(words)
            docs.append(
                Document(
                    name=f"contrast/{pair_index}/{copy}", text=" ".join(words)
                )
            )
    return docs


def _general_documents(
    thesaurus: Thesaurus, config: CorpusConfig, rng: random.Random
) -> list[Document]:
    """Cross-domain digest articles (see module docstring).

    Every document samples whole concept rings, so in-basis synonym
    evidence survives projection by any theme whose tags select the
    document — while the cross-concept co-occurrence it adds is diluted
    over many random combinations.
    """
    all_concepts = [
        concept
        for domain in thesaurus.domains()
        for concept in thesaurus.micro(domain).concepts
    ]
    all_tops = [
        top for domain in thesaurus.domains()
        for top in thesaurus.micro(domain).top_terms
    ]
    docs: list[Document] = []
    for i in range(config.general_docs):
        chosen = rng.sample(
            all_concepts, min(config.concepts_per_general_doc, len(all_concepts))
        )
        words: list[str] = []
        for concept in chosen:
            words.extend(concept.terms())
        words.extend(
            rng.sample(all_tops, min(config.tops_per_general_doc, len(all_tops)))
        )
        words.extend(rng.choices(FILLER_WORDS, k=config.filler_per_doc))
        rng.shuffle(words)
        docs.append(Document(name=f"general/{i}", text=" ".join(words)))
    return docs


def _noise_documents(config: CorpusConfig, rng: random.Random) -> list[Document]:
    return [
        Document(
            name=f"noise/{i}",
            text=" ".join(rng.choices(FILLER_WORDS, k=config.filler_per_doc * 3)),
        )
        for i in range(config.noise_docs)
    ]


def build_corpus(
    thesaurus: Thesaurus | None = None, config: CorpusConfig | None = None
) -> DocumentSet:
    """Deterministically generate the synthetic corpus ``D``."""
    thesaurus = thesaurus if thesaurus is not None else default_thesaurus()
    config = config if config is not None else CorpusConfig()
    rng = random.Random(config.seed)
    docs: list[Document] = []
    docs.extend(_concept_documents(thesaurus, config, rng))
    docs.extend(_overview_documents(thesaurus, config, rng))
    docs.extend(_bridge_documents(thesaurus, config, rng))
    docs.extend(_confuser_documents(thesaurus, config, rng))
    docs.extend(_contrast_documents(thesaurus, config, rng))
    docs.extend(_general_documents(thesaurus, config, rng))
    docs.extend(_noise_documents(config, rng))
    return DocumentSet.from_documents(docs)


@lru_cache(maxsize=1)
def default_corpus() -> DocumentSet:
    """Shared default corpus built from the default thesaurus."""
    return build_corpus()
