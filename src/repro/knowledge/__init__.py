"""Knowledge substrates: the EuroVoc-like thesaurus and synthetic corpus.

These replace the paper's two external knowledge resources (the EuroVoc
thesaurus and the 2013 Wikipedia dump) with deterministic, offline
equivalents. See DESIGN.md for the substitution rationale.
"""

from repro.knowledge.corpus import (
    FILLER_WORDS,
    CorpusConfig,
    build_corpus,
    default_corpus,
)
from repro.knowledge.eurovoc import AFFINITIES, DOMAINS, build_eurovoc, default_thesaurus
from repro.knowledge.rewrite import (
    Canonicalizer,
    TermSpan,
    find_term_spans,
    replace_span,
    single_replacements,
)
from repro.knowledge.thesaurus import Concept, MicroThesaurus, Thesaurus

__all__ = [
    "AFFINITIES",
    "Canonicalizer",
    "Concept",
    "CorpusConfig",
    "DOMAINS",
    "FILLER_WORDS",
    "MicroThesaurus",
    "TermSpan",
    "Thesaurus",
    "build_corpus",
    "build_eurovoc",
    "default_corpus",
    "default_thesaurus",
    "find_term_spans",
    "replace_span",
    "single_replacements",
]
