"""Term-level rewriting of event/subscription text against a thesaurus.

Three consumers share this machinery:

* **semantic expansion** (Section 5.2.2) replaces a thesaurus term
  embedded in a value ("increased *energy consumption* event") with a
  synonym or related term;
* the **concept-based rewriting baseline** (Section 1.2.2 / [16]'s
  WordNet comparator) enumerates such variants of subscription terms;
* the **ground truth** (Section 5.2.3) must decide whether two surface
  terms are expansion-equivalent, which it does by *canonicalizing*
  every recognized span back to a representative term.

Spans are found by greedy longest-match over normalized tokens, so
multi-word thesaurus terms win over their single-word prefixes.

Canonicalization uses an equivalence relation over concepts: two
concepts merge when one lists a term of the other as *related* (the
paper's expansion treats synonyms and related terms alike, so the ground
truth must too). The relation is computed once per
:class:`Canonicalizer` with a union–find pass.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.knowledge.thesaurus import Thesaurus
from repro.semantics.tokenize import normalize_term

__all__ = ["TermSpan", "find_term_spans", "replace_span", "single_replacements", "Canonicalizer"]

#: Longest multi-word term we try to match, in tokens.
_MAX_SPAN = 4


@dataclass(frozen=True)
class TermSpan:
    """A recognized thesaurus term occurrence inside a longer text.

    ``start``/``end`` index the normalized token sequence (``end`` is
    exclusive); ``term`` is the normalized matched term; ``replacements``
    are the normalized alternative surface forms usable in its place.
    """

    start: int
    end: int
    term: str
    replacements: tuple[str, ...]


def _term_table(
    thesaurus: Thesaurus, domains: Iterable[str] | None, include_related: bool
) -> dict[str, tuple[str, ...]]:
    """Normalized term -> replacement terms, over the selected domains."""
    names = tuple(domains) if domains is not None else thesaurus.domains()
    table: dict[str, set[str]] = {}
    for name in names:
        for concept in thesaurus.micro(name).concepts:
            ring = concept.expansion_terms() if include_related else concept.terms()
            normalized_ring = [normalize_term(t) for t in ring]
            for term in normalized_ring:
                bucket = table.setdefault(term, set())
                bucket.update(t for t in normalized_ring if t != term)
    return {term: tuple(sorted(reps)) for term, reps in table.items()}


def find_term_spans(
    text: str,
    thesaurus: Thesaurus,
    domains: Iterable[str] | None = None,
    *,
    include_related: bool = True,
) -> tuple[TermSpan, ...]:
    """Greedy longest-match recognition of thesaurus terms in ``text``.

    Matches never overlap; scanning is left-to-right and prefers the
    longest term starting at each position.
    """
    table = _term_table(thesaurus, domains, include_related)
    tokens = normalize_term(text).split()
    spans: list[TermSpan] = []
    i = 0
    while i < len(tokens):
        matched = False
        for length in range(min(_MAX_SPAN, len(tokens) - i), 0, -1):
            candidate = " ".join(tokens[i : i + length])
            replacements = table.get(candidate)
            if replacements is not None:
                spans.append(
                    TermSpan(
                        start=i,
                        end=i + length,
                        term=candidate,
                        replacements=replacements,
                    )
                )
                i += length
                matched = True
                break
        if not matched:
            i += 1
    return tuple(spans)


def replace_span(text: str, span: TermSpan, replacement: str) -> str:
    """Rewrite ``text`` with ``replacement`` substituted at ``span``.

    Output is in normalized form (the spans index normalized tokens).
    """
    tokens = normalize_term(text).split()
    rebuilt = tokens[: span.start] + replacement.split() + tokens[span.end :]
    return " ".join(rebuilt)


def single_replacements(
    text: str,
    thesaurus: Thesaurus,
    domains: Iterable[str] | None = None,
    *,
    include_related: bool = True,
) -> tuple[str, ...]:
    """Every variant of ``text`` with exactly one span replaced.

    Deterministic order (span order, then replacement order); never
    includes ``text`` itself.
    """
    variants: list[str] = []
    seen: set[str] = {normalize_term(text)}
    for span in find_term_spans(
        text, thesaurus, domains, include_related=include_related
    ):
        for replacement in span.replacements:
            variant = replace_span(text, span, replacement)
            if variant not in seen:
                seen.add(variant)
                variants.append(variant)
    return tuple(variants)


class Canonicalizer:
    """Maps surface text to a canonical form that expansion cannot change.

    Every recognized thesaurus span is replaced by the representative
    term of its concept-equivalence class (union–find over synonym rings
    and related-term links). Two texts are expansion-equivalent exactly
    when their canonical forms coincide — the ground-truth relation of
    Section 5.2.3.
    """

    def __init__(
        self, thesaurus: Thesaurus, domains: Iterable[str] | None = None
    ):
        self.thesaurus = thesaurus
        self.domains = tuple(domains) if domains is not None else thesaurus.domains()
        self._representative = self._build_representatives()
        self._cache: dict[str, str] = {}

    def _build_representatives(self) -> dict[str, str]:
        parent: dict[str, str] = {}

        def find(term: str) -> str:
            root = term
            while parent.setdefault(root, root) != root:
                root = parent[root]
            while parent[term] != root:  # path compression
                parent[term], term = root, parent[term]
            return root

        def union(a: str, b: str) -> None:
            parent[find(a)] = find(b)

        for name in self.domains:
            for concept in self.thesaurus.micro(name).concepts:
                anchor = normalize_term(concept.preferred)
                for term in concept.expansion_terms():
                    union(normalize_term(term), anchor)
        # Deterministic representative: lexicographically smallest member.
        members: dict[str, list[str]] = {}
        for term in list(parent):
            members.setdefault(find(term), []).append(term)
        representative: dict[str, str] = {}
        for group in members.values():
            rep = min(group)
            for term in group:
                representative[term] = rep
        return representative

    def canonical_term(self, term: str) -> str:
        """Representative of ``term``'s equivalence class (or itself)."""
        key = normalize_term(term)
        return self._representative.get(key, key)

    def _rewrite_once(self, key: str) -> str:
        """One left-to-right pass replacing spans with representatives."""
        spans = find_term_spans(
            key, self.thesaurus, self.domains, include_related=True
        )
        tokens = key.split()
        out: list[str] = []
        i = 0
        for span in spans:
            out.extend(tokens[i : span.start])
            out.extend(self.canonical_term(span.term).split())
            i = span.end
        out.extend(tokens[i:])
        return " ".join(out)

    def canonicalize(self, text: str) -> str:
        """Replace every recognized span with its class representative.

        Substituting a representative can merge a neighbouring token
        into a longer thesaurus term ("city | city bus" -> "city bus"
        after "city bus" -> "bus"), so one rewrite pass is not a fixed
        point. Iterate until the text stabilizes; should the rewrite
        ever cycle, the lexicographically smallest member of the cycle
        is the canonical form (deterministic, so ``equivalent`` remains
        an equivalence relation).
        """
        key = normalize_term(text)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        trajectory = [key]
        current = key
        while True:
            rewritten = self._rewrite_once(current)
            if rewritten == current:
                break
            if rewritten in trajectory:
                cycle = trajectory[trajectory.index(rewritten) :]
                current = min(cycle)
                break
            trajectory.append(rewritten)
            current = rewritten
        # Every intermediate form reaches the same fixed point, so the
        # whole trajectory can share one cache entry.
        for form in trajectory:
            self._cache[form] = current
        return current

    def equivalent(self, text_a: str, text_b: str) -> bool:
        """True when the two texts are expansion-equivalent."""
        return self.canonicalize(text_a) == self.canonicalize(text_b)
