"""Thesaurus structures mirroring EuroVoc's organization.

EuroVoc (the thesaurus the paper uses, Section 5.2) is organized as
*micro-thesauri*, one per domain, each holding *concepts*. A concept has
a preferred term, alternative terms (synonyms, EuroVoc's "used-for"
relation), and related terms (links to sibling concepts). Each
micro-thesaurus exposes *top terms* — the broad terms the paper samples
theme tags from (Section 5.2.4).

The evaluation uses the thesaurus for three operations, all provided
here: term expansion (semantic expansion of seed events, Section 5.2.2),
top-term sampling (theme generation), and membership queries (ground
truth). The concrete six-domain dataset lives in
:mod:`repro.knowledge.eurovoc`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.semantics.tokenize import normalize_term

__all__ = ["Concept", "MicroThesaurus", "Thesaurus"]


@dataclass(frozen=True)
class Concept:
    """One thesaurus concept: a preferred term and its lexical variants.

    ``alternatives`` are interchangeable synonyms; ``related`` are terms
    of semantically close sibling concepts (EuroVoc "RT" links). Both are
    legitimate replacements during semantic expansion, which is exactly
    how the paper builds its heterogeneous event set ("replacing one or
    more terms ... by synonyms or related terms from the thesaurus").
    """

    preferred: str
    alternatives: tuple[str, ...] = ()
    related: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not normalize_term(self.preferred):
            raise ValueError("concept needs a non-empty preferred term")

    def terms(self) -> tuple[str, ...]:
        """Preferred term plus alternatives (the synonym ring)."""
        return (self.preferred, *self.alternatives)

    def expansion_terms(self) -> tuple[str, ...]:
        """Every term usable as a replacement: synonyms plus related."""
        return (*self.terms(), *self.related)


@dataclass(frozen=True)
class MicroThesaurus:
    """A domain of the thesaurus: its concepts and its top terms."""

    name: str
    top_terms: tuple[str, ...]
    concepts: tuple[Concept, ...]

    def __post_init__(self) -> None:
        if not self.top_terms:
            raise ValueError(f"micro-thesaurus {self.name!r} needs top terms")
        seen: set[str] = set()
        for concept in self.concepts:
            key = normalize_term(concept.preferred)
            if key in seen:
                raise ValueError(
                    f"duplicate concept {concept.preferred!r} in {self.name!r}"
                )
            seen.add(key)

    def all_terms(self) -> tuple[str, ...]:
        """Every synonym-ring term in the domain (no related, no tops)."""
        out: list[str] = []
        for concept in self.concepts:
            out.extend(concept.terms())
        return tuple(out)


class Thesaurus:
    """A set of micro-thesauri with normalized-term lookup.

    Lookup structures are built once at construction; the thesaurus is
    immutable afterwards.
    """

    def __init__(self, micro_thesauri: Sequence[MicroThesaurus]):
        self.micro_thesauri: dict[str, MicroThesaurus] = {}
        self._term_index: dict[str, list[tuple[str, Concept]]] = {}
        for micro in micro_thesauri:
            if micro.name in self.micro_thesauri:
                raise ValueError(f"duplicate micro-thesaurus {micro.name!r}")
            self.micro_thesauri[micro.name] = micro
            for concept in micro.concepts:
                for term in concept.terms():
                    key = normalize_term(term)
                    self._term_index.setdefault(key, []).append((micro.name, concept))

    # -- queries -----------------------------------------------------------

    def domains(self) -> tuple[str, ...]:
        return tuple(self.micro_thesauri)

    def micro(self, domain: str) -> MicroThesaurus:
        return self.micro_thesauri[domain]

    def concepts_of(
        self, term: str, domains: Iterable[str] | None = None
    ) -> list[tuple[str, Concept]]:
        """(domain, concept) pairs whose synonym ring contains ``term``."""
        hits = self._term_index.get(normalize_term(term), [])
        if domains is None:
            return list(hits)
        wanted = set(domains)
        return [(dom, con) for dom, con in hits if dom in wanted]

    def expansions(
        self,
        term: str,
        domains: Iterable[str] | None = None,
        *,
        include_related: bool = True,
    ) -> tuple[str, ...]:
        """All replacement terms for ``term``, excluding ``term`` itself.

        Deterministic order: domain order, then concept term order.
        Returns ``()`` for out-of-thesaurus terms, which the expansion
        stage then leaves untouched.
        """
        key = normalize_term(term)
        out: list[str] = []
        seen: set[str] = {key}
        for _, concept in self.concepts_of(term, domains):
            pool = concept.expansion_terms() if include_related else concept.terms()
            for candidate in pool:
                ckey = normalize_term(candidate)
                if ckey not in seen:
                    seen.add(ckey)
                    out.append(candidate)
        return tuple(out)

    def synonymous(self, term_a: str, term_b: str) -> bool:
        """True if the two terms share a concept's synonym ring."""
        concepts_a = {id(c) for _, c in self.concepts_of(term_a)}
        return any(id(c) in concepts_a for _, c in self.concepts_of(term_b))

    def top_terms(self, domains: Iterable[str] | None = None) -> tuple[str, ...]:
        """Theme-tag pool: top terms of the selected domains, in order."""
        names = tuple(domains) if domains is not None else self.domains()
        out: list[str] = []
        for name in names:
            out.extend(self.micro_thesauri[name].top_terms)
        return tuple(out)

    def vocabulary(self) -> frozenset[str]:
        """Every normalized synonym-ring term across all domains."""
        return frozenset(self._term_index)

    def __contains__(self, term: str) -> bool:
        return normalize_term(term) in self._term_index

    def __len__(self) -> int:
        return sum(len(m.concepts) for m in self.micro_thesauri.values())
