"""Six-domain EuroVoc-like thesaurus dataset.

EuroVoc itself is a licensed EU artifact, so this module hand-authors a
substitute with the same structure and the exact six domains the paper
draws on (Section 5.2.2): *transport*, *environment*, *energy*,
*geography*, *education and communications*, and *social questions*.

Design constraints that make the substitution behaviour-preserving:

* every sensor capability of Table 3, every appliance/vehicle/location
  used by the seed-event generator resolves to a concept here, so
  semantic expansion can rewrite every seed event;
* each domain exposes >= 8 top terms, so the evaluation can sample theme
  sets of up to 30 tags across domains as in Section 5.2.4;
* several surface terms are deliberately *ambiguous* across domains
  (e.g. ``light``, ``speed``, ``power``, ``monitor``, ``park``): these
  create the cross-domain confusion that non-thematic matching suffers
  from and thematic projection resolves — the crux of Figure 7.
"""

from __future__ import annotations

from functools import lru_cache

from repro.knowledge.thesaurus import Concept, MicroThesaurus, Thesaurus

__all__ = ["AFFINITIES", "CONTRAST_PAIRS", "DOMAINS", "build_eurovoc", "default_thesaurus"]

#: The six EuroVoc domains the paper's evaluation uses, in paper order.
DOMAINS: tuple[str, ...] = (
    "transport",
    "environment",
    "energy",
    "geography",
    "education and communications",
    "social questions",
)


def _transport() -> MicroThesaurus:
    return MicroThesaurus(
        name="transport",
        top_terms=(
            "transport",
            "land transport",
            "transport policy",
            "road transport",
            "traffic control",
            "public transport",
            "transport infrastructure",
            "vehicle fleet",
        ),
        concepts=(
            Concept("parking", ("car park", "parking lot", "parking space"),
                    ("garage", "parking area")),
            Concept("garage", ("garage spot", "carport")),
            Concept("traffic", ("road traffic", "traffic flow", "vehicle flow"),
                    ("congestion",)),
            Concept("congestion", ("traffic jam", "gridlock")),
            Concept("vehicle", ("car", "automobile", "motor vehicle"),
                    ("van", "truck")),
            Concept("truck", ("lorry", "heavy goods vehicle")),
            Concept("van", ("minivan", "delivery van")),
            Concept("bus", ("omnibus", "city bus")),
            Concept("bicycle", ("bike", "pedal cycle")),
            Concept("motorcycle", ("motorbike", "moped")),
            Concept("speed", ("velocity", "travel speed"), ("speed limit",)),
            Concept("speed limit", ("maximum speed",)),
            Concept("road", ("street", "roadway"), ("highway",)),
            Concept("highway", ("motorway", "expressway")),
            Concept("junction", ("intersection", "crossroads")),
            Concept("traffic light", ("traffic signal", "stop light")),
            Concept("pedestrian", ("walker", "foot passenger")),
            Concept("driver", ("motorist", "chauffeur")),
            Concept("journey", ("trip", "commute")),
            Concept("freight", ("cargo", "goods transport")),
        ),
    )


def _environment() -> MicroThesaurus:
    return MicroThesaurus(
        name="environment",
        top_terms=(
            "environment",
            "environmental policy",
            "protection of nature",
            "pollution",
            "climate",
            "weather monitoring",
            "natural environment",
            "deterioration of the environment",
        ),
        concepts=(
            Concept("temperature", ("air temperature", "ambient temperature"),
                    ("ground temperature",)),
            Concept("ground temperature", ("soil temperature", "earth temperature")),
            Concept("noise", ("sound level", "noise pollution", "acoustic level")),
            Concept("ozone", ("o3 level", "ozone concentration")),
            Concept("particles", ("particulate matter", "dust particles",
                                  "pm10 level")),
            Concept("rainfall", ("precipitation", "rain level")),
            Concept("wind speed", ("wind velocity",)),
            Concept("wind direction", ("wind bearing",)),
            Concept("atmospheric pressure", ("air pressure", "barometric pressure")),
            Concept("relative humidity", ("humidity", "moisture level")),
            Concept("soil moisture tension", ("soil moisture", "ground moisture")),
            Concept("water flow", ("stream flow", "water current")),
            Concept("co", ("carbon monoxide", "co concentration")),
            Concept("no2", ("nitrogen dioxide", "no2 concentration")),
            Concept("radiation par", ("photosynthetic radiation",
                                      "par radiation")),
            Concept("light", ("illumination", "luminosity", "brightness")),
            Concept("air quality", ("air pollution level", "air cleanliness")),
            Concept("park", ("green space", "public garden"), ("nature reserve",)),
            Concept("nature reserve", ("protected area", "conservation area")),
            Concept("flood", ("inundation", "high water")),
            Concept("drought", ("water shortage", "dry spell")),
            Concept("waste", ("refuse", "rubbish"), ("recycling",)),
            Concept("recycling", ("waste recovery", "material reuse")),
        ),
    )


def _energy() -> MicroThesaurus:
    return MicroThesaurus(
        name="energy",
        top_terms=(
            "energy",
            "energy policy",
            "electrical industry",
            "power generation",
            "energy technology",
            "electricity supply",
            "energy use",
            "soft energy",
        ),
        concepts=(
            Concept("energy consumption",
                    ("electricity usage", "power usage", "energy usage",
                     "electricity consumption"),
                    ("energy efficiency",)),
            Concept("energy efficiency", ("energy saving", "power efficiency")),
            Concept("kilowatt hour", ("kwh", "kilowatt hours")),
            Concept("watt", ("watts", "watt unit")),
            Concept("electricity", ("electric power", "electrical energy"),
                    ("power",)),
            Concept("power", ("electric supply", "mains power")),
            Concept("solar radiation", ("solar irradiance", "sunlight intensity")),
            Concept("renewable energy", ("green energy", "clean energy"),
                    ("solar panel", "wind turbine")),
            Concept("solar panel", ("photovoltaic panel", "pv module")),
            Concept("wind turbine", ("wind generator",)),
            Concept("power grid", ("electricity grid", "electrical grid")),
            Concept("energy meter", ("electricity meter", "power meter",
                                     "smart meter")),
            Concept("consumption peak", ("peak demand", "peak load",
                                         "demand peak", "usage peak")),
            Concept("cpu usage", ("processor usage", "processor load",
                                  "cpu load")),
            Concept("memory usage", ("ram usage", "memory load")),
            Concept("device", ("appliance", "equipment unit", "apparatus")),
            Concept("refrigerator", ("fridge", "cooler unit")),
            Concept("air conditioner", ("ac unit", "air conditioning")),
            Concept("washing machine", ("washer", "laundry machine")),
            Concept("dishwasher", ("dish washing machine",)),
            Concept("microwave", ("microwave oven",)),
            Concept("kettle", ("electric kettle", "water boiler")),
            Concept("heater", ("space heater", "electric heater")),
            Concept("lamp", ("desk lamp", "light fixture")),
            Concept("oven", ("electric oven", "cooker")),
            Concept("fan", ("electric fan", "ventilator")),
            Concept("battery", ("accumulator", "storage cell")),
            Concept("charging station", ("charge point", "charging point")),
        ),
    )


def _geography() -> MicroThesaurus:
    return MicroThesaurus(
        name="geography",
        top_terms=(
            "geography",
            "regions",
            "urban geography",
            "political geography",
            "europe",
            "urban planning",
            "regions of europe",
            "territorial division",
        ),
        concepts=(
            Concept("city", ("urban area", "town", "municipality")),
            Concept("country", ("nation", "state territory")),
            Concept("continent", ("landmass", "continental area")),
            Concept("ireland", ("eire", "republic of ireland")),
            Concept("galway", ("galway city",)),
            Concept("dublin", ("dublin city",)),
            Concept("spain", ("kingdom of spain", "espana")),
            Concept("santander", ("santander city",)),
            Concept("france", ("french republic",)),
            Concept("bordeaux", ("bordeaux city",)),
            Concept("europe", ("european countries", "european continent")),
            Concept("building", ("edifice", "premises"), ("floor", "zone")),
            Concept("room", ("chamber", "indoor space")),
            Concept("office", ("workplace", "office space")),
            Concept("floor", ("storey", "building level")),
            Concept("ground floor", ("street level", "first storey")),
            Concept("zone", ("district", "sector", "area")),
            Concept("desk", ("workstation desk", "work desk")),
            Concept("campus", ("university grounds", "college grounds")),
            Concept("neighbourhood", ("quarter", "locality")),
            Concept("coast", ("seashore", "shoreline")),
            Concept("river", ("waterway", "watercourse")),
        ),
    )


def _education_communications() -> MicroThesaurus:
    return MicroThesaurus(
        name="education and communications",
        top_terms=(
            "communications",
            "information technology",
            "information and information processing",
            "electronics",
            "computer systems",
            "documentation",
            "education",
            "communications systems",
        ),
        concepts=(
            Concept("sensor", ("detector", "sensing device", "probe")),
            Concept("measurement", ("reading", "metric", "measured value")),
            Concept("measurement unit", ("unit of measure", "measuring unit")),
            Concept("notification", ("alert", "notice", "push message")),
            Concept("message", ("communication", "dispatch")),
            Concept("network", ("communications network", "data network")),
            Concept("internet", ("world wide web", "global network")),
            Concept("data", ("information", "records")),
            Concept("computer", ("laptop", "workstation", "desktop computer",
                                 "pc")),
            Concept("server", ("host machine", "server machine")),
            Concept("monitor", ("screen", "display unit")),
            Concept("printer", ("printing device", "laser printer")),
            Concept("telephone", ("phone", "handset"), ("mobile phone",)),
            Concept("mobile phone", ("cellphone", "smartphone")),
            Concept("television", ("tv", "tv set")),
            Concept("radio", ("wireless set", "receiver unit")),
            Concept("camera", ("video camera", "imaging device")),
            Concept("software", ("computer program", "application program")),
            Concept("database", ("data store", "data repository")),
            Concept("school", ("educational institution", "academy")),
            Concept("university", ("higher education institution", "college")),
            Concept("lecture", ("class session", "teaching session")),
            # Trend/level qualifiers: the reporting vocabulary events are
            # qualified with ("increased energy consumption event"). They
            # are real corpus terms so their relatedness is measured, not
            # undefined; expansion rewrites them like any other concept.
            Concept("increased", ("rising", "growing", "climbing")),
            Concept("decreased", ("falling", "declining", "dropping")),
            Concept("high", ("elevated", "excessive")),
            Concept("low", ("minimal", "modest")),
        ),
    )


def _social_questions() -> MicroThesaurus:
    return MicroThesaurus(
        name="social questions",
        top_terms=(
            "social questions",
            "social affairs",
            "demography",
            "family",
            "housing",
            "health",
            "quality of life",
            "social life",
        ),
        concepts=(
            Concept("occupied", ("in use", "taken", "engaged")),
            Concept("free", ("available", "vacant", "unoccupied")),
            Concept("household", ("home", "dwelling", "residence")),
            Concept("resident", ("inhabitant", "occupant")),
            Concept("population", ("inhabitants", "residents count")),
            Concept("comfort", ("wellbeing", "coziness")),
            Concept("safety", ("security", "public safety")),
            Concept("health", ("public health", "wellness")),
            Concept("activity", ("human activity", "daily activity")),
            Concept("meeting", ("gathering", "assembly")),
            Concept("worker", ("employee", "staff member")),
            Concept("visitor", ("guest", "caller")),
            Concept("elderly", ("older people", "senior citizens")),
            Concept("child", ("minor", "young person")),
            Concept("noise complaint", ("noise report", "disturbance report")),
            Concept("leisure", ("recreation", "free time")),
        ),
    )


#: Cross-domain concept affinities: pairs of ``(domain, preferred term)``
#: that co-occur in real-world text (a Wikipedia article on laptops
#: discusses power consumption; one on parking discusses cities). The
#: corpus generator emits *bridge* documents for each pair, tagged with
#: top terms of both domains, so thematic bases of either domain cover
#: them — exactly how themes work against a Wikipedia-scale corpus.
AFFINITIES: tuple[tuple[tuple[str, str], tuple[str, str]], ...] = (
    (("energy", "energy consumption"), ("education and communications", "computer")),
    (("energy", "cpu usage"), ("education and communications", "computer")),
    (("energy", "memory usage"), ("education and communications", "server")),
    (("energy", "device"), ("education and communications", "computer")),
    (("energy", "device"), ("education and communications", "monitor")),
    (("energy", "energy consumption"), ("geography", "building")),
    (("energy", "energy consumption"), ("geography", "office")),
    (("energy", "energy meter"), ("geography", "building")),
    (("energy", "consumption peak"), ("geography", "zone")),
    (("energy", "lamp"), ("environment", "light")),
    (("environment", "light"), ("geography", "city")),
    (("environment", "temperature"), ("geography", "room")),
    (("environment", "noise"), ("geography", "city")),
    (("environment", "noise"), ("social questions", "noise complaint")),
    (("environment", "particles"), ("transport", "vehicle")),
    (("environment", "air quality"), ("transport", "traffic")),
    (("transport", "parking"), ("geography", "city")),
    (("transport", "parking"), ("social questions", "occupied")),
    (("transport", "parking"), ("social questions", "free")),
    (("transport", "traffic"), ("geography", "city")),
    (("transport", "speed"), ("geography", "city")),
    (("geography", "room"), ("social questions", "occupied")),
    (("geography", "office"), ("social questions", "worker")),
    (("education and communications", "sensor"), ("environment", "temperature")),
    (("education and communications", "sensor"), ("transport", "parking")),
    (("education and communications", "sensor"), ("energy", "energy meter")),
    (("education and communications", "measurement"), ("energy", "kilowatt hour")),
    (("education and communications", "measurement unit"), ("energy", "kilowatt hour")),
    (("education and communications", "measurement unit"), ("environment", "temperature")),
)


#: Contrasting concept pairs that pervasively co-occur in *generic* text
#: (market reports, news, listings) without sharing a meaning: trend
#: antonyms, rival appliances, sibling cities. Confuser documents pair
#: them heavily; since those documents carry no topical top terms, the
#: spurious relatedness they create lives outside every thematic basis.
#: This is the reproduction's concrete stand-in for the polysemy/noise
#: that makes full-space ESA confuse the non-thematic matcher (the
#: failure mode Section 1.2.3 and Figure 7's baseline embody).
CONTRAST_PAIRS: tuple[tuple[tuple[str, str], tuple[str, str]], ...] = (
    (("education and communications", "increased"), ("education and communications", "decreased")),
    (("education and communications", "high"), ("education and communications", "low")),
    (("social questions", "occupied"), ("social questions", "free")),
    (("geography", "galway"), ("geography", "dublin")),
    (("geography", "santander"), ("geography", "bordeaux")),
    (("geography", "ireland"), ("geography", "spain")),
    (("geography", "france"), ("geography", "spain")),
    (("geography", "galway"), ("geography", "santander")),
    (("energy", "refrigerator"), ("energy", "air conditioner")),
    (("energy", "washing machine"), ("energy", "dishwasher")),
    (("energy", "kettle"), ("energy", "microwave")),
    (("energy", "lamp"), ("energy", "heater")),
    (("education and communications", "computer"), ("education and communications", "television")),
    (("education and communications", "server"), ("education and communications", "printer")),
    (("environment", "temperature"), ("environment", "rainfall")),
    (("environment", "noise"), ("environment", "light")),
    (("environment", "ozone"), ("environment", "particles")),
    (("transport", "parking"), ("transport", "traffic")),
    (("transport", "vehicle"), ("transport", "bus")),
    (("energy", "kilowatt hour"), ("energy", "watt")),
    (("geography", "room"), ("geography", "office")),
    (("geography", "desk"), ("geography", "floor")),
)


def build_eurovoc() -> Thesaurus:
    """Construct a fresh thesaurus instance (six micro-thesauri)."""
    return Thesaurus(
        (
            _transport(),
            _environment(),
            _energy(),
            _geography(),
            _education_communications(),
            _social_questions(),
        )
    )


@lru_cache(maxsize=1)
def default_thesaurus() -> Thesaurus:
    """Shared singleton thesaurus (it is immutable, so sharing is safe)."""
    return build_eurovoc()
