"""Fault-tolerant delivery: deadlines, retries, breakers, dead letters.

The broker's terminal delivery step used to be a bare ``try/except``
around the subscriber callback — an exception bumped a counter and the
stack trace evaporated; a stalled callback wedged the dispatching
thread forever. This module replaces that step with a
:class:`ReliableDelivery` engine shared by every broker front-end
(:class:`~repro.broker.broker.ThematicBroker`,
:class:`~repro.broker.threaded.ThreadedBroker`,
:class:`~repro.broker.sharded.ShardedBroker`):

* every callback runs under a :class:`DeliveryPolicy` — an optional
  per-delivery **deadline**, bounded **retries** with exponential
  backoff and seeded jitter, and a per-subscriber **circuit breaker**
  that short-circuits delivery to a persistently failing consumer;
* a delivery whose retries are exhausted (or that a breaker refuses) is
  never dropped: it lands in a drainable :class:`DeadLetterQueue` as a
  :class:`DeadLetterRecord` carrying the exception and formatted
  traceback, and the failure is logged through the module logger.

The invariant the stress suite proves: **every matched delivery ends in
exactly one of the subscriber's inbox or the dead-letter queue** — never
both, never neither — under any injected fault
(:mod:`repro.broker.faults`).

.. warning:: **Delivery semantics changed from the legacy dispatch.**
   At the default policy a failing callback is retried
   (``max_retries=3`` → up to four invocations), so callback delivery
   is **at-least-once**: a non-idempotent consumer should subscribe
   with ``policy=DeliveryPolicy.no_retry()`` (or set a broker-wide
   single-attempt default). The inbox append likewise moved to
   *after* a successful callback — the legacy ``dispatch_delivery``
   appended before invoking it, so a failing callback used to leave
   the delivery in the inbox where it is now dead-lettered.

Locking is deliberately narrow: the delivery engine's internal lock
guards breaker state only and is never held across a callback or a
backoff sleep, so callbacks may re-enter their broker and a stalled
subscriber never blocks another subscriber's dispatch on reliability
internals.

All timing flows through an injectable :class:`~repro.obs.clock.Clock`,
so backoff sleeps, deadline measurement, and breaker resets are
deterministic under test. Deadlines are *cooperative*: Python offers no
safe preemption, so a deadline is enforced by measuring the callback's
elapsed clock time after it returns (a "hang" in the fault harness
advances the fake clock), which keeps production semantics honest — an
over-deadline callback's side effects may have happened, but the
delivery is recorded as failed and retried/dead-lettered.

At the **default policy** the fast path is unchanged: a subscriber
without a callback gets an inbox append and nothing else, so the
sharded parity suite stays bit-identical with reliability enabled.
"""

from __future__ import annotations

import logging
import random
import threading
import traceback
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs import TRACER
from repro.obs.clock import MONOTONIC_CLOCK, Clock, iso_time, wall_time
from repro.obs.flightrec import trigger_dump

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.broker.broker import BrokerMetrics, Delivery
    from repro.broker.durability import BrokerDurability
    from repro.core.engine import SubscriptionHandle

__all__ = [
    "CircuitBreaker",
    "DeadLetterQueue",
    "DeadLetterRecord",
    "DeliveryPolicy",
    "ReliableDelivery",
]

logger = logging.getLogger(__name__)

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class DeliveryPolicy:
    """How hard to try before a delivery is declared undeliverable.

    Parameters
    ----------
    deadline:
        Per-attempt latency bound (seconds) on the subscriber callback,
        or ``None`` for no bound. Cooperative: measured after the
        callback returns (see module docstring).
    max_retries:
        Retries *after* the first attempt; ``max_retries=3`` means up to
        four invocations. ``0`` disables retrying.
    backoff_base / backoff_multiplier / backoff_cap:
        Exponential backoff schedule between attempts: retry *n* waits
        ``min(cap, base * multiplier**(n-1))`` seconds before jitter.
    jitter:
        Fractional jitter on each backoff delay — delay is scaled by a
        uniform draw from ``[1-jitter, 1+jitter]``. ``0`` disables it
        (fully deterministic schedule).
    breaker_threshold:
        Consecutive *exhausted* deliveries to one subscriber that trip
        its circuit breaker; ``0`` (or negative) disables breakers.
    breaker_reset:
        Seconds an open breaker waits before letting one probe delivery
        through (half-open).
    seed:
        Seed for the jitter RNG, so retry schedules are reproducible.
    """

    deadline: float | None = None
    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_cap: float = 2.0
    jitter: float = 0.1
    breaker_threshold: int = 5
    breaker_reset: float = 30.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.breaker_reset < 0:
            raise ValueError("breaker_reset must be >= 0")

    @classmethod
    def no_retry(cls, **overrides: object) -> "DeliveryPolicy":
        """A policy that attempts each delivery exactly once."""
        overrides.setdefault("max_retries", 0)
        return cls(**overrides)

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry ``attempt`` (1-based), jitter applied."""
        delay = min(
            self.backoff_cap,
            self.backoff_base * self.backoff_multiplier ** (attempt - 1),
        )
        if self.jitter:
            delay *= 1.0 - self.jitter + 2.0 * self.jitter * rng.random()
        return delay


@dataclass(frozen=True)
class DeadLetterRecord:
    """One undeliverable delivery, with everything needed to diagnose it.

    ``timestamp`` is an ISO-8601 UTC wall-clock string (from the
    injectable clock, so deterministic under test) — dead-letter records
    and flight-recorder dumps are postmortem artifacts meant to be
    correlated side by side, which raw monotonic floats made impossible.
    ``trace_id`` ties the record to every span the event generated, so
    ``repro trace <id>`` can show the full causal path into the DLQ.
    """

    delivery: "Delivery"
    subscriber_id: int
    reason: str  # "retries_exhausted" | "circuit_open"
    attempts: int
    error: str | None = None
    traceback: str | None = None
    timestamp: str = ""
    trace_id: str | None = None


class DeadLetterQueue:
    """Drainable terminal parking lot for undeliverable deliveries.

    Thread-safe; unbounded by default (the no-loss invariant forbids
    silently discarding records, so a capacity, if set, evicts the
    *oldest* record and logs it — the operator opted into bounded
    memory over complete retention).
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self._records: deque[DeadLetterRecord] = deque()
        self._capacity = capacity
        self._lock = threading.Lock()
        #: Journal hook (set by a durable broker): called with the drain
        #: count, outside the queue lock.
        self.on_drain: Callable[[int], None] | None = None

    def append(self, record: DeadLetterRecord) -> None:
        with self._lock:
            if self._capacity is not None and len(self._records) >= self._capacity:
                evicted = self._records.popleft()
                logger.warning(
                    "dead-letter queue at capacity %d; evicting oldest record "
                    "(subscriber %d, seq %d)",
                    self._capacity,
                    evicted.subscriber_id,
                    evicted.delivery.sequence,
                )
            self._records.append(record)

    def drain(self) -> list[DeadLetterRecord]:
        """Remove and return all records, oldest first."""
        with self._lock:
            records = list(self._records)
            self._records.clear()
        # Journal the consumption outside the queue lock so a WAL
        # append can never nest inside it.
        if records and self.on_drain is not None:
            self.on_drain(len(records))
        return records

    def peek(self) -> list[DeadLetterRecord]:
        """Non-destructive snapshot, oldest first."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class CircuitBreaker:
    """Per-subscriber breaker: stop hammering a consumer that only fails.

    Counts *exhausted* deliveries (a success after retries still closes
    the loop). After ``threshold`` consecutive exhaustions the breaker
    opens: deliveries short-circuit straight to the dead-letter queue
    without invoking the callback. After ``reset`` seconds one delivery
    is allowed through as a probe (half-open); success closes the
    breaker, failure re-opens it and restarts the clock.

    Not thread-safe on its own — :class:`ReliableDelivery` mutates
    breaker state only while holding its breaker lock, and that lock is
    *not* held while a callback attempt runs. Concurrent dispatches to
    one subscriber may therefore each run a full attempt loop before
    the breaker observes either outcome (and an open breaker past its
    reset may admit more than one probe). The breaker is admission
    control, not a mutual-exclusion device; serializing deliveries is
    the calling broker's concern.
    """

    def __init__(self, threshold: int, reset: float) -> None:
        self.threshold = threshold
        self.reset = reset
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0

    def allow(self, now: float) -> bool:
        """May a delivery attempt proceed right now?"""
        if self.threshold <= 0 or self.state == CLOSED:
            return True
        if self.state == OPEN and now - self.opened_at >= self.reset:
            self.state = HALF_OPEN
            return True
        return self.state == HALF_OPEN

    def record_success(self) -> None:
        self.failures = 0
        self.state = CLOSED

    def record_failure(self, now: float) -> bool:
        """Count one exhausted delivery; True on a CLOSED→OPEN transition.

        A failed half-open probe re-opens the breaker (restarting the
        reset clock) but returns False — for accounting purposes it was
        never closed.
        """
        if self.threshold <= 0:
            return False
        self.failures += 1
        if self.state == HALF_OPEN or self.failures >= self.threshold:
            newly = self.state == CLOSED
            self.state = OPEN
            self.opened_at = now
            self.failures = 0
            return newly
        return False


class ReliableDelivery:
    """The shared terminal delivery engine behind every broker front-end.

    Parameters
    ----------
    metrics:
        The owning broker's :class:`~repro.broker.broker.BrokerMetrics`
        (``deliveries``/``callback_errors`` stay the source of truth for
        the legacy counters; reliability adds its own ``reliability.*``
        family to the same registry).
    policy:
        Broker-wide default :class:`DeliveryPolicy`; a handle whose
        ``policy`` is set overrides it per subscription.
    dead_letters:
        Queue receiving exhausted/refused deliveries; defaults to a
        fresh unbounded :class:`DeadLetterQueue`.
    clock:
        Time source for backoff, deadlines, and breaker resets.
    durability:
        Optional :class:`~repro.broker.durability.BrokerDurability`.
        When set, every consumption is journaled (an ``ack`` record
        lands *after* the callback succeeds and *before* the inbox
        append) and every dead letter is journaled before it is parked,
        and deliveries whose idempotency key ``(subscriber id, event
        sequence)`` already reached a terminal state are suppressed —
        this is what turns at-least-once retries plus crash recovery
        into effectively-once consumption.
    """

    def __init__(
        self,
        metrics: "BrokerMetrics",
        *,
        policy: DeliveryPolicy | None = None,
        dead_letters: DeadLetterQueue | None = None,
        clock: Clock | None = None,
        durability: "BrokerDurability | None" = None,
    ) -> None:
        self.metrics = metrics
        self.policy = policy if policy is not None else DeliveryPolicy()
        self.dead_letters = (
            dead_letters if dead_letters is not None else DeadLetterQueue()
        )
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self.durability = durability
        registry = metrics.registry
        self._retries = registry.counter("reliability.retries")
        self._dead = registry.counter("reliability.dead_letters")
        self._deadline_exceeded = registry.counter("reliability.deadline_exceeded")
        self._breaker_opens = registry.counter("reliability.breaker_opens")
        self._short_circuits = registry.counter("reliability.breaker_short_circuits")
        self._breakers_open = registry.gauge("reliability.breakers_open")
        self._backoff_seconds = registry.histogram("reliability.backoff_seconds")
        self._callback_seconds = registry.histogram("reliability.callback_seconds")
        self._rng = random.Random(self.policy.seed)
        self._rng_lock = threading.Lock()
        self._breakers: dict[int, CircuitBreaker] = {}
        self._breaker_lock = threading.Lock()

    # -- helpers -----------------------------------------------------------

    def _policy_for(self, handle: "SubscriptionHandle") -> DeliveryPolicy:
        override = getattr(handle, "policy", None)
        return override if override is not None else self.policy

    def _breaker_for(
        self, subscriber_id: int, policy: DeliveryPolicy
    ) -> CircuitBreaker:
        breaker = self._breakers.get(subscriber_id)
        if breaker is None:
            breaker = CircuitBreaker(policy.breaker_threshold, policy.breaker_reset)
            self._breakers[subscriber_id] = breaker
        return breaker

    def breaker_state(self, subscriber_id: int) -> str:
        """Observability hook: this subscriber's breaker state."""
        with self._breaker_lock:
            breaker = self._breakers.get(subscriber_id)
            return breaker.state if breaker is not None else CLOSED

    def _tripped_count(self) -> int:
        """Breakers not CLOSED (open or half-open); call with the lock held.

        The ``reliability.breakers_open`` gauge is recomputed from the
        actual breaker states on every transition, so the accounting can
        never drift from reality the way a mirror counter could.
        """
        return sum(
            1 for breaker in self._breakers.values() if breaker.state != CLOSED
        )

    def _jittered(self, policy: DeliveryPolicy, attempt: int) -> float:
        with self._rng_lock:
            return policy.backoff_delay(attempt, self._rng)

    def _dead_letter(
        self,
        handle: "SubscriptionHandle",
        delivery: "Delivery",
        *,
        reason: str,
        attempts: int,
        error: BaseException | None = None,
    ) -> None:
        # Defensive on wall(): third-party Clock implementations predate
        # the wall-clock extension of the protocol.
        wall = (
            self.clock.wall() if hasattr(self.clock, "wall") else wall_time()
        )
        trace = getattr(delivery, "trace", None)
        record = DeadLetterRecord(
            delivery=delivery,
            subscriber_id=handle.id,
            reason=reason,
            attempts=attempts,
            error=repr(error) if error is not None else None,
            traceback=(
                "".join(traceback.format_exception(error))
                if error is not None
                else None
            ),
            timestamp=iso_time(wall),
            trace_id=trace.trace_id if trace is not None else None,
        )
        # Write-ahead: journal the dead letter before parking it, so a
        # crash between the two replays the record instead of losing it
        # (a duplicate in-memory append after replay is impossible —
        # the key is settled and dispatch suppresses it).
        if self.durability is not None:
            self.durability.log_dead_letter(record)
        self.dead_letters.append(record)
        self._dead.inc()
        now = self.clock.monotonic()
        TRACER.record_span(
            "deliver.dead_letter",
            trace,
            now,
            now,
            subscriber=handle.id,
            reason=reason,
            attempts=attempts,
        )
        if error is not None:
            logger.error(
                "delivery to subscriber %d dead-lettered after %d attempt(s) "
                "(%s): %r",
                handle.id,
                attempts,
                reason,
                error,
                exc_info=error,
            )
        else:
            logger.error(
                "delivery to subscriber %d dead-lettered without attempt (%s)",
                handle.id,
                reason,
            )

    # -- the dispatch path -------------------------------------------------

    def dispatch(self, handle: "SubscriptionHandle", delivery: "Delivery") -> bool:
        """Deliver one matched result to one subscriber, reliably.

        Returns True when the delivery reached the inbox, False when it
        was dead-lettered. Exactly one of the two always happens.

        A subscriber with no callback is pure inbox delivery — nothing
        can fail, so the fast path is an append and a counter, identical
        to the pre-reliability broker (bit-identical parity at default
        policy). With a callback, the inbox append happens only *after*
        the callback succeeds: the inbox is the record of consumption,
        and a failed consumption belongs in the dead-letter queue, not
        in both places.

        The breaker lock is held only to read and update breaker state,
        never across the callback or its backoff sleeps. A callback may
        therefore re-enter the broker (``publish``,
        ``subscribe(replay=True)``, …) without deadlocking, and one
        subscriber's retry storm never blocks another subscriber's
        dispatch — or the :meth:`breaker_state` hook — on this lock.

        The delivery's trace context (if any) is activated for the whole
        dispatch, so attempt spans, breaker rejections, and dead-letter
        markers all land in the publishing event's trace — including on
        dispatcher threads that never saw the publish.
        """
        with TRACER.activate(getattr(delivery, "trace", None)):
            return self._dispatch(handle, delivery)

    def _dispatch(self, handle: "SubscriptionHandle", delivery: "Delivery") -> bool:
        if self.durability is not None and self.durability.is_settled(
            handle.id, delivery.sequence
        ):
            # This (subscriber, sequence) key already reached its
            # terminal state (inbox or DLQ) before a crash; recovery
            # re-dispatch must not consume it again.
            self.durability.note_suppressed()
            return True
        if handle.callback is None:
            with TRACER.span("broker.deliver"):
                self.metrics.inc("deliveries")
                if self.durability is not None:
                    self.durability.log_ack(handle.id, delivery.sequence)
                handle.append(delivery)
            return True
        policy = self._policy_for(handle)
        with self._breaker_lock:
            breaker = self._breaker_for(handle.id, policy)
            was_open = breaker.state == OPEN
            allowed = breaker.allow(self.clock.monotonic())
            probing = allowed and was_open and breaker.state == HALF_OPEN
        if not allowed:
            self._short_circuits.inc()
            now = self.clock.monotonic()
            TRACER.record_span(
                "deliver.breaker_rejected",
                getattr(delivery, "trace", None),
                now,
                now,
                subscriber=handle.id,
            )
            self._dead_letter(handle, delivery, reason="circuit_open", attempts=0)
            return False
        if probing:
            logger.info(
                "breaker for subscriber %d half-open; probing", handle.id
            )
        succeeded, attempts, last_error = self._attempt_loop(
            handle, delivery, policy
        )
        with self._breaker_lock:
            if succeeded:
                breaker.record_success()
                newly_opened = False
            else:
                newly_opened = breaker.record_failure(self.clock.monotonic())
            self._breakers_open.set(self._tripped_count())
        if succeeded:
            return True
        if newly_opened:
            self._breaker_opens.inc()
            logger.warning(
                "circuit breaker opened for subscriber %d after repeated "
                "delivery failures",
                handle.id,
            )
            # Breaker lock already released: the flight-recorder dump
            # (file I/O under its own lock) must never nest inside it.
            trigger_dump("breaker_open", f"subscriber {handle.id}")
        self._dead_letter(
            handle,
            delivery,
            reason="retries_exhausted",
            attempts=attempts,
            error=last_error,
        )
        return False

    def _attempt_loop(
        self,
        handle: "SubscriptionHandle",
        delivery: "Delivery",
        policy: DeliveryPolicy,
    ) -> tuple[bool, int, BaseException | None]:
        """Run the retry loop; (succeeded, attempts, last_error)."""
        last_error: BaseException | None = None
        attempts = 0
        with TRACER.span("broker.deliver"):
            for attempt in range(1, policy.max_attempts + 1):
                attempts = attempt
                if attempt > 1:
                    self._retries.inc()
                    delay = self._jittered(policy, attempt - 1)
                    self._backoff_seconds.record(delay)
                    self.clock.sleep(delay)
                started = self.clock.monotonic()
                try:
                    with TRACER.span(
                        "deliver.attempt", subscriber=handle.id, attempt=attempt
                    ):
                        handle.callback(delivery)
                except Exception as exc:
                    self._callback_seconds.record(self.clock.monotonic() - started)
                    self.metrics.inc("callback_errors")
                    last_error = exc
                    continue
                elapsed = self.clock.monotonic() - started
                self._callback_seconds.record(elapsed)
                if policy.deadline is not None and elapsed > policy.deadline:
                    self._deadline_exceeded.inc()
                    self.metrics.inc("callback_errors")
                    last_error = TimeoutError(
                        f"callback exceeded deadline: {elapsed:.6f}s > "
                        f"{policy.deadline:.6f}s"
                    )
                    continue
                self.metrics.inc("deliveries")
                # The idempotency barrier: the ack is durable *after*
                # the callback succeeded and *before* the inbox append.
                # A crash in that window is the at-least-once edge —
                # on recovery the key is settled, the callback is not
                # re-invoked, and the inbox entry is restored by
                # re-matching the journaled event.
                if self.durability is not None:
                    self.durability.log_ack(handle.id, delivery.sequence)
                handle.append(delivery)
                return True, attempts, None
        return False, attempts, last_error
