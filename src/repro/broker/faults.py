"""Deterministic fault injection for the delivery and matching layers.

The reliability layer (:mod:`repro.broker.reliability`) and degraded
mode (:mod:`repro.core.degrade`) make promises — no delivery lost, no
thread wedged, downgrade instead of stall — that only mean something if
they hold under misbehavior. This module scripts that misbehavior
deterministically:

* a :class:`FaultPlan` declares which subscriber callbacks fail and how
  (``raise`` forever, ``flaky`` for the first N attempts, ``hang`` by a
  scripted duration) and whether the semantic scorer suffers latency
  spikes;
* a :class:`FaultInjector` applies the plan by *wrapping* — it wraps
  subscriber callbacks and the matcher's measure, and never reaches into
  broker internals, so the system under test is the real code path;
* all simulated time flows through the injected
  :class:`~repro.obs.clock.Clock`: a "hang" advances a
  :class:`~repro.obs.clock.FakeClock` rather than sleeping, so a test
  that simulates a 30-second outage runs in microseconds and every
  deadline/breaker/backoff decision is a pure function of the plan.

Plans round-trip through JSON (:meth:`FaultPlan.to_json` /
:meth:`FaultPlan.from_json`) so the same scenario runs in tests and via
``repro evaluate --faults plan.json``.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

from repro.broker.reliability import DeliveryPolicy
from repro.core.degrade import DegradedPolicy
from repro.obs.clock import MONOTONIC_CLOCK, Clock
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.broker.broker import Delivery
    from repro.broker.durability import BrokerDurability

__all__ = [
    "CallbackFault",
    "FaultInjector",
    "FaultyCallbackError",
    "FaultPlan",
    "KillFault",
    "ScorerFault",
]


class FaultyCallbackError(RuntimeError):
    """Raised by injected callback faults (distinguishable from real bugs)."""


@dataclass(frozen=True)
class CallbackFault:
    """Scripted misbehavior for one subscriber's callback.

    Parameters
    ----------
    subscriber:
        The subscriber id (registration order) the fault attaches to.
    kind:
        ``"raise"`` — raise :class:`FaultyCallbackError`;
        ``"flaky"`` — raise on the first ``times`` invocations, then
        succeed (exercises the retry path to success);
        ``"hang"`` — advance the clock by ``hang_seconds`` inside the
        callback, then return normally (exercises deadlines).
    times:
        For ``raise``/``hang``: how many invocations misbehave before
        behaving (``0`` = every invocation, forever). For ``flaky`` the
        first ``times`` invocations fail (``0`` is promoted to 1 — a
        flaky callback that never fails is no fault at all).
    hang_seconds:
        Simulated stall per hung invocation.
    """

    subscriber: int
    kind: str
    times: int = 0
    hang_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("raise", "flaky", "hang"):
            raise ValueError(f"unknown callback fault kind {self.kind!r}")
        if self.times < 0:
            raise ValueError("times must be >= 0")
        if self.hang_seconds < 0:
            raise ValueError("hang_seconds must be >= 0")
        if self.kind == "flaky" and self.times == 0:
            object.__setattr__(self, "times", 1)


@dataclass(frozen=True)
class ScorerFault:
    """Latency spikes in the semantic measure.

    Every ``every``-th score call starting at call index ``start``
    (0-based) stalls the clock by ``spike_seconds`` — enough to blow a
    degraded-mode latency budget on schedule.
    """

    spike_seconds: float
    every: int = 1
    start: int = 0

    def __post_init__(self) -> None:
        if self.spike_seconds < 0:
            raise ValueError("spike_seconds must be >= 0")
        if self.every < 1:
            raise ValueError("every must be >= 1")
        if self.start < 0:
            raise ValueError("start must be >= 0")


@dataclass(frozen=True)
class KillFault:
    """Kill the broker at a write-ahead-log byte offset.

    The broker under test must run with a
    :class:`~repro.broker.durability.DurabilityPolicy`; the injector
    arms the journal (:meth:`FaultInjector.arm`) so that the append
    crossing cumulative offset ``at`` raises
    :class:`~repro.broker.durability.SimulatedCrash` — on whichever
    thread happens to be journaling, exactly like a real process death.

    Parameters
    ----------
    at:
        Cumulative WAL byte offset (segment headers included) at which
        the crash fires. Offsets beyond the run's journal size simply
        never fire (the run completes fault-free).
    mode:
        What the crashing append leaves on disk: ``"before"`` nothing,
        ``"torn"`` a partial frame (the torn-write recovery path),
        ``"after"`` the full fsynced frame whose in-memory effect never
        happened (the effectively-once edge).
    """

    at: int
    mode: str = "before"

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("at must be >= 0")
        if self.mode not in ("before", "torn", "after"):
            raise ValueError(
                f"unknown kill mode {self.mode!r} "
                "(expected 'before', 'torn', or 'after')"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A named, serializable bundle of scripted faults.

    The unit of input for the stress suite and for
    ``repro evaluate --faults``: everything the injector needs, nothing
    about the workload itself.
    """

    name: str = "plan"
    callbacks: tuple[CallbackFault, ...] = ()
    scorer: ScorerFault | None = None
    degraded: DegradedPolicy | None = None
    #: Delivery policy the scenario should run under, or None to use
    #: whatever the harness defaults to. A plan that wants breakers to
    #: trip (low threshold, no jitter) carries that policy itself, so
    #: tests and ``repro evaluate --faults`` reproduce the same run.
    policy: DeliveryPolicy | None = None
    #: Optional mid-plan broker death; the harness kills the broker at
    #: this WAL offset, restarts it from disk, and asserts no-loss
    #: across the restart (see :mod:`repro.evaluation.faults`).
    kill: KillFault | None = None

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        plan: dict = {"name": self.name}
        if self.callbacks:
            plan["callbacks"] = [
                {
                    "subscriber": fault.subscriber,
                    "kind": fault.kind,
                    "times": fault.times,
                    "hang_seconds": fault.hang_seconds,
                }
                for fault in self.callbacks
            ]
        if self.scorer is not None:
            plan["scorer"] = {
                "spike_seconds": self.scorer.spike_seconds,
                "every": self.scorer.every,
                "start": self.scorer.start,
            }
        if self.degraded is not None:
            plan["degraded"] = {
                "latency_budget": self.degraded.latency_budget,
                "cooldown": self.degraded.cooldown,
                "trip_after": self.degraded.trip_after,
            }
        if self.policy is not None:
            plan["policy"] = {
                "deadline": self.policy.deadline,
                "max_retries": self.policy.max_retries,
                "backoff_base": self.policy.backoff_base,
                "backoff_multiplier": self.policy.backoff_multiplier,
                "backoff_cap": self.policy.backoff_cap,
                "jitter": self.policy.jitter,
                "breaker_threshold": self.policy.breaker_threshold,
                "breaker_reset": self.policy.breaker_reset,
                "seed": self.policy.seed,
            }
        if self.kill is not None:
            plan["kill"] = {"at": self.kill.at, "mode": self.kill.mode}
        return plan

    @classmethod
    def from_dict(cls, plan: dict) -> "FaultPlan":
        known = {"name", "callbacks", "scorer", "degraded", "policy", "kill"}
        unknown = set(plan) - known
        if unknown:
            raise ValueError(f"unknown fault plan keys {sorted(unknown)}")
        callbacks = tuple(
            CallbackFault(**spec) for spec in plan.get("callbacks", ())
        )
        scorer_spec = plan.get("scorer")
        degraded_spec = plan.get("degraded")
        policy_spec = plan.get("policy")
        kill_spec = plan.get("kill")
        return cls(
            name=plan.get("name", "plan"),
            callbacks=callbacks,
            scorer=ScorerFault(**scorer_spec) if scorer_spec else None,
            degraded=DegradedPolicy(**degraded_spec) if degraded_spec else None,
            policy=DeliveryPolicy(**policy_spec) if policy_spec else None,
            kill=KillFault(**kill_spec) if kill_spec else None,
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))


class _FaultyCallback:
    """Stateful wrapper applying one :class:`CallbackFault`."""

    def __init__(
        self,
        fault: CallbackFault,
        inner: Callable[["Delivery"], None] | None,
        clock: Clock,
    ) -> None:
        self._fault = fault
        self._inner = inner
        self._clock = clock
        self._calls = 0
        self._lock = threading.Lock()

    def __call__(self, delivery: "Delivery") -> None:
        with self._lock:
            self._calls += 1
            call = self._calls
        fault = self._fault
        active = fault.times == 0 or call <= fault.times
        if fault.kind == "hang" and active:
            self._clock.sleep(fault.hang_seconds)
        elif fault.kind in ("raise", "flaky") and active:
            raise FaultyCallbackError(
                f"injected {fault.kind} fault for subscriber "
                f"{fault.subscriber} (call {call})"
            )
        if self._inner is not None:
            self._inner(delivery)


class _SpikingMeasure:
    """Measure wrapper applying a :class:`ScorerFault` spike schedule."""

    def __init__(self, fault: ScorerFault, inner: Any, clock: Clock) -> None:
        self._fault = fault
        self._inner = inner
        self._clock = clock
        self._calls = 0
        self._lock = threading.Lock()

    def score(
        self, term_s: Any, theme_s: Any, term_e: Any, theme_e: Any
    ) -> float:
        with self._lock:
            call = self._calls
            self._calls += 1
        fault = self._fault
        if call >= fault.start and (call - fault.start) % fault.every == 0:
            self._clock.sleep(fault.spike_seconds)
        return self._inner.score(term_s, theme_s, term_e, theme_e)

    def __getattr__(self, name: str) -> Any:
        # Measures expose extras (space, caches); forward transparently.
        return getattr(self._inner, name)


@dataclass
class FaultInjector:
    """Applies a :class:`FaultPlan` by wrapping callbacks and the measure.

    One injector per broker under test: the callback wrappers are
    stateful (flaky counters), so sharing an injector across brokers
    would let one broker's retries consume another broker's fault
    budget.
    """

    plan: FaultPlan
    clock: Clock = field(default_factory=lambda: MONOTONIC_CLOCK)

    def __post_init__(self) -> None:
        self._by_subscriber = {
            fault.subscriber: fault for fault in self.plan.callbacks
        }

    def wrap_callback(
        self,
        subscriber: int,
        inner: Callable[["Delivery"], None] | None = None,
    ) -> Callable[["Delivery"], None] | None:
        """Wrap ``inner`` with this subscriber's scripted fault (if any).

        Returns ``inner`` unchanged when the plan has no fault for this
        subscriber — un-faulted subscribers run the pristine path.
        """
        fault = self._by_subscriber.get(subscriber)
        if fault is None:
            return inner
        return _FaultyCallback(fault, inner, self.clock)

    def wrap_measure(self, measure: Any) -> Any:
        """Wrap a semantic measure with the plan's scorer spikes (if any)."""
        if self.plan.scorer is None:
            return measure
        return _SpikingMeasure(self.plan.scorer, measure, self.clock)

    def arm(self, durability: "BrokerDurability | None") -> None:
        """Arm the plan's :class:`KillFault` on a broker's journal.

        No-op when the plan has no kill or the broker runs without
        durability — the injector stays wrap-only either way; the crash
        fires inside the journal's own append path.
        """
        if self.plan.kill is None or durability is None:
            return
        durability.arm_kill(self.plan.kill.at, self.plan.kill.mode)
