"""A thematic publish/subscribe broker node.

The broker realizes the three classic decoupling dimensions of Figure 1
around the thematic matcher:

* **space** — publishers and subscribers only ever talk to the broker;
  neither knows the other exists;
* **time** — the broker keeps a bounded replay buffer, so a subscriber
  that arrives late can be caught up on recent events on request;
* **synchronization** — deliveries go to per-subscriber inbox queues;
  publishing never blocks on consumption and consumers drain their
  inbox whenever they choose (callbacks are optional).

The fourth dimension — **semantics** — is the paper's contribution: the
matcher is pluggable, so the same broker runs content-based (exact),
non-thematic approximate, or thematic matching.

Delivery is fault-tolerant: every subscriber callback runs under the
broker's :class:`~repro.broker.reliability.DeliveryPolicy` (deadline,
bounded retries with backoff, per-subscriber circuit breaker) and
exhausted deliveries land in a drainable dead-letter queue instead of
vanishing — see :mod:`repro.broker.reliability`.
"""

from __future__ import annotations

import logging
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro._compat import warn_deprecated
from repro.broker.config import (
    ENGINE_KWARGS,
    BrokerConfig,
    config_from_legacy,
    engine_config,
)
from repro.broker.durability import BrokerDurability
from repro.broker.reliability import (
    DeadLetterQueue,
    DeadLetterRecord,
    DeliveryPolicy,
    ReliableDelivery,
)
from repro.core.engine import SubscriptionHandle, ThematicEventEngine
from repro.core.events import Event
from repro.core.matcher import MatchResult, ThematicMatcher
from repro.core.subscriptions import Subscription
from repro.obs import TRACER, MetricsRegistry
from repro.obs.clock import Clock
from repro.obs.context import TraceContext

__all__ = [
    "BrokerMetrics",
    "Delivery",
    "SubscriberHandle",
    "ThematicBroker",
    "dispatch_delivery",
]

logger = logging.getLogger(__name__)


class BrokerMetrics:
    """Registry-backed operational counters, exposed for tests and benches.

    Historically five bare ints mutated in place — racy once the broker
    moved matching onto a worker thread. Counters now live in a
    :class:`~repro.obs.registry.MetricsRegistry` (one per broker by
    default, or a shared one passed in), so increments are thread-safe
    and :meth:`snapshot` gives readers a coherent, JSON-ready view. The
    old attribute reads (``metrics.published`` …) still work.
    """

    FIELDS = ("published", "evaluations", "deliveries", "replayed",
              "callback_errors")

    def __init__(
        self, registry: MetricsRegistry | None = None, *, prefix: str = "broker"
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.prefix = prefix
        self._counters = {
            name: self.registry.counter(f"{prefix}.{name}") for name in self.FIELDS
        }

    def inc(self, name: str, amount: int = 1) -> None:
        self._counters[name].inc(amount)

    def snapshot(self) -> dict[str, int]:
        """Thread-safe point-in-time view of all counters."""
        return {name: counter.value for name, counter in self._counters.items()}

    @property
    def published(self) -> int:
        return self._counters["published"].value

    @property
    def evaluations(self) -> int:
        return self._counters["evaluations"].value

    @property
    def deliveries(self) -> int:
        return self._counters["deliveries"].value

    @property
    def replayed(self) -> int:
        return self._counters["replayed"].value

    @property
    def callback_errors(self) -> int:
        return self._counters["callback_errors"].value


@dataclass(frozen=True)
class Delivery:
    """One matched event delivered to one subscriber."""

    result: MatchResult
    sequence: int
    #: Causal trace context of the publish that produced this delivery;
    #: carried so retry attempts, breaker rejections, and dead-letter
    #: records downstream all share the event's trace id. Excluded from
    #: equality so pre-tracing tests comparing deliveries still hold.
    trace: TraceContext | None = field(default=None, compare=False, repr=False)

    @property
    def event(self) -> Event:
        return self.result.event

    @property
    def score(self) -> float:
        return self.result.score


class SubscriberHandle(SubscriptionHandle):
    """Deprecated alias for the unified
    :class:`~repro.core.engine.SubscriptionHandle`.

    The engine and the brokers used to carry two separate handle types;
    they are now one. Constructing this alias still works (accepting the
    old ``subscriber_id`` keyword) but emits a
    :class:`DeprecationWarning`; brokers return plain
    :class:`~repro.core.engine.SubscriptionHandle` objects.
    """

    def __init__(
        self,
        subscriber_id: int,
        subscription: Subscription,
        inbox: deque | None = None,
        callback: Callable[[Delivery], None] | None = None,
        policy: DeliveryPolicy | None = None,
    ) -> None:
        warn_deprecated(
            "SubscriberHandle is deprecated; use "
            "repro.core.engine.SubscriptionHandle"
        )
        super().__init__(
            id=subscriber_id,
            subscription=subscription,
            policy=policy,
            callback=callback,
            inbox=inbox if inbox is not None else deque(),
        )


def dispatch_delivery(
    metrics: BrokerMetrics, handle: SubscriptionHandle, delivery: Delivery
) -> None:
    """Deprecated pre-reliability terminal delivery step.

    Counts the delivery, appends to the subscriber's inbox, and guards
    the optional callback — but with no retries, no dead letters, and no
    deadline. Kept for one release; the brokers now dispatch through
    :class:`~repro.broker.reliability.ReliableDelivery`. Unlike the old
    version, a callback failure is at least logged with its stack trace.
    """
    warn_deprecated(
        "dispatch_delivery is deprecated; dispatch through "
        "ReliableDelivery.dispatch"
    )
    with TRACER.span("broker.deliver"):
        metrics.inc("deliveries")
        handle.append(delivery)
        if handle.callback is not None:
            try:
                handle.callback(delivery)
            except Exception:
                metrics.inc("callback_errors")
                logger.exception(
                    "subscriber %d callback failed (delivery seq %d)",
                    handle.id,
                    delivery.sequence,
                )


class ThematicBroker:
    """Single broker node hosting a matcher and a subscription registry.

    Parameters
    ----------
    matcher:
        Any :class:`~repro.core.api.MatchEngine` implementation
        (``match``/``matches``/``score``/``match_batch``/``threshold``).
    config:
        A :class:`~repro.broker.config.BrokerConfig`; this front-end
        reads ``replay_capacity``, ``delivery``, ``degraded``, and
        ``dead_letter_capacity``. The legacy ``replay_capacity=``
        keyword still works with a :class:`DeprecationWarning`.
    registry:
        Metrics registry backing the broker's counters; defaults to a
        private one so broker instances never share state by accident.
        The embedded dispatch engine and the reliability layer share
        it, so one snapshot covers ``broker.*``, ``engine.*``, and
        ``reliability.*`` counters alike.
    clock:
        Time source for delivery deadlines/backoff and the degraded-mode
        budget; injectable for the fault harness.

    Publish-side matching runs through an embedded
    :class:`~repro.core.engine.ThematicEventEngine`: one staged
    ``match_batch`` per published event over all registered
    subscriptions, with the loss-free prefilter pruning provably
    unmatchable pairs before semantic scoring.
    """

    def __init__(
        self,
        matcher: ThematicMatcher,
        config: BrokerConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
        clock: Clock | None = None,
        **legacy: object,
    ) -> None:
        self.config = config_from_legacy(
            config, ("replay_capacity",) + ENGINE_KWARGS, legacy
        )
        self.matcher = matcher
        self.metrics = BrokerMetrics(registry)
        self.engine = ThematicEventEngine(
            matcher,
            engine_config(self.config),
            registry=self.metrics.registry,
            clock=clock,
        )
        self.dead_letters = DeadLetterQueue(self.config.dead_letter_capacity)
        # Constructing the journal *is* recovery: an existing directory
        # is replayed into durability.state before the broker accepts
        # any work (durability.report is None on a pristine directory).
        self.durability: BrokerDurability | None = None
        if self.config.durability is not None:
            self.durability = BrokerDurability(
                self.config.durability,
                replay_capacity=self.config.replay_capacity,
                registry=self.metrics.registry,
                clock=clock,
            )
            self.dead_letters.on_drain = self.durability.log_dlq_drain
        self.reliability = ReliableDelivery(
            self.metrics,
            policy=self.config.delivery,
            dead_letters=self.dead_letters,
            clock=clock,
            durability=self.durability,
        )
        self._subscribers: dict[int, SubscriptionHandle] = {}
        self._engine_handles: dict[int, object] = {}
        self._replay: deque[tuple[int, Event]] = deque(
            maxlen=self.config.replay_capacity
        )
        self._next_id = 0
        self._sequence = 0
        # Sequence number and trace context stamped onto deliveries of
        # the event currently flowing through the engine (set by publish
        # before dispatch).
        self._publishing_sequence = -1
        self._publishing_ctx: TraceContext | None = None
        #: Handles restored from the journal, by original subscriber id.
        #: Callbacks are not journaled (they are code); a recovering
        #: application reattaches them here before ``recover_pending``.
        self.recovered: dict[int, SubscriptionHandle] = {}
        self._pending_recovery: list[tuple[int, Event]] = []
        if self.durability is not None and self.durability.report is not None:
            self._restore()

    # -- subscriber side ---------------------------------------------------

    def subscribe(
        self,
        subscription: Subscription,
        callback: Callable[[Delivery], None] | None = None,
        *,
        replay: bool = False,
        policy: DeliveryPolicy | None = None,
    ) -> SubscriptionHandle:
        """Register a subscription; optionally replay buffered events.

        With ``replay=True`` the retained events are matched against the
        new subscription immediately (time decoupling: consumers need
        not be active when producers fire). ``policy`` overrides the
        broker-wide delivery policy for this subscriber alone.

        The handle's ``id`` is assigned here (registration order) and
        its :attr:`~repro.core.engine.SubscriptionHandle.key` is a
        stable, serializable function of ``(id, subscription)`` — the
        identity durable journals use across restarts.
        """
        handle = self._register(subscription, callback, policy)
        if replay:
            for sequence, event in list(self._replay):
                result = self._evaluate(subscription, event)
                if result is not None:
                    self.metrics.inc("replayed")
                    ctx = TRACER.mint_trace()
                    with TRACER.root_span("broker.replay", ctx):
                        self._deliver(
                            handle,
                            Delivery(result=result, sequence=sequence, trace=ctx),
                        )
        return handle

    def unsubscribe(self, handle: SubscriptionHandle) -> bool:
        if handle.id not in self._subscribers:
            return False
        if self.durability is not None:
            # Write-ahead: journal the removal before applying it. The
            # unknown-id early return above keeps this the *only* path
            # to the mutation, so the journal record always precedes it
            # (RL700: the log call must dominate the state change).
            self.durability.log_unsubscribe(handle.id)
        engine_handle = self._engine_handles.pop(handle.id, None)
        if engine_handle is not None:
            self.engine.unsubscribe(engine_handle)
        del self._subscribers[handle.id]
        return True

    def subscriber_count(self) -> int:
        return len(self._subscribers)

    # -- publisher side ----------------------------------------------------

    def publish(self, event: Event, *, trace: TraceContext | None = None) -> int:
        """Match ``event`` against all subscriptions; returns the match
        count.

        Dispatch is one staged ``match_batch`` over the registration
        snapshot (see :class:`~repro.core.engine.ThematicEventEngine`);
        ``evaluations`` still counts every (subscription, event) pair
        considered, pruned or not. A matched delivery whose callback
        exhausts its retry budget is dead-lettered, not dropped — the
        return value counts matches, ``metrics.deliveries`` counts
        deliveries that reached an inbox.

        ``trace`` is the event's causal context when a front-end broker
        (threaded ingress) minted one at enqueue time; left ``None``, a
        fresh context is minted here. Either way this span is the trace
        root and every delivery of the event carries the context.
        """
        ctx = trace if trace is not None else TRACER.mint_trace()
        with TRACER.root_span("broker.publish", ctx):
            self.metrics.inc("published")
            sequence = self._sequence
            self._sequence += 1
            if self.durability is not None:
                # Write-ahead: the event is durable (redo record) before
                # any matching or delivery can observe it.
                self.durability.log_publish(sequence, event)
            self._replay.append((sequence, event))
            self.metrics.inc("evaluations", self.engine.subscription_count())
            self._publishing_sequence = sequence
            self._publishing_ctx = ctx
            matched = len(self.engine.process(event))
            if self.durability is not None:
                # Every delivery of this event has reached its terminal
                # state; the journal can forget the in-flight entry.
                self.durability.log_done(sequence)
            return matched

    # -- durability ----------------------------------------------------------

    def recover_pending(self) -> int:
        """Re-dispatch events that were in flight at the crash.

        A ``pub`` record without a matching ``done`` means the event was
        published but its dispatch never completed. Re-running dispatch
        is safe because the idempotency keys suppress every delivery
        that already reached an inbox or the dead-letter queue before
        the crash — only the unfinished remainder runs. Call after
        reattaching callbacks to the :attr:`recovered` handles; returns
        the number of events re-dispatched.
        """
        pending = self._pending_recovery
        self._pending_recovery = []
        for sequence, event in pending:
            ctx = TRACER.mint_trace()
            with TRACER.root_span("broker.recover", ctx):
                self.metrics.inc("evaluations", self.engine.subscription_count())
                self._publishing_sequence = sequence
                self._publishing_ctx = ctx
                self.engine.process(event)
            if self.durability is not None:
                self.durability.log_done(sequence)
        return len(pending)

    def close(self) -> None:
        """Flush and close the journal (no-op without durability)."""
        if self.durability is not None:
            self.durability.close()

    def _restore(self) -> None:
        """Rebuild broker state from the recovered journal mirror."""
        durability = self.durability
        assert durability is not None
        state = durability.state
        for sub_id, key, subscription, policy in state.subscription_entries():
            handle = self._register(
                subscription, None, policy, sub_id=sub_id, key=key, log=False
            )
            self.recovered[sub_id] = handle
        # Undrained inbox cursors: re-derive each Delivery by matching
        # the journaled event against the subscription — deterministic,
        # so the restored inbox equals the lost one.
        for sub_id, sequences in state.live_entries():
            handle = self._subscribers.get(sub_id)
            if handle is None:
                continue
            for sequence in sequences:
                event = state.event(sequence)
                result = (
                    self.engine.match_one(handle.subscription, event)
                    if event is not None
                    else None
                )
                if result is None:
                    durability.note_restore_miss()
                    continue
                handle.append(Delivery(result=result, sequence=sequence))
        for entry in state.dead_letter_entries():
            sub_id = int(entry["id"])
            sequence = int(entry["seq"])
            handle = self._subscribers.get(sub_id)
            event = state.event(sequence)
            result = (
                self.engine.match_one(handle.subscription, event)
                if handle is not None and event is not None
                else None
            )
            if result is None:
                durability.note_restore_miss()
                continue
            self.dead_letters.append(
                DeadLetterRecord(
                    delivery=Delivery(result=result, sequence=sequence),
                    subscriber_id=sub_id,
                    reason=str(entry["reason"]),
                    attempts=int(entry["attempts"]),
                    error=entry.get("error"),
                    timestamp=str(entry.get("timestamp") or ""),
                    trace_id=entry.get("trace_id"),
                )
            )
        self._replay.extend(state.ring_entries())
        self._sequence = state.next_sequence
        self._next_id = max(self._next_id, state.next_id)
        self._pending_recovery = state.pending_entries()

    # -- internals -----------------------------------------------------------

    def _register(
        self,
        subscription: Subscription,
        callback: Callable[[Delivery], None] | None,
        policy: DeliveryPolicy | None,
        *,
        sub_id: int | None = None,
        key: str = "",
        log: bool = True,
    ) -> SubscriptionHandle:
        """Create + wire one handle (fresh subscribe or journal restore)."""
        if sub_id is None:
            sub_id = self._next_id
        handle = SubscriptionHandle(
            id=sub_id,
            subscription=subscription,
            policy=policy,
            callback=callback,
            key=key,
        )
        durability = self.durability
        if durability is not None:
            handle.on_drain = lambda count, _id=sub_id: durability.log_drain(
                _id, count
            )
            if log:
                # Write-ahead: the registration is durable before it can
                # observe any event.
                durability.log_subscribe(handle)
        self._subscribers[sub_id] = handle
        self._engine_handles[sub_id] = self.engine.subscribe(
            subscription,
            lambda result, _handle=handle: self._deliver(
                _handle,
                Delivery(
                    result=result,
                    sequence=self._publishing_sequence,
                    trace=self._publishing_ctx,
                ),
            ),
        )
        self._next_id = max(self._next_id, sub_id + 1)
        return handle

    def _evaluate(self, subscription: Subscription, event: Event) -> MatchResult | None:
        self.metrics.inc("evaluations")
        return self.engine.match_one(subscription, event)

    def _deliver(self, handle: SubscriptionHandle, delivery: Delivery) -> None:
        self.reliability.dispatch(handle, delivery)
