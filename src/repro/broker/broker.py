"""A thematic publish/subscribe broker node.

The broker realizes the three classic decoupling dimensions of Figure 1
around the thematic matcher:

* **space** — publishers and subscribers only ever talk to the broker;
  neither knows the other exists;
* **time** — the broker keeps a bounded replay buffer, so a subscriber
  that arrives late can be caught up on recent events on request;
* **synchronization** — deliveries go to per-subscriber inbox queues;
  publishing never blocks on consumption and consumers drain their
  inbox whenever they choose (callbacks are optional).

The fourth dimension — **semantics** — is the paper's contribution: the
matcher is pluggable, so the same broker runs content-based (exact),
non-thematic approximate, or thematic matching.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.events import Event
from repro.core.matcher import MatchResult, ThematicMatcher
from repro.core.subscriptions import Subscription

__all__ = ["BrokerMetrics", "Delivery", "SubscriberHandle", "ThematicBroker"]


@dataclass
class BrokerMetrics:
    """Operational counters, exposed for tests and benchmarks."""

    published: int = 0
    evaluations: int = 0
    deliveries: int = 0
    replayed: int = 0
    callback_errors: int = 0


@dataclass(frozen=True)
class Delivery:
    """One matched event delivered to one subscriber."""

    result: MatchResult
    sequence: int

    @property
    def event(self) -> Event:
        return self.result.event

    @property
    def score(self) -> float:
        return self.result.score


@dataclass
class SubscriberHandle:
    """A subscriber's registration: its subscription and inbox queue."""

    subscriber_id: int
    subscription: Subscription
    inbox: deque = field(default_factory=deque)
    callback: Callable[[Delivery], None] | None = None

    def drain(self) -> list[Delivery]:
        """Remove and return everything currently in the inbox."""
        items = list(self.inbox)
        self.inbox.clear()
        return items


class ThematicBroker:
    """Single broker node hosting a matcher and a subscription registry.

    Parameters
    ----------
    matcher:
        Any matcher with the :class:`~repro.core.matcher.ThematicMatcher`
        interface (``match``/``matches``/``threshold``).
    replay_capacity:
        How many recent events the broker retains for late joiners.
    """

    def __init__(self, matcher: ThematicMatcher, *, replay_capacity: int = 256):
        self.matcher = matcher
        self.metrics = BrokerMetrics()
        self._subscribers: dict[int, SubscriberHandle] = {}
        self._replay: deque[tuple[int, Event]] = deque(maxlen=replay_capacity)
        self._next_id = 0
        self._sequence = 0

    # -- subscriber side ---------------------------------------------------

    def subscribe(
        self,
        subscription: Subscription,
        callback: Callable[[Delivery], None] | None = None,
        *,
        replay: bool = False,
    ) -> SubscriberHandle:
        """Register a subscription; optionally replay buffered events.

        With ``replay=True`` the retained events are matched against the
        new subscription immediately (time decoupling: consumers need
        not be active when producers fire).
        """
        handle = SubscriberHandle(
            subscriber_id=self._next_id,
            subscription=subscription,
            callback=callback,
        )
        self._subscribers[self._next_id] = handle
        self._next_id += 1
        if replay:
            for sequence, event in list(self._replay):
                result = self._evaluate(subscription, event)
                if result is not None:
                    self.metrics.replayed += 1
                    self._deliver(handle, Delivery(result=result, sequence=sequence))
        return handle

    def unsubscribe(self, handle: SubscriberHandle) -> bool:
        return self._subscribers.pop(handle.subscriber_id, None) is not None

    def subscriber_count(self) -> int:
        return len(self._subscribers)

    # -- publisher side ----------------------------------------------------

    def publish(self, event: Event) -> int:
        """Match ``event`` against all subscriptions; returns deliveries."""
        self.metrics.published += 1
        sequence = self._sequence
        self._sequence += 1
        self._replay.append((sequence, event))
        delivered = 0
        for handle in list(self._subscribers.values()):
            result = self._evaluate(handle.subscription, event)
            if result is not None:
                delivered += 1
                self._deliver(handle, Delivery(result=result, sequence=sequence))
        return delivered

    # -- internals -----------------------------------------------------------

    def _evaluate(self, subscription: Subscription, event: Event) -> MatchResult | None:
        self.metrics.evaluations += 1
        result = self.matcher.match(subscription, event)
        if result is None or not result.is_match(self.matcher.threshold):
            return None
        return result

    def _deliver(self, handle: SubscriberHandle, delivery: Delivery) -> None:
        self.metrics.deliveries += 1
        handle.inbox.append(delivery)
        if handle.callback is not None:
            try:
                handle.callback(delivery)
            except Exception:
                # One subscriber's broken callback must not take down the
                # broker or starve other subscribers; the delivery stays
                # in the inbox either way.
                self.metrics.callback_errors += 1
