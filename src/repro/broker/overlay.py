"""Simulated multi-broker overlay network.

Internet-scale event systems (SIENA [7]) run a network of brokers so
producers and consumers attach to their nearest node. This module
simulates such an overlay: brokers are vertices of a ``networkx`` graph,
events published at one node propagate hop-by-hop to every reachable
node (scoped by a TTL), and each node matches against its local
subscribers only — one staged, prefilter-backed ``match_batch`` per
event at each node (see :class:`~repro.core.engine.ThematicEventEngine`).

Approximate semantic subscriptions cannot be summarized/covered the way
exact predicates can (there is no containment relation between
arbitrary relatedness queries), so the overlay floods with
de-duplication — the honest baseline routing for this model, and the
reason the paper treats single-node matcher throughput as the unit of
efficiency. Routing statistics are exposed so the examples can show the
cost of flooding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import networkx as nx

from repro.broker.broker import ThematicBroker
from repro.broker.config import BrokerConfig
from repro.core.engine import SubscriptionHandle
from repro.core.events import Event
from repro.core.matcher import ThematicMatcher
from repro.core.subscriptions import Subscription

__all__ = ["OverlayMetrics", "BrokerOverlay"]


@dataclass
class OverlayMetrics:
    """Network-level counters."""

    injected: int = 0
    hops: int = 0
    duplicate_suppressions: int = 0
    deliveries: int = 0


@dataclass
class _Node:
    name: str
    broker: ThematicBroker
    seen: set[int] = field(default_factory=set)
    failed: bool = False


class BrokerOverlay:
    """A graph of :class:`ThematicBroker` nodes with flood routing.

    Parameters
    ----------
    graph:
        Overlay topology; every node of the graph becomes a broker.
    matcher_factory:
        Called once per node to build its matcher (nodes can share a
        vector space but should not share score caches across threads).
    default_ttl:
        Hop budget for event propagation; ``None`` floods everywhere.
    """

    def __init__(
        self,
        graph: nx.Graph,
        matcher_factory: Callable[[], ThematicMatcher],
        *,
        default_ttl: int | None = None,
        replay_capacity: int = 256,
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("overlay needs at least one node")
        self.graph = graph
        self.metrics = OverlayMetrics()
        self._nodes: dict[str, _Node] = {}
        self._event_counter = 0
        config = BrokerConfig(replay_capacity=replay_capacity)
        for name in graph.nodes:
            matcher: ThematicMatcher = matcher_factory()
            self._nodes[name] = _Node(
                name=name,
                broker=ThematicBroker(matcher, config),
            )

    def broker(self, node: str) -> ThematicBroker:
        return self._nodes[node].broker

    def nodes(self) -> tuple[str, ...]:
        return tuple(self._nodes)

    def subscribe(
        self,
        node: str,
        subscription: Subscription,
        callback: Callable[[Delivery], None] | None = None,
    ) -> SubscriptionHandle:
        """Attach a subscriber at its local broker node."""
        return self._nodes[node].broker.subscribe(subscription, callback)

    # -- fault injection -------------------------------------------------------

    def fail_node(self, node: str) -> None:
        """Crash a broker: it stops matching and stops forwarding.

        Events routed through a failed node are lost for the partition
        behind it — the honest consequence of flood routing without
        retransmission, observable in the tests.
        """
        self._nodes[node].failed = True

    def recover_node(self, node: str) -> None:
        """Bring a crashed broker back (its subscriptions survive)."""
        self._nodes[node].failed = False

    def failed_nodes(self) -> tuple[str, ...]:
        return tuple(
            name for name, node in self._nodes.items() if node.failed
        )

    def publish(self, node: str, event: Event, *, ttl: int | None = None) -> int:
        """Inject an event at ``node``; flood with de-duplication.

        Returns total deliveries across the overlay. Propagation is
        breadth-first so ``ttl`` bounds the hop distance from the
        injection point.
        """
        if node not in self._nodes:
            raise KeyError(f"unknown overlay node {node!r}")
        if self._nodes[node].failed:
            raise RuntimeError(f"overlay node {node!r} is down")
        self.metrics.injected += 1
        event_id = self._event_counter
        self._event_counter += 1
        budget = ttl
        delivered = 0
        frontier = [(node, 0)]
        self._nodes[node].seen.add(event_id)
        while frontier:
            current, distance = frontier.pop(0)
            delivered += self._nodes[current].broker.publish(event)
            if budget is not None and distance >= budget:
                continue
            for neighbour in self.graph.neighbors(current):
                neighbour_node = self._nodes[neighbour]
                if neighbour_node.failed:
                    continue  # crashed brokers neither match nor forward
                if event_id in neighbour_node.seen:
                    self.metrics.duplicate_suppressions += 1
                    continue
                neighbour_node.seen.add(event_id)
                self.metrics.hops += 1
                frontier.append((neighbour, distance + 1))
        self.metrics.deliveries += delivered
        return delivered

    def total_subscribers(self) -> int:
        return sum(n.broker.subscriber_count() for n in self._nodes.values())
