"""Shared ingress-queue machinery for the threaded broker front-ends.

Both queue-backed brokers (:class:`~repro.broker.threaded.ThreadedBroker`
and :class:`~repro.broker.sharded.ShardedBroker`) need the same three
pieces around their ``queue.Queue``:

* a shutdown sentinel (:data:`STOP`);
* a leak-free bounded wait for the queue to drain
  (:func:`wait_until_drained`) — the original ``flush(timeout=...)``
  spawned a daemon thread blocking on ``Queue.join()`` forever when the
  queue never drained, leaking one thread per timed-out flush;
* adaptive micro-batch collection (:func:`collect_batch`): drain
  whatever is already queued up to ``max_batch``, then wait a short
  *linger* for stragglers so bursts amortize per-batch dispatch cost
  without adding latency to a steady trickle.
"""

from __future__ import annotations

import queue

from repro.obs.clock import MONOTONIC_CLOCK, Clock

__all__ = ["STOP", "collect_batch", "wait_until_drained"]

#: Sentinel item shutting a broker's dispatcher thread down.
STOP = object()


def wait_until_drained(
    q: queue.Queue,
    timeout: float | None = None,
    *,
    clock: Clock = MONOTONIC_CLOCK,
) -> bool:
    """Block until every item put on ``q`` has been ``task_done``-ed.

    ``Queue.join()`` with a deadline, built on the queue's own
    ``all_tasks_done`` condition (a documented attribute since the
    module's first release) so no helper thread is needed: returns
    ``True`` when the queue drained, ``False`` when ``timeout`` elapsed
    first — leaving nothing behind either way.
    """
    if timeout is None:
        q.join()
        return True
    deadline = clock.monotonic() + timeout
    with q.all_tasks_done:
        while q.unfinished_tasks:
            remaining = deadline - clock.monotonic()
            if remaining <= 0:
                return False
            q.all_tasks_done.wait(remaining)
    return True


def collect_batch(
    q: queue.Queue,
    first: object,
    max_batch: int,
    linger: float,
    *,
    clock: Clock = MONOTONIC_CLOCK,
) -> tuple[list, bool]:
    """Collect one micro-batch starting from an already-dequeued item.

    Drains items that are immediately available, up to ``max_batch``;
    once the queue runs dry, waits up to ``linger`` seconds (measured
    from the first dry ``get``) for more before settling for a smaller
    batch. Returns ``(items, saw_stop)``; when :data:`STOP` is
    encountered it terminates the batch and is *not* included in the
    items (the caller still owes its ``task_done``).
    """
    batch = [first]
    saw_stop = False
    deadline: float | None = None
    while len(batch) < max_batch:
        try:
            item = q.get_nowait()
        except queue.Empty:
            if linger <= 0.0:
                break
            if deadline is None:
                deadline = clock.monotonic() + linger
            remaining = deadline - clock.monotonic()
            if remaining <= 0.0:
                break
            try:
                item = q.get(timeout=remaining)
            except queue.Empty:
                break
        if item is STOP:
            saw_stop = True
            break
        batch.append(item)
    return batch, saw_stop
