"""Durable broker state: CRC-framed write-ahead log + snapshots.

PR 4's no-loss invariant (inbox deliveries + dead letters == matched
count) dies with the process: a broker crash loses every registration,
inbox cursor, and dead letter it was holding. This module makes the
guarantee survive a crash:

* every state transition — subscription registered/removed, event
  published, delivery consumed, delivery dead-lettered, inbox drained,
  event fully dispatched — is appended to a **write-ahead log** before
  the in-memory effect becomes observable, as a CRC32-framed JSON
  record;
* a periodic **snapshot** (atomic tmp+rename, CRC-guarded) bounds
  recovery time: restart loads the newest valid snapshot and replays
  only the journal records written after it;
* replay rebuilds a :class:`DurableState` mirror from which a broker
  restores its registrations (with their original ids and stable
  :attr:`~repro.core.engine.SubscriptionHandle.key` strings), undrained
  inboxes, dead letters, replay ring, and sequence counter — and
  re-dispatches events that were published but not fully dispatched;
* the **idempotency key** of a delivery is ``(subscriber id, event
  sequence)``. An ``ack`` record is written *after* the callback
  succeeds but *before* the inbox append, so a key that reached either
  terminal state (inbox or DLQ) before the crash is suppressed on
  re-dispatch — at-least-once retries compose with recovery into
  effectively-once consumption.

Write ordering is what makes the composition sound:

====  =========================================================
when  record
====  =========================================================
1     ``pub`` — before the event is matched (the redo record)
2     ``ack`` — after the callback succeeded, before the inbox
      append (the idempotency barrier)
2'    ``dlq`` — before the in-memory dead-letter append
3     ``done`` — after every delivery of the event dispatched
====  =========================================================

A crash between 2 and the inbox append is the PR-4 at-least-once edge:
the callback ran, the inbox never heard about it. On recovery the key
is settled, the callback is *not* re-invoked, and the delivery is
restored straight into the inbox by deterministically re-matching the
journaled event.

Torn writes are expected, not exceptional: the reader stops at a short
or CRC-mismatching frame, reports it
(:attr:`RecoveryReport.truncated_tail` /
:attr:`RecoveryReport.corrupt_records`), and recovery continues from
the last complete record. Nothing past a corrupt frame is replayed —
a bit flip is surfaced, never silently interpreted.

Fault injection: :meth:`BrokerDurability.arm_kill` plants a
:class:`SimulatedCrash` at a WAL byte offset (see
:class:`~repro.broker.faults.KillFault`). ``SimulatedCrash`` derives
from :class:`BaseException` on purpose — broker dispatcher loops guard
batches with ``except Exception``, and a process death must not be
swallowed by a batch-error guard.

All timing flows through the injectable
:class:`~repro.obs.clock.Clock`; this module never touches ``time``.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.broker.reliability import DeliveryPolicy
from repro.core.events import AttributeValue, Event
from repro.core.subscriptions import Predicate, Subscription
from repro.obs import MetricsRegistry
from repro.obs.clock import MONOTONIC_CLOCK, Clock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.broker.reliability import DeadLetterRecord
    from repro.core.engine import SubscriptionHandle

__all__ = [
    "BrokerDurability",
    "DurabilityPolicy",
    "RecoveryReport",
    "SegmentScan",
    "SimulatedCrash",
    "WriteAheadLog",
    "read_wal_segment",
]

#: Segment header: magic + format version. A segment that does not
#: start with this is not replayed (wrong format beats wrong data).
SEGMENT_HEADER = b"RWAL1\n"

#: Frame prefix: little-endian (payload length, payload crc32).
_FRAME = struct.Struct("<II")

_FSYNC_MODES = ("always", "batch", "never")
_KILL_MODES = ("before", "torn", "after")

SNAPSHOT_FORMAT = "repro.wal-snapshot/v1"


class SimulatedCrash(BaseException):
    """A scripted broker death at a WAL offset (fault injection).

    Deliberately a :class:`BaseException`: dispatcher threads guard
    micro-batches with ``except Exception``, and a simulated process
    death must kill the thread the way a real one would, not be
    absorbed into a batch-error counter.
    """


@dataclass(frozen=True)
class DurabilityPolicy:
    """How a broker journals its state.

    Parameters
    ----------
    directory:
        Journal home. One broker per directory; segments are named
        ``wal-<generation>.log``, snapshots ``snap-<generation>.json``.
    fsync:
        ``"always"`` — fsync after every record (strongest, slowest);
        ``"batch"`` — fsync every ``fsync_batch_records`` records (the
        default: bounded loss window, near-``"never"`` throughput —
        see ``benchmarks/bench_wal_overhead.py``);
        ``"never"`` — flush to the OS, let the kernel decide.
    fsync_batch_records:
        Records between fsyncs in ``"batch"`` mode.
    snapshot_every:
        Journal records between snapshots (and segment rotations);
        ``0`` disables periodic snapshots (the log grows unbounded and
        recovery replays it all).
    """

    directory: str
    fsync: str = "batch"
    fsync_batch_records: int = 32
    snapshot_every: int = 512

    def __post_init__(self) -> None:
        if not self.directory:
            raise ValueError("directory must be a non-empty path")
        if self.fsync not in _FSYNC_MODES:
            raise ValueError(
                f"unknown fsync mode {self.fsync!r} (expected {_FSYNC_MODES})"
            )
        if self.fsync_batch_records < 1:
            raise ValueError("fsync_batch_records must be >= 1")
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0 (0 disables)")


# -- serialization helpers (events/subscriptions/policies <-> JSON) --------


def event_to_dict(event: Event) -> dict[str, Any]:
    return {
        "theme": sorted(event.theme),
        "payload": [[av.attribute, av.value] for av in event.payload],
    }


def event_from_dict(data: dict[str, Any]) -> Event:
    return Event(
        theme=frozenset(data["theme"]),
        payload=tuple(
            AttributeValue(attribute, value)
            for attribute, value in data["payload"]
        ),
    )


def subscription_to_dict(subscription: Subscription) -> dict[str, Any]:
    return {
        "theme": sorted(subscription.theme),
        "predicates": [
            [p.attribute, p.value, p.approx_attribute, p.approx_value, p.operator]
            for p in subscription.predicates
        ],
    }


def subscription_from_dict(data: dict[str, Any]) -> Subscription:
    return Subscription(
        theme=frozenset(data["theme"]),
        predicates=tuple(
            Predicate(attribute, value, bool(approx_a), bool(approx_v), operator)
            for attribute, value, approx_a, approx_v, operator in data["predicates"]
        ),
    )


def policy_to_dict(policy: DeliveryPolicy) -> dict[str, Any]:
    return {
        "deadline": policy.deadline,
        "max_retries": policy.max_retries,
        "backoff_base": policy.backoff_base,
        "backoff_multiplier": policy.backoff_multiplier,
        "backoff_cap": policy.backoff_cap,
        "jitter": policy.jitter,
        "breaker_threshold": policy.breaker_threshold,
        "breaker_reset": policy.breaker_reset,
        "seed": policy.seed,
    }


def policy_from_dict(data: dict[str, Any]) -> DeliveryPolicy:
    return DeliveryPolicy(**data)


def _encode(record: dict[str, Any]) -> bytes:
    # Canonical form: sorted keys, no whitespace — byte-identical
    # re-runs give byte-identical journals, which the effectively-once
    # test relies on to target a kill offset discovered in a clean run.
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")


# -- the framed log --------------------------------------------------------


@dataclass
class SegmentScan:
    """Result of reading one WAL segment from disk."""

    records: list[dict[str, Any]]
    #: Absolute in-file byte offset where each record's frame starts.
    offsets: list[int]
    #: Bytes of the segment that parsed cleanly (header + whole frames).
    valid_bytes: int
    #: Trailing bytes formed an incomplete frame (torn write).
    truncated_tail: bool
    #: A complete frame failed its CRC (bit rot / overwrite). Nothing
    #: after it is returned — a corrupt prefix poisons what follows.
    corrupt_records: int
    #: Segment header missing or wrong version; nothing was read.
    bad_header: bool


def read_wal_segment(path: Path) -> SegmentScan:
    """Parse one segment, stopping at the first torn or corrupt frame."""
    data = path.read_bytes()
    scan = SegmentScan(
        records=[],
        offsets=[],
        valid_bytes=0,
        truncated_tail=False,
        corrupt_records=0,
        bad_header=False,
    )
    if not data.startswith(SEGMENT_HEADER):
        scan.bad_header = True
        return scan
    offset = len(SEGMENT_HEADER)
    scan.valid_bytes = offset
    total = len(data)
    while offset < total:
        if offset + _FRAME.size > total:
            scan.truncated_tail = True
            break
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > total:
            scan.truncated_tail = True
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            scan.corrupt_records += 1
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            # CRC matched but the payload is not a record we wrote —
            # treat as corruption, same containment rule.
            scan.corrupt_records += 1
            break
        scan.records.append(record)
        scan.offsets.append(offset)
        offset = end
        scan.valid_bytes = offset
    return scan


class WriteAheadLog:
    """Append-only CRC-framed segment writer for one journal directory.

    Not thread-safe on its own: :class:`BrokerDurability` serializes
    every append under its journal lock; standalone users (the WAL
    overhead bench) are single-threaded.

    ``offset`` counts every byte this writer has appended across all
    segments it opened (headers included) — the coordinate system for
    :meth:`arm_kill`.
    """

    def __init__(
        self,
        directory: Path,
        *,
        fsync: str = "batch",
        fsync_batch_records: int = 32,
        fsync_counter: Any | None = None,
    ) -> None:
        if fsync not in _FSYNC_MODES:
            raise ValueError(
                f"unknown fsync mode {fsync!r} (expected {_FSYNC_MODES})"
            )
        self.directory = directory
        self.fsync = fsync
        self.fsync_batch_records = fsync_batch_records
        self.offset = 0
        self.crashed = False
        self._file: Any | None = None
        self._current_path: Path | None = None
        self._since_fsync = 0
        self._fsync_counter = fsync_counter
        self._kill_at: int | None = None
        self._kill_mode = "before"

    def arm_kill(self, at: int, mode: str = "before") -> None:
        """Crash with :class:`SimulatedCrash` at cumulative offset ``at``.

        ``mode`` decides what the append that crosses ``at`` leaves on
        disk: ``"before"`` nothing, ``"torn"`` a partial frame (the torn
        write the reader must survive), ``"after"`` the whole frame,
        fsynced (the record is durable, its in-memory effect is not).
        """
        if at < 0:
            raise ValueError("kill offset must be >= 0")
        if mode not in _KILL_MODES:
            raise ValueError(
                f"unknown kill mode {mode!r} (expected {_KILL_MODES})"
            )
        self._kill_at = at
        self._kill_mode = mode

    def open_segment(self, generation: int) -> Path:
        """Close the current segment and start ``wal-<generation>.log``."""
        self.close()
        path = self.directory / f"wal-{generation:08d}.log"
        self._file = open(path, "wb")
        self._file.write(SEGMENT_HEADER)
        self._file.flush()
        self._current_path = path
        self.offset += len(SEGMENT_HEADER)
        self._since_fsync = 0
        return path

    def append(self, record: dict[str, Any]) -> int:
        """Frame and append one record; returns the bytes written.

        Raises :class:`SimulatedCrash` when an armed kill offset is
        crossed (and on every append after it — a dead broker stays
        dead).
        """
        if self.crashed:
            raise SimulatedCrash("write-ahead log already crashed")
        if self._file is None:
            if self._current_path is None:
                raise RuntimeError("no open segment (call open_segment first)")
            # A drain (or other late journaling) after close(): reopen
            # the segment for appending so shutdown-time consumption is
            # still durable instead of raising on a closed journal.
            self._file = open(self._current_path, "ab")
        payload = _encode(record)
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        if self._kill_at is not None and self.offset + len(frame) > self._kill_at:
            self._simulate_crash(frame)
        self._file.write(frame)
        self._file.flush()
        self.offset += len(frame)
        self._since_fsync += 1
        if self.fsync == "always" or (
            self.fsync == "batch"
            and self._since_fsync >= self.fsync_batch_records
        ):
            self.sync()
        return len(frame)

    def sync(self) -> None:
        """fsync the current segment (no-op when nothing is open)."""
        if self._file is None:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        self._since_fsync = 0
        if self._fsync_counter is not None:
            self._fsync_counter.inc()

    def close(self) -> None:
        if self._file is not None:
            if not self.crashed:
                self._file.flush()
                if self.fsync != "never":
                    os.fsync(self._file.fileno())
            self._file.close()
            self._file = None

    def _simulate_crash(self, frame: bytes) -> None:
        self.crashed = True
        assert self._file is not None
        if self._kill_mode == "torn":
            # Leave a partial frame on disk: at least one byte, never
            # the whole thing — the reader must stop at it cleanly.
            cut = max(1, min(len(frame) - 1, (self._kill_at or 0) - self.offset))
            self._file.write(frame[:cut])
            self._file.flush()
            os.fsync(self._file.fileno())
        elif self._kill_mode == "after":
            self._file.write(frame)
            self._file.flush()
            os.fsync(self._file.fileno())
        raise SimulatedCrash(
            f"simulated crash at WAL offset {self.offset} "
            f"(mode={self._kill_mode!r})"
        )


# -- the replayable state mirror -------------------------------------------


class DurableState:
    """Pure state machine over journal records.

    The same :meth:`apply` runs in two places: live (under the journal
    lock, as each record is appended) and during recovery (replaying a
    snapshot plus the journal delta). Whatever path built it, the state
    is a deterministic function of the record sequence.
    """

    def __init__(self, replay_capacity: int) -> None:
        self.replay_capacity = replay_capacity
        self.next_sequence = 0
        self.next_id = 0
        #: id -> {"key": str, "s": subscription dict, "policy": dict|None}
        self.subs: dict[int, dict[str, Any]] = {}
        #: id -> consumed-but-not-drained sequences, in inbox order.
        self.live: dict[int, list[int]] = {}
        #: in-flight events: seq -> {"acked": set[id], "dead": set[id]}
        self.pending: dict[int, dict[str, set[int]]] = {}
        #: retained event bodies: seq -> event dict.
        self.events: dict[int, dict[str, Any]] = {}
        #: dead letters, oldest first (JSON-safe dicts).
        self.dlq: list[dict[str, Any]] = []

    # -- record application ------------------------------------------------

    def apply(self, record: dict[str, Any]) -> None:
        kind = record["t"]
        if kind == "sub":
            sub_id = int(record["id"])
            self.subs[sub_id] = {
                "key": record["key"],
                "s": record["s"],
                "policy": record.get("policy"),
            }
            self.live.setdefault(sub_id, [])
            self.next_id = max(self.next_id, sub_id + 1)
        elif kind == "unsub":
            sub_id = int(record["id"])
            self.subs.pop(sub_id, None)
            self.live.pop(sub_id, None)
        elif kind == "pub":
            seq = int(record["seq"])
            self.events[seq] = record["e"]
            self.pending[seq] = {"acked": set(), "dead": set()}
            self.next_sequence = max(self.next_sequence, seq + 1)
        elif kind == "ack":
            sub_id = int(record["id"])
            seq = int(record["seq"])
            self.live.setdefault(sub_id, []).append(seq)
            entry = self.pending.get(seq)
            if entry is not None:
                entry["acked"].add(sub_id)
        elif kind == "dlq":
            seq = int(record["seq"])
            sub_id = int(record["id"])
            self.dlq.append({k: v for k, v in record.items() if k != "t"})
            entry = self.pending.get(seq)
            if entry is not None:
                entry["dead"].add(sub_id)
        elif kind == "drain":
            drained = self.live.get(int(record["id"]))
            if drained is not None:
                del drained[: int(record["n"])]
        elif kind == "dlqdrain":
            del self.dlq[: int(record["n"])]
        elif kind == "done":
            self.pending.pop(int(record["seq"]), None)
        else:
            raise ValueError(f"unknown journal record type {kind!r}")

    def is_settled(self, sub_id: int, sequence: int) -> bool:
        """Did ``(sub_id, sequence)`` reach a terminal state already?

        Only meaningful for in-flight sequences — exactly the ones a
        recovery re-dispatch can offer again. A settled key must not be
        re-consumed (inbox) nor re-parked (DLQ).
        """
        entry = self.pending.get(sequence)
        if entry is None:
            return False
        return sub_id in entry["acked"] or sub_id in entry["dead"]

    def prune_events(self) -> None:
        """Drop event bodies nothing references (run at snapshot time).

        Retained while: in flight, inside the replay-ring window,
        referenced by an undrained inbox entry, or referenced by a dead
        letter.
        """
        keep: set[int] = set(self.pending)
        window_low = max(0, self.next_sequence - self.replay_capacity)
        keep.update(s for s in self.events if s >= window_low)
        for seqs in self.live.values():
            keep.update(seqs)
        keep.update(int(entry["seq"]) for entry in self.dlq)
        self.events = {s: e for s, e in self.events.items() if s in keep}

    # -- snapshot round trip -----------------------------------------------

    def to_snapshot(self) -> dict[str, Any]:
        self.prune_events()
        return {
            "next_sequence": self.next_sequence,
            "next_id": self.next_id,
            "replay_capacity": self.replay_capacity,
            "subs": {str(k): v for k, v in self.subs.items()},
            "live": {str(k): list(v) for k, v in self.live.items()},
            "pending": {
                str(seq): {
                    "acked": sorted(entry["acked"]),
                    "dead": sorted(entry["dead"]),
                }
                for seq, entry in self.pending.items()
            },
            "events": {str(k): v for k, v in self.events.items()},
            "dlq": list(self.dlq),
        }

    def load_snapshot(self, data: dict[str, Any]) -> None:
        self.next_sequence = int(data["next_sequence"])
        self.next_id = int(data["next_id"])
        self.subs = {int(k): v for k, v in data["subs"].items()}
        self.live = {int(k): [int(s) for s in v] for k, v in data["live"].items()}
        self.pending = {
            int(seq): {
                "acked": {int(i) for i in entry["acked"]},
                "dead": {int(i) for i in entry["dead"]},
            }
            for seq, entry in data["pending"].items()
        }
        self.events = {int(k): v for k, v in data["events"].items()}
        self.dlq = list(data["dlq"])

    # -- typed accessors for broker restore --------------------------------

    def subscription_entries(
        self,
    ) -> list[tuple[int, str, Subscription, DeliveryPolicy | None]]:
        """Registered subscriptions, in id (= registration) order."""
        out: list[tuple[int, str, Subscription, DeliveryPolicy | None]] = []
        for sub_id in sorted(self.subs):
            spec = self.subs[sub_id]
            policy_spec = spec.get("policy")
            out.append(
                (
                    sub_id,
                    str(spec["key"]),
                    subscription_from_dict(spec["s"]),
                    policy_from_dict(policy_spec) if policy_spec else None,
                )
            )
        return out

    def live_entries(self) -> list[tuple[int, list[int]]]:
        """Per subscriber, consumed-but-undrained sequences in order."""
        return [
            (sub_id, list(seqs))
            for sub_id, seqs in sorted(self.live.items())
            if seqs
        ]

    def event(self, sequence: int) -> Event | None:
        data = self.events.get(sequence)
        return event_from_dict(data) if data is not None else None

    def dead_letter_entries(self) -> list[dict[str, Any]]:
        return list(self.dlq)

    def ring_entries(self) -> list[tuple[int, Event]]:
        """The replay-ring window, oldest first."""
        window_low = max(0, self.next_sequence - self.replay_capacity)
        return [
            (seq, event_from_dict(self.events[seq]))
            for seq in sorted(self.events)
            if seq >= window_low
        ]

    def pending_entries(self) -> list[tuple[int, Event]]:
        """Events published but not fully dispatched, oldest first."""
        out: list[tuple[int, Event]] = []
        for seq in sorted(self.pending):
            event = self.event(seq)
            if event is not None:
                out.append((seq, event))
        return out


# -- recovery --------------------------------------------------------------


@dataclass
class RecoveryReport:
    """What a restart found on disk and rebuilt from it."""

    snapshot_generation: int | None
    segments_replayed: int
    records_replayed: int
    corrupt_records: int
    truncated_tail: bool
    restored_subscriptions: int
    restored_pending: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "snapshot_generation": self.snapshot_generation,
            "segments_replayed": self.segments_replayed,
            "records_replayed": self.records_replayed,
            "corrupt_records": self.corrupt_records,
            "truncated_tail": self.truncated_tail,
            "restored_subscriptions": self.restored_subscriptions,
            "restored_pending": self.restored_pending,
        }


def _scan_generations(directory: Path, prefix: str, suffix: str) -> list[int]:
    generations: list[int] = []
    for path in directory.glob(f"{prefix}*{suffix}"):
        stem = path.name[len(prefix) : -len(suffix)]
        if stem.isdigit():
            generations.append(int(stem))
    return sorted(generations)


def load_snapshot_file(path: Path) -> dict[str, Any] | None:
    """Load and CRC-verify one snapshot; ``None`` when unusable."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(document, dict):
        return None
    if document.get("format") != SNAPSHOT_FORMAT:
        return None
    state = document.get("state")
    if not isinstance(state, dict):
        return None
    if zlib.crc32(_encode(state)) != document.get("crc"):
        return None
    return state


class BrokerDurability:
    """One broker's journal: logging facade + live state mirror + recovery.

    Constructing it *is* the recovery: the newest valid snapshot is
    loaded, journal segments after it are replayed (stopping cleanly at
    torn or corrupt frames), and — when anything was found — a fresh
    snapshot and segment are started so the repaired state is durable
    before the broker accepts new work. :attr:`report` is ``None`` for
    a pristine directory and a :class:`RecoveryReport` otherwise.

    Thread-safety: one internal lock serializes every append with its
    mirror update, so :attr:`state` is always consistent with what is
    on disk (minus an armed ``"after"``-mode kill, where the broker is
    dead anyway). The lock is never held across user callbacks and
    nothing inside it sleeps or re-enters the broker.
    """

    def __init__(
        self,
        policy: DurabilityPolicy,
        *,
        replay_capacity: int = 256,
        registry: MetricsRegistry | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.policy = policy
        self.directory = Path(policy.directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._clock = clock if clock is not None else MONOTONIC_CLOCK
        registry = registry if registry is not None else MetricsRegistry()
        self._records = registry.counter("durability.records")
        self._bytes = registry.counter("durability.bytes")
        self._fsyncs = registry.counter("durability.fsyncs")
        self._snapshots = registry.counter("durability.snapshots")
        self._recoveries = registry.counter("durability.recoveries")
        self._replayed = registry.counter("durability.replayed_records")
        self._corrupt = registry.counter("durability.corrupt_records")
        self._truncated = registry.counter("durability.truncated_tails")
        self._suppressed = registry.counter("durability.duplicates_suppressed")
        self._restore_misses = registry.counter("durability.restore_misses")
        self._append_seconds = registry.histogram("durability.append_seconds")
        self._lock = threading.Lock()
        self._records_since_snapshot = 0
        self.state = DurableState(replay_capacity)
        self.wal = WriteAheadLog(
            self.directory,
            fsync=policy.fsync,
            fsync_batch_records=policy.fsync_batch_records,
            fsync_counter=self._fsyncs,
        )
        self.report = self._recover()

    # -- recovery ----------------------------------------------------------

    def _recover(self) -> RecoveryReport | None:
        snapshot_gens = _scan_generations(self.directory, "snap-", ".json")
        wal_gens = _scan_generations(self.directory, "wal-", ".log")
        base_generation: int | None = None
        for generation in reversed(snapshot_gens):
            snapshot = load_snapshot_file(
                self.directory / f"snap-{generation:08d}.json"
            )
            if snapshot is not None:
                self.state.load_snapshot(snapshot)
                base_generation = generation
                break
        replay_from = base_generation if base_generation is not None else 0
        segments = 0
        replayed = 0
        corrupt = 0
        truncated = False
        for generation in wal_gens:
            if generation < replay_from:
                continue
            scan = read_wal_segment(self.directory / f"wal-{generation:08d}.log")
            for record in scan.records:
                self.state.apply(record)
                replayed += 1
            segments += 1
            corrupt += scan.corrupt_records
            truncated = truncated or scan.truncated_tail
            if scan.corrupt_records:
                # A corrupt frame poisons everything after it in *this
                # broker's history*, not just this segment: later
                # segments were written after the corrupted state.
                break
        if base_generation is None and not wal_gens:
            self._generation = 0
            self.wal.open_segment(0)
            return None
        next_generation = max([replay_from, *wal_gens]) + 1
        report = RecoveryReport(
            snapshot_generation=base_generation,
            segments_replayed=segments,
            records_replayed=replayed,
            corrupt_records=corrupt,
            truncated_tail=truncated,
            restored_subscriptions=len(self.state.subs),
            restored_pending=len(self.state.pending),
        )
        self._recoveries.inc()
        if replayed:
            self._replayed.inc(replayed)
        if corrupt:
            self._corrupt.inc(corrupt)
        if truncated:
            self._truncated.inc()
        # Make the repaired state durable *before* accepting new work:
        # a snapshot at the new generation supersedes any torn tail, so
        # fresh records never append after garbage bytes.
        self._generation = next_generation
        self._write_snapshot(next_generation)
        self.wal.open_segment(next_generation)
        return report

    # -- journaling facade -------------------------------------------------

    def log_subscribe(self, handle: "SubscriptionHandle") -> None:
        policy = handle.policy
        self._append(
            {
                "t": "sub",
                "id": handle.id,
                "key": handle.key,
                "s": subscription_to_dict(handle.subscription),
                "policy": policy_to_dict(policy) if policy is not None else None,
            }
        )

    def log_unsubscribe(self, sub_id: int) -> None:
        self._append({"t": "unsub", "id": sub_id})

    def log_publish(self, sequence: int, event: Event) -> None:
        self._append({"t": "pub", "seq": sequence, "e": event_to_dict(event)})

    def log_done(self, sequence: int) -> None:
        self._append({"t": "done", "seq": sequence})

    def log_ack(self, sub_id: int, sequence: int) -> None:
        self._append({"t": "ack", "id": sub_id, "seq": sequence})

    def log_dead_letter(self, record: "DeadLetterRecord") -> None:
        self._append(
            {
                "t": "dlq",
                "id": record.subscriber_id,
                "seq": record.delivery.sequence,
                "reason": record.reason,
                "attempts": record.attempts,
                "error": record.error,
                "timestamp": record.timestamp,
                "trace_id": record.trace_id,
            }
        )

    def log_drain(self, sub_id: int, count: int) -> None:
        self._append({"t": "drain", "id": sub_id, "n": count})

    def log_dlq_drain(self, count: int) -> None:
        self._append({"t": "dlqdrain", "n": count})

    # -- idempotency + fault hooks -----------------------------------------

    def is_settled(self, sub_id: int, sequence: int) -> bool:
        with self._lock:
            return self.state.is_settled(sub_id, sequence)

    def note_suppressed(self) -> None:
        self._suppressed.inc()

    def note_restore_miss(self) -> None:
        self._restore_misses.inc()

    def arm_kill(self, at: int, mode: str = "before") -> None:
        self.wal.arm_kill(at, mode)

    @property
    def crashed(self) -> bool:
        return self.wal.crashed

    # -- lifecycle ---------------------------------------------------------

    def snapshot_now(self) -> None:
        """Force a snapshot + segment rotation (tests, shutdown hooks)."""
        with self._lock:
            self._rotate()

    def close(self) -> None:
        with self._lock:
            self.wal.close()

    # -- internals ---------------------------------------------------------

    def _append(self, record: dict[str, Any]) -> None:
        with self._lock:
            started = self._clock.monotonic()
            written = self.wal.append(record)
            self.state.apply(record)
            self._records.inc()
            self._bytes.inc(written)
            self._append_seconds.record(self._clock.monotonic() - started)
            self._records_since_snapshot += 1
            if (
                self.policy.snapshot_every
                and self._records_since_snapshot >= self.policy.snapshot_every
            ):
                self._rotate()

    def _rotate(self) -> None:
        """Snapshot the mirror and start a new segment (lock held)."""
        self._generation += 1
        self._write_snapshot(self._generation)
        self.wal.open_segment(self._generation)
        self._records_since_snapshot = 0

    def _write_snapshot(self, generation: int) -> None:
        state = self.state.to_snapshot()
        document = {
            "format": SNAPSHOT_FORMAT,
            "generation": generation,
            "crc": zlib.crc32(_encode(state)),
            "state": state,
        }
        path = self.directory / f"snap-{generation:08d}.json"
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(document, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._snapshots.inc()
