"""Publish/subscribe middleware substrate hosting the thematic matcher."""

from repro.broker.broker import (
    BrokerMetrics,
    Delivery,
    SubscriberHandle,
    ThematicBroker,
)
from repro.broker.overlay import BrokerOverlay, OverlayMetrics
from repro.broker.threaded import ThreadedBroker

__all__ = [
    "BrokerMetrics",
    "BrokerOverlay",
    "Delivery",
    "OverlayMetrics",
    "SubscriberHandle",
    "ThematicBroker",
    "ThreadedBroker",
]
