"""Publish/subscribe middleware substrate hosting the thematic matcher."""

from repro.broker.broker import (
    BrokerMetrics,
    Delivery,
    SubscriberHandle,
    ThematicBroker,
    dispatch_delivery,
)
from repro.broker.overlay import BrokerOverlay, OverlayMetrics
from repro.broker.sharded import HashSharding, ShardedBroker, SizeBalancedSharding
from repro.broker.threaded import ThreadedBroker

__all__ = [
    "BrokerMetrics",
    "BrokerOverlay",
    "Delivery",
    "HashSharding",
    "OverlayMetrics",
    "ShardedBroker",
    "SizeBalancedSharding",
    "SubscriberHandle",
    "ThematicBroker",
    "ThreadedBroker",
    "dispatch_delivery",
]
