"""Publish/subscribe middleware substrate hosting the thematic matcher."""

from repro.broker.broker import (
    BrokerMetrics,
    Delivery,
    SubscriberHandle,
    ThematicBroker,
    dispatch_delivery,
)
from repro.broker.config import BrokerConfig
from repro.broker.durability import (
    BrokerDurability,
    DurabilityPolicy,
    RecoveryReport,
    SimulatedCrash,
)
from repro.broker.faults import (
    CallbackFault,
    FaultInjector,
    FaultPlan,
    FaultyCallbackError,
    KillFault,
    ScorerFault,
)
from repro.broker.overlay import BrokerOverlay, OverlayMetrics
from repro.broker.reliability import (
    CircuitBreaker,
    DeadLetterQueue,
    DeadLetterRecord,
    DeliveryPolicy,
    ReliableDelivery,
)
from repro.broker.sharded import HashSharding, ShardedBroker, SizeBalancedSharding
from repro.broker.threaded import ThreadedBroker

__all__ = [
    "BrokerConfig",
    "BrokerDurability",
    "BrokerMetrics",
    "BrokerOverlay",
    "CallbackFault",
    "CircuitBreaker",
    "DeadLetterQueue",
    "DeadLetterRecord",
    "Delivery",
    "DeliveryPolicy",
    "DurabilityPolicy",
    "FaultInjector",
    "FaultPlan",
    "FaultyCallbackError",
    "HashSharding",
    "KillFault",
    "OverlayMetrics",
    "RecoveryReport",
    "ReliableDelivery",
    "ScorerFault",
    "ShardedBroker",
    "SimulatedCrash",
    "SizeBalancedSharding",
    "SubscriberHandle",
    "ThematicBroker",
    "ThreadedBroker",
    "dispatch_delivery",
]
