"""Process-pool shard execution over a shared, zero-copy semantic space.

The thread-based :class:`~repro.broker.sharded.ShardedBroker` layout is
GIL-bound: shard engines score in pure Python, so four threads buy
little. This module supplies the process-backed alternative behind the
same sharding seam — ``BrokerConfig(executor="process")`` keeps the
bounded ingress, micro-batching, globally ordered merge and delivery
semantics of the sharded broker, but each shard's matching runs in its
own **spawned worker process**:

* the parent writes the space's columnar arrays once to a versioned
  binary snapshot (:func:`~repro.semantics.persistence.save_columnar`)
  and every worker attaches **zero-copy** via ``np.memmap`` — the space
  is never pickled, and all workers share the same page cache;
* workers score through the vectorized kernel
  (:class:`~repro.semantics.kernel.KernelMeasure`) over the mapped
  arrays — the identical arrays the parent's kernel uses, so scores are
  bit-identical to the parent's serial vectorized path;
* a worker returns **compact match records** — ``(order, event index,
  similarity matrix)`` for threshold survivors only — and the parent
  rebuilds :class:`~repro.core.matcher.MatchResult` objects against its
  *own* subscription and event instances (the deterministic assignment
  solver reproduces the worker's mapping exactly). Results therefore
  reference parent objects, never pickled copies.

Parity requirement: the matcher must score through the vectorized
kernel (``ThematicMeasure(..., vectorized=True)`` or its non-thematic /
cached variants) — otherwise parent-side replay and worker-side batch
scoring would take different float paths. :func:`spec_from_matcher`
rejects anything else.

Clock discipline: the executor never touches ``time.*``. The parent's
injected :class:`~repro.obs.clock.Clock` times the batch fan-out, and
its *description* is shipped to workers so their engines (including the
degraded-mode budget) run on the same kind of clock — a
:class:`~repro.obs.clock.FakeClock` worker clock is frozen at its value
at spawn time, which keeps ``--faults`` plans deterministic (worker
budgets never trip on scripted time they cannot observe advancing).

Known limits (documented, not silent): workers are not restarted on
crash — a dead worker surfaces as a batch error on the next call; and
parent-side replay (``match_one``) does not consult worker degraded
state.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import threading
import traceback
from dataclasses import dataclass
from multiprocessing.connection import Connection
from typing import Any

import numpy as np

from repro.core.degrade import DegradedPolicy
from repro.core.engine import EngineConfig, ThematicEventEngine
from repro.core.events import Event
from repro.core.mapping import single_mapping, top_assignment, top_k_mappings
from repro.core.matcher import MatchResult, ThematicMatcher
from repro.core.similarity import Calibration, SimilarityMatrix
from repro.core.subscriptions import Subscription
from repro.obs import MetricsRegistry
from repro.obs.clock import MONOTONIC_CLOCK, Clock, FakeClock

__all__ = ["ProcessShardExecutor", "WorkerSpec", "spec_from_matcher"]


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to rebuild its matcher, picklable.

    The space itself travels as ``(space_path, digest)`` — the columnar
    snapshot on disk — never as a pickled object.
    """

    space_path: str
    digest: str
    normalize: bool
    metric: str
    recompute_idf: bool
    thematic: bool
    mode: str
    cached: bool
    k: int
    threshold: float
    min_relatedness: float
    calibration: Calibration | None
    degraded: DegradedPolicy | None
    clock: tuple[Any, ...]
    shard_index: int


def _describe_clock(clock: Clock) -> tuple[Any, ...]:
    """Picklable description of the parent's clock for worker setup."""
    if isinstance(clock, FakeClock):
        return ("fake", clock.monotonic(), clock.wall())
    return ("monotonic",)


def _build_clock(spec: tuple[Any, ...]) -> Clock:
    if spec[0] == "fake":
        start, wall = spec[1], spec[2]
        return FakeClock(start, epoch=wall - start)
    return MONOTONIC_CLOCK


def spec_from_matcher(
    matcher: ThematicMatcher,
    *,
    space_path: str,
    digest: str,
    shard_index: int,
    degraded: DegradedPolicy | None,
    clock: Clock,
) -> WorkerSpec:
    """Derive a :class:`WorkerSpec` from a kernel-backed matcher.

    Raises :class:`ValueError` for matcher families the process executor
    cannot reproduce bit-identically in a worker (see module docstring).
    """
    from repro.semantics.measures import (
        CachedMeasure,
        NonThematicMeasure,
        ThematicMeasure,
    )

    measure = matcher.measure
    cached = isinstance(measure, CachedMeasure)
    inner = measure.inner if cached else measure
    if isinstance(inner, ThematicMeasure):
        thematic, mode = True, inner.mode
    elif isinstance(inner, NonThematicMeasure):
        thematic, mode = False, "common"
    else:
        raise ValueError(
            "executor='process' needs a ThematicMeasure or "
            f"NonThematicMeasure matcher (got {type(inner).__name__})"
        )
    if not getattr(inner, "vectorized", False):
        raise ValueError(
            "executor='process' requires vectorized=True on the measure: "
            "workers score through the numpy kernel, and the parent must "
            "take the same float path for delivery parity"
        )
    space = inner.space
    return WorkerSpec(
        space_path=space_path,
        digest=digest,
        normalize=space.normalize,
        metric=space.metric,
        recompute_idf=getattr(space, "recompute_idf", True),
        thematic=thematic,
        mode=mode,
        cached=cached,
        k=matcher.k,
        threshold=matcher.threshold,
        min_relatedness=matcher.min_relatedness,
        calibration=matcher.calibration,
        degraded=degraded,
        clock=_describe_clock(clock),
        shard_index=shard_index,
    )


def _no_dispatch(result: object) -> None:  # pragma: no cover - guard rail
    raise RuntimeError(
        "shard workers must not dispatch; survivors return to the parent"
    )


def _worker_main(conn: Connection, spec: WorkerSpec) -> None:
    """Worker entrypoint: attach the space, serve match commands."""
    try:
        from repro.semantics.kernel import KernelMeasure, RelatednessKernel
        from repro.semantics.measures import CachedMeasure, SemanticMeasure
        from repro.semantics.persistence import load_columnar

        columnar, _ = load_columnar(
            spec.space_path, expected_digest=spec.digest
        )
        kernel = RelatednessKernel(
            columnar,
            normalize=spec.normalize,
            metric=spec.metric,
            recompute_idf=spec.recompute_idf,
        )
        measure: SemanticMeasure = KernelMeasure(
            kernel, mode=spec.mode, thematic=spec.thematic
        )
        if spec.cached:
            measure = CachedMeasure(measure)
        matcher = ThematicMatcher(
            measure,
            k=spec.k,
            threshold=spec.threshold,
            min_relatedness=spec.min_relatedness,
            calibration=spec.calibration,
        )
        engine = ThematicEventEngine(
            matcher,
            EngineConfig(
                private_pipeline=True,
                span_tags={"shard": spec.shard_index},
                degraded=spec.degraded,
            ),
            clock=_build_clock(spec.clock),
        )
    except Exception:
        conn.send(("err", traceback.format_exc()))
        conn.close()
        return
    conn.send(("ok", None))
    # Insertion-ordered, mirroring the engine's registration snapshot:
    # position i in handles.values() is registration index i.
    handles: dict[int, object] = {}
    threshold = matcher.threshold
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent went away
            return
        op = message[0]
        try:
            if op == "stop":
                conn.send(("ok", None))
                conn.close()
                return
            if op == "subscribe":
                _, order, subscription = message
                handles[order] = engine.subscribe(subscription, _no_dispatch)
                conn.send(("ok", None))
            elif op == "unsubscribe":
                _, order = message
                handle = handles.pop(order, None)
                if handle is not None:
                    engine.unsubscribe(handle)  # type: ignore[arg-type]
                conn.send(("ok", None))
            elif op == "match":
                _, events = message
                registrations, batch = engine.snapshot_batch(
                    events, deliverable_only=True
                )
                survivors: list[tuple[int, int, tuple[int, ...], bytes]] = []
                if batch is not None:
                    orders = list(handles)
                    for index in range(len(registrations)):
                        for j in range(len(events)):
                            result = batch.result(index, j)
                            if result is not None and result.is_match(
                                threshold
                            ):
                                engine.stats.inc("deliveries")
                                scores = result.matrix.scores
                                survivors.append(
                                    (
                                        orders[index],
                                        j,
                                        scores.shape,
                                        scores.tobytes(),
                                    )
                                )
                conn.send(("ok", survivors))
            elif op == "snapshot":
                conn.send(("ok", engine.stats.registry.snapshot()))
            else:
                conn.send(("err", f"unknown worker op {op!r}"))
        except Exception:
            conn.send(("err", traceback.format_exc()))


def _result_from_matrix(
    matcher: ThematicMatcher,
    subscription: Subscription,
    event: Event,
    matrix: np.ndarray,
) -> MatchResult | None:
    """Rebuild a worker survivor's result from its similarity matrix.

    The same solver sequence as the pipeline's delivery-gated assignment
    stage, so mapping, score and alternatives are reproduced exactly.
    """
    wrapped = SimilarityMatrix(
        subscription=subscription, event=event, scores=matrix
    )
    if matcher.k == 1:
        solved = top_assignment(matrix)
        if solved is None:  # pragma: no cover - workers gate on arity
            return None
        assignment, _ = solved
        return MatchResult(
            subscription=subscription,
            event=event,
            matrix=wrapped,
            mapping=single_mapping(wrapped, assignment),
        )
    mappings = top_k_mappings(wrapped, matcher.k)
    if not mappings:  # pragma: no cover - workers gate on arity
        return None
    return MatchResult(
        subscription=subscription,
        event=event,
        matrix=wrapped,
        mapping=mappings[0],
        alternatives=tuple(mappings[1:]),
    )


class ProcessShardExecutor:
    """Owns the worker pool, the shared space file and the shard pipes.

    All registration and matching calls are serialized by the broker's
    registration lock; an internal lock additionally guards the pipes so
    ``close`` cannot interleave with a straggling call.
    """

    def __init__(
        self,
        matcher: ThematicMatcher,
        *,
        shards: int,
        degraded: DegradedPolicy | None = None,
        clock: Clock | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        from repro.semantics.measures import CachedMeasure
        from repro.semantics.persistence import corpus_digest, save_columnar

        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.matcher = matcher
        self._clock = clock if clock is not None else MONOTONIC_CLOCK
        registry = registry if registry is not None else MetricsRegistry()
        self._batches = registry.counter("shard.worker.batches")
        self._events = registry.counter("shard.worker.events")
        self._deliveries = registry.counter("shard.worker.deliveries")
        self._batch_seconds = registry.histogram("shard.worker.batch_seconds")
        measure = matcher.measure
        inner = measure.inner if isinstance(measure, CachedMeasure) else measure
        space = inner.space
        digest = corpus_digest(space.documents)
        # Plain state first: _shutdown reads these, so they must exist
        # before any statement that can raise with the temp file live.
        ctx = multiprocessing.get_context("spawn")
        self._lock = threading.RLock()
        self._counts = [0] * shards
        self._procs: list[Any] = []
        self._conns: list[Connection] = []
        self._closed = False
        self._final_snapshots: list[dict[str, Any]] = []
        fd, self._space_path = tempfile.mkstemp(suffix=".repro-col")
        try:
            os.close(fd)
            # Inside the try: a failed snapshot write (disk full,
            # serialization error) must unlink the temp file — before
            # this, the exception escaped __init__ with no caller
            # holding a reference to clean up (RL801).
            save_columnar(space.columnar(), self._space_path, digest=digest)
            for index in range(shards):
                spec = spec_from_matcher(
                    matcher,
                    space_path=self._space_path,
                    digest=digest,
                    shard_index=index,
                    degraded=degraded,
                    clock=self._clock,
                )
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, spec),
                    name=f"shard-worker-{index}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
            # Block until every worker has attached the space — worker
            # import/attach cost must not leak into the first batch.
            for index, conn in enumerate(self._conns):
                status, payload = conn.recv()
                if status != "ok":
                    raise RuntimeError(
                        f"shard worker {index} failed to start:\n{payload}"
                    )
        except BaseException:
            self._shutdown(force=True)
            raise

    # -- registration ------------------------------------------------------

    def _call(self, shard_index: int, message: tuple[Any, ...]) -> Any:
        conn = self._conns[shard_index]
        conn.send(message)
        status, payload = conn.recv()
        if status != "ok":
            raise RuntimeError(
                f"shard worker {shard_index} failed:\n{payload}"
            )
        return payload

    def subscribe(
        self, shard_index: int, order: int, subscription: Subscription
    ) -> None:
        with self._lock:
            self._ensure_open()
            self._call(shard_index, ("subscribe", order, subscription))
            self._counts[shard_index] += 1

    def unsubscribe(self, shard_index: int, order: int) -> None:
        with self._lock:
            self._ensure_open()
            self._call(shard_index, ("unsubscribe", order))
            self._counts[shard_index] -= 1

    def move(
        self,
        order: int,
        source: int,
        target: int,
        subscription: Subscription,
    ) -> None:
        """Rebalance one registration between shard workers."""
        with self._lock:
            self._ensure_open()
            self._call(source, ("unsubscribe", order))
            self._counts[source] -= 1
            self._call(target, ("subscribe", order, subscription))
            self._counts[target] += 1

    def loads(self) -> list[int]:
        with self._lock:
            return list(self._counts)

    # -- matching ----------------------------------------------------------

    def match_batch(
        self, events: list[Event]
    ) -> list[tuple[int, int, np.ndarray]]:
        """Fan one micro-batch out to every active worker.

        Returns threshold survivors as ``(order, event index, matrix)``
        across all shards, unordered — the broker's merge sorts by
        subscriber order per event.
        """
        with self._lock:
            self._ensure_open()
            started = self._clock.monotonic()
            active = [
                index for index, count in enumerate(self._counts) if count
            ]
            # Send to every active worker first, then collect — the
            # workers run their batches concurrently.
            for index in active:
                self._conns[index].send(("match", events))
            survivors: list[tuple[int, int, np.ndarray]] = []
            failures: list[str] = []
            for index in active:
                status, payload = self._conns[index].recv()
                if status != "ok":
                    failures.append(
                        f"shard worker {index} failed:\n{payload}"
                    )
                    continue
                for order, j, shape, raw in payload:
                    matrix = np.frombuffer(raw, dtype=np.float64)
                    survivors.append((order, j, matrix.reshape(shape).copy()))
            self._batches.inc(len(active))
            self._events.inc(len(events))
            self._deliveries.inc(len(survivors))
            self._batch_seconds.record(
                self._clock.monotonic() - started
            )
            if failures:
                raise RuntimeError("; ".join(failures))
        return survivors

    def build_result(
        self, subscription: Subscription, event: Event, matrix: np.ndarray
    ) -> MatchResult | None:
        """Parent-side result reconstruction for one survivor."""
        return _result_from_matrix(self.matcher, subscription, event, matrix)

    def match_one(
        self, subscription: Subscription, event: Event
    ) -> MatchResult | None:
        """Parent-side replay match (same kernel, same arrays as workers).

        Does not consult worker degraded state — replay of a handful of
        retained events runs on the parent's healthy path by design.
        """
        result = self.matcher.match(subscription, event)
        if result is None or not result.is_match(self.matcher.threshold):
            return None
        return result

    # -- observability -----------------------------------------------------

    def shard_snapshots(self) -> list[dict[str, Any]]:
        """Each worker engine's registry snapshot (counters intact).

        After :meth:`close` this serves the snapshots taken during
        shutdown — post-mortem ``metrics_snapshot`` reads keep working
        once the workers are gone, like the thread executor's registries.
        """
        with self._lock:
            if self._closed:
                return list(self._final_snapshots)
            return [
                self._call(index, ("snapshot",))
                for index in range(len(self._conns))
            ]

    # -- lifecycle ---------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError("process shard executor is closed")

    def _shutdown(self, *, force: bool) -> None:
        for conn in self._conns:
            if not force:
                try:
                    conn.send(("stop",))
                    conn.recv()
                except (BrokenPipeError, EOFError, OSError):
                    pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=1.0)
        try:
            os.unlink(self._space_path)
        except OSError:  # pragma: no cover - already gone
            pass

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            try:
                self._final_snapshots = [
                    self._call(index, ("snapshot",))
                    for index in range(len(self._conns))
                ]
            except (RuntimeError, BrokenPipeError, EOFError, OSError):
                pass  # a dead worker forfeits its final snapshot
            self._closed = True
        # Teardown happens outside the lock: worker joins can take
        # seconds, and every entry point re-checks ``_closed`` under the
        # lock, so nothing can race the shutdown once the flag is set.
        self._shutdown(force=False)
