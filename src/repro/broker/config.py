"""Typed construction config shared by every broker front-end.

The three brokers grew their knobs one keyword argument at a time —
``replay_capacity`` here, ``max_batch``/``linger``/``workers`` there —
until constructing a broker meant memorizing which front-end accepts
which subset. :class:`BrokerConfig` is the single typed, frozen,
documented home for all of them; each front-end reads the fields it
uses and ignores the rest, so one config object can describe a whole
deployment and be passed to any broker class.

The old keyword arguments still work for one release through
:func:`config_from_legacy` (each use emits a
:class:`DeprecationWarning`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._compat import config_from_kwargs
from repro.broker.durability import DurabilityPolicy
from repro.broker.reliability import DeliveryPolicy
from repro.core.degrade import DegradedPolicy
from repro.core.engine import EngineConfig

__all__ = ["BrokerConfig", "config_from_legacy", "engine_config"]

#: The engine-facing knobs every broker front-end forwards verbatim; the
#: legacy-kwarg shims accept them too.
ENGINE_KWARGS = (
    "prefilter_mode",
    "ann_recall_target",
    "score_store_path",
    "warm_on_start",
)


@dataclass(frozen=True)
class BrokerConfig:
    """Every broker construction knob, in one frozen dataclass.

    Parameters
    ----------
    replay_capacity:
        Recent events retained for late joiners (all brokers).
    max_queue:
        Ingress queue bound before ``publish`` blocks (threaded +
        sharded).
    shards:
        Subscription shard count (sharded).
    strategy:
        Sharding strategy: ``"hash"`` or ``"size"`` (sharded).
    max_batch:
        Ingress micro-batch size cap (sharded).
    linger:
        Seconds the batcher waits for the batch to fill (sharded).
    workers:
        Shard-scoring pool size; ``None`` sizes it to the shard count,
        ``0`` forces inline scoring (sharded).
    delivery:
        Default :class:`~repro.broker.reliability.DeliveryPolicy` for
        every subscriber (all brokers); per-subscription overrides via
        ``subscribe(..., policy=...)``.
    degraded:
        Optional :class:`~repro.core.degrade.DegradedPolicy` enabling
        the exact-anchor fallback when thematic scoring blows its
        latency budget (all brokers — forwarded to each embedded
        engine).
    dead_letter_capacity:
        Bound on the dead-letter queue, ``None`` for unbounded.
    executor:
        Shard execution backend (sharded): ``"thread"`` (default) runs
        shard engines on an in-process pool; ``"process"`` spawns one
        worker process per shard attached zero-copy to a shared columnar
        snapshot of the semantic space (requires a vectorized
        kernel-backed matcher — see :mod:`repro.broker.procshard`).
    durability:
        Optional :class:`~repro.broker.durability.DurabilityPolicy`
        (all brokers). When set, registrations, published events, inbox
        cursors, and dead letters are journaled to a CRC-framed
        write-ahead log with periodic snapshots; a broker constructed
        over a non-empty journal directory recovers its state from disk
        and exposes the restored handles via ``broker.recovered`` —
        see :mod:`repro.broker.durability`.
    prefilter_mode:
        Semantic-anchor mode forwarded to every embedded engine's
        :class:`~repro.core.engine.EngineConfig` — ``"exact"``
        (default: only the loss-free structural prefilter),
        ``"semantic"`` (exact-scan token-neighborhood anchors), or
        ``"ann"`` (LSH candidate generation at ``ann_recall_target``).
    ann_recall_target:
        Recall knob for ``prefilter_mode="ann"``; ``1.0`` falls back to
        the exact scan (bit-identical to ``"semantic"``).
    score_store_path:
        Optional path to a ``repro warm-cache`` score-store snapshot;
        when set, each embedded engine consults the precomputed tier
        before the online cache and the kernel.
    warm_on_start:
        Materialize the score store into RAM at construction instead of
        paging it in lazily (requires ``score_store_path``).
    """

    replay_capacity: int = 256
    max_queue: int = 10_000
    shards: int = 4
    strategy: str = "hash"
    max_batch: int = 32
    linger: float = 0.001
    workers: int | None = None
    delivery: DeliveryPolicy = DeliveryPolicy()
    degraded: DegradedPolicy | None = None
    dead_letter_capacity: int | None = None
    executor: str = "thread"
    durability: DurabilityPolicy | None = None
    prefilter_mode: str = "exact"
    ann_recall_target: float = 1.0
    score_store_path: str | None = None
    warm_on_start: bool = False


def config_from_legacy(
    config: BrokerConfig | None, allowed: tuple[str, ...], legacy: dict
) -> BrokerConfig:
    """Resolve a broker's ``(config, **legacy_kwargs)`` pair.

    ``allowed`` names the legacy keywords this front-end historically
    accepted; anything else raises :class:`TypeError` immediately (the
    typo would otherwise vanish into the shim). Legacy keys overlay the
    given (or default) config via :func:`dataclasses.replace`; each use
    emits the consolidated :mod:`repro._compat` deprecation warning.
    """
    return config_from_kwargs(
        config, BrokerConfig(), allowed, legacy, scope="broker", stacklevel=4
    )


def engine_config(config: BrokerConfig, **overrides) -> EngineConfig:
    """The :class:`~repro.core.engine.EngineConfig` a broker embeds.

    Forwards every engine-facing broker knob (degraded policy plus the
    sublinear-matching surface) so all front-ends derive their engines
    the same way; ``overrides`` layer front-end specifics on top (the
    sharded broker's private pipeline and shard span tags).
    """
    fields = dict(
        degraded=config.degraded,
        prefilter_mode=config.prefilter_mode,
        ann_recall_target=config.ann_recall_target,
        score_store_path=config.score_store_path,
        warm_on_start=config.warm_on_start,
    )
    fields.update(overrides)
    return EngineConfig(**fields)
