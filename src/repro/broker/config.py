"""Typed construction config shared by every broker front-end.

The three brokers grew their knobs one keyword argument at a time —
``replay_capacity`` here, ``max_batch``/``linger``/``workers`` there —
until constructing a broker meant memorizing which front-end accepts
which subset. :class:`BrokerConfig` is the single typed, frozen,
documented home for all of them; each front-end reads the fields it
uses and ignores the rest, so one config object can describe a whole
deployment and be passed to any broker class.

The old keyword arguments still work for one release through
:func:`config_from_legacy` (each use emits a
:class:`DeprecationWarning`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

from repro.broker.durability import DurabilityPolicy
from repro.broker.reliability import DeliveryPolicy
from repro.core.degrade import DegradedPolicy

__all__ = ["BrokerConfig", "config_from_legacy"]


@dataclass(frozen=True)
class BrokerConfig:
    """Every broker construction knob, in one frozen dataclass.

    Parameters
    ----------
    replay_capacity:
        Recent events retained for late joiners (all brokers).
    max_queue:
        Ingress queue bound before ``publish`` blocks (threaded +
        sharded).
    shards:
        Subscription shard count (sharded).
    strategy:
        Sharding strategy: ``"hash"`` or ``"size"`` (sharded).
    max_batch:
        Ingress micro-batch size cap (sharded).
    linger:
        Seconds the batcher waits for the batch to fill (sharded).
    workers:
        Shard-scoring pool size; ``None`` sizes it to the shard count,
        ``0`` forces inline scoring (sharded).
    delivery:
        Default :class:`~repro.broker.reliability.DeliveryPolicy` for
        every subscriber (all brokers); per-subscription overrides via
        ``subscribe(..., policy=...)``.
    degraded:
        Optional :class:`~repro.core.degrade.DegradedPolicy` enabling
        the exact-anchor fallback when thematic scoring blows its
        latency budget (all brokers — forwarded to each embedded
        engine).
    dead_letter_capacity:
        Bound on the dead-letter queue, ``None`` for unbounded.
    executor:
        Shard execution backend (sharded): ``"thread"`` (default) runs
        shard engines on an in-process pool; ``"process"`` spawns one
        worker process per shard attached zero-copy to a shared columnar
        snapshot of the semantic space (requires a vectorized
        kernel-backed matcher — see :mod:`repro.broker.procshard`).
    durability:
        Optional :class:`~repro.broker.durability.DurabilityPolicy`
        (all brokers). When set, registrations, published events, inbox
        cursors, and dead letters are journaled to a CRC-framed
        write-ahead log with periodic snapshots; a broker constructed
        over a non-empty journal directory recovers its state from disk
        and exposes the restored handles via ``broker.recovered`` —
        see :mod:`repro.broker.durability`.
    """

    replay_capacity: int = 256
    max_queue: int = 10_000
    shards: int = 4
    strategy: str = "hash"
    max_batch: int = 32
    linger: float = 0.001
    workers: int | None = None
    delivery: DeliveryPolicy = DeliveryPolicy()
    degraded: DegradedPolicy | None = None
    dead_letter_capacity: int | None = None
    executor: str = "thread"
    durability: DurabilityPolicy | None = None


def config_from_legacy(
    config: BrokerConfig | None, allowed: tuple[str, ...], legacy: dict
) -> BrokerConfig:
    """Resolve a broker's ``(config, **legacy_kwargs)`` pair.

    ``allowed`` names the legacy keywords this front-end historically
    accepted; anything else raises :class:`TypeError` immediately (the
    typo would otherwise vanish into the shim). Legacy keys overlay the
    given (or default) config via :func:`dataclasses.replace`.
    """
    if not legacy:
        return config if config is not None else BrokerConfig()
    unknown = set(legacy) - set(allowed)
    if unknown:
        raise TypeError(
            f"unexpected keyword arguments {sorted(unknown)} "
            "(broker options now live on BrokerConfig)"
        )
    warnings.warn(
        "passing broker options as keyword arguments is deprecated; "
        "pass a BrokerConfig instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return replace(config if config is not None else BrokerConfig(), **legacy)
