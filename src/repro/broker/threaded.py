"""Threaded broker front-end: true synchronization decoupling.

:class:`~repro.broker.broker.ThematicBroker` is synchronous — ``publish``
runs the staged match-batch engine inline. :class:`ThreadedBroker` wraps
it with a worker thread and an ingress queue, so producers return
immediately (the synchronization decoupling of Figure 1 made literal)
while matching and delivery happen on the broker thread. Subscriber callbacks therefore run
on the broker thread; inbox draining remains safe from any thread
(``collections.deque`` append/popleft are atomic in CPython, and drains
go through a lock anyway).

Delivery fault tolerance (retries, deadlines, breakers, dead letters)
comes from the embedded broker's reliability layer — see
:mod:`repro.broker.reliability`.
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.broker.broker import BrokerMetrics, Delivery, ThematicBroker
from repro.broker.config import ENGINE_KWARGS, BrokerConfig, config_from_legacy
from repro.broker.durability import SimulatedCrash
from repro.broker.ingress import STOP, wait_until_drained
from repro.broker.reliability import (
    DeadLetterQueue,
    DeliveryPolicy,
    ReliableDelivery,
)
from repro.core.engine import SubscriptionHandle
from repro.core.events import Event
from repro.core.matcher import ThematicMatcher
from repro.core.subscriptions import Subscription
from repro.obs import TRACER, MetricsRegistry
from repro.obs.clock import MONOTONIC_CLOCK, Clock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.broker.durability import BrokerDurability

__all__ = ["ThreadedBroker"]


class ThreadedBroker:
    """Asynchronous facade over a single-node thematic broker.

    Usage::

        broker = ThreadedBroker(matcher)
        handle = broker.subscribe(subscription)
        broker.publish(event)          # returns immediately
        broker.flush()                 # wait until the queue drains
        deliveries = handle.drain()
        broker.close()

    Also usable as a context manager (``with ThreadedBroker(...) as b:``).

    Configuration is a :class:`~repro.broker.config.BrokerConfig` (this
    front-end reads ``replay_capacity``, ``max_queue``, ``delivery``,
    ``degraded``, ``dead_letter_capacity``); the legacy keyword
    arguments still work with a :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        matcher: ThematicMatcher,
        config: BrokerConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
        clock: Clock | None = None,
        **legacy: object,
    ) -> None:
        self.config = config_from_legacy(
            config, ("replay_capacity", "max_queue") + ENGINE_KWARGS, legacy
        )
        self._inner = ThematicBroker(
            matcher, self.config, registry=registry, clock=clock
        )
        self._queue_wait = self._inner.metrics.registry.histogram(
            "broker.queue_wait_seconds"
        )
        self._queue: queue.Queue = queue.Queue(maxsize=self.config.max_queue)
        self._clock = clock if clock is not None else MONOTONIC_CLOCK
        # Serializes access to the (single-threaded) inner broker between
        # the worker, subscribe/unsubscribe callers, and close's drain.
        # Reentrant on purpose: the inner broker runs subscriber
        # callbacks inline, and a callback that re-enters this broker
        # (subscribe from a delivery, the RL100 shape) must not deadlock
        # against the worker thread that is already holding the lock.
        self._lock = threading.RLock()
        self._closed = False
        self._close_lock = threading.Lock()
        self._worker = threading.Thread(
            target=self._run, name="thematic-broker", daemon=True
        )
        self._worker.start()

    # -- lifecycle ----------------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is STOP:
                    return
                enqueued_at, event, ctx = item
                picked_up = self._clock.monotonic()
                self._queue_wait.record(picked_up - enqueued_at)
                TRACER.record_span(
                    "broker.ingress.wait", ctx, enqueued_at, picked_up
                )
                with self._lock:
                    self._inner.publish(event, trace=ctx)
            except SimulatedCrash:
                # A scripted broker death (fault injection): the worker
                # dies like the process would, silently — the journal's
                # ``crashed`` flag is the record, not a stack trace on
                # stderr. task_done still runs so flush stays truthful.
                return
            finally:
                self._queue.task_done()

    def close(self) -> None:
        """Stop the worker after draining everything already queued.

        Any ``publish`` that won its race against ``close`` (passed the
        closed check before the flag was set) may have enqueued its event
        *behind* the stop sentinel; those stragglers are published inline
        here, so an event is either rejected with ``RuntimeError`` or
        delivered — never silently dropped.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(STOP)
        self._worker.join()
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            try:
                if item is not STOP:
                    _, event, ctx = item
                    with self._lock:
                        self._inner.publish(event, trace=ctx)
            finally:
                self._queue.task_done()
        self._inner.close()

    def __enter__(self) -> "ThreadedBroker":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- producer side --------------------------------------------------------

    def publish(self, event: Event) -> None:
        """Enqueue an event; never blocks on matching.

        Raises ``RuntimeError`` after :meth:`close` — silently dropping
        events would hide producer bugs.
        """
        if self._closed:
            raise RuntimeError("broker is closed")
        # The trace context is minted at ingress so the queue wait is
        # part of the event's causal history; the root span itself is
        # recorded by the inner broker's publish on the worker thread.
        self._queue.put((self._clock.monotonic(), event, TRACER.mint_trace()))

    def flush(self, timeout: float | None = None) -> bool:
        """Block until every queued event has been processed.

        Returns False if ``timeout`` elapsed first. Waits on the queue's
        own condition variable (see
        :func:`~repro.broker.ingress.wait_until_drained`) — the previous
        implementation parked a daemon thread on ``Queue.join()`` that
        never exited when the queue never drained, leaking one thread
        per timed-out flush.
        """
        return wait_until_drained(self._queue, timeout)

    # -- subscriber side --------------------------------------------------------

    def subscribe(
        self,
        subscription: Subscription,
        callback: Callable[[Delivery], None] | None = None,
        *,
        replay: bool = False,
        policy: DeliveryPolicy | None = None,
    ) -> SubscriptionHandle:
        with self._lock:
            return self._inner.subscribe(
                subscription, callback, replay=replay, policy=policy
            )

    def unsubscribe(self, handle: SubscriptionHandle) -> bool:
        with self._lock:
            return self._inner.unsubscribe(handle)

    @property
    def metrics(self) -> BrokerMetrics:
        return self._inner.metrics

    @property
    def dead_letters(self) -> DeadLetterQueue:
        """The embedded broker's dead-letter queue."""
        return self._inner.dead_letters

    @property
    def reliability(self) -> ReliableDelivery:
        """The embedded broker's reliability engine (breaker states etc.)."""
        return self._inner.reliability

    @property
    def durability(self) -> "BrokerDurability | None":
        """The embedded broker's journal (``None`` without a policy)."""
        return self._inner.durability

    @property
    def recovered(self) -> dict[int, SubscriptionHandle]:
        """Handles restored from the journal, by original subscriber id."""
        return self._inner.recovered

    def recover_pending(self) -> int:
        """Re-dispatch in-flight events from a recovered journal.

        Serialized against the worker thread; see
        :meth:`repro.broker.broker.ThematicBroker.recover_pending`.
        """
        with self._lock:
            return self._inner.recover_pending()

    def metrics_snapshot(self) -> dict:
        """Coherent cross-thread view: counters plus queue-wait summary.

        Counters are registry-backed (each guarded by its own lock), so
        reading them from a producer thread while the worker publishes
        is race-free — the historical failure mode of reading bare ints
        off :class:`BrokerMetrics` mid-mutation.
        """
        snapshot = self._inner.metrics.snapshot()
        snapshot["queue_wait"] = self._queue_wait.summary()
        snapshot["pending"] = self.pending()
        return snapshot

    def subscriber_count(self) -> int:
        with self._lock:
            return self._inner.subscriber_count()

    def pending(self) -> int:
        """Events queued but not yet matched (approximate)."""
        return self._queue.qsize()
