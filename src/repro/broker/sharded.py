"""Sharded parallel broker: subscription shards + ingress micro-batching.

:class:`~repro.broker.threaded.ThreadedBroker` decouples producers from
matching but still dequeues one event at a time and runs the whole
subscription snapshot through a single engine. :class:`ShardedBroker`
is the scale-out layout content-based brokers use (the SIENA-style
partitioning echoed in the paper's prior work): the subscription set is
partitioned into N shards, each shard owns a private staged pipeline
(so per-shard term-pair dedup and compiled subscriptions persist without
cross-shard locking), and the ingress queue drains in adaptive
micro-batches — one delivery-gated ``match_batch`` call per
(event-batch × shard).

Three properties the tests pin down:

* **Parity.** Deliveries — the set, the per-subscriber order, the
  sequence stamps, and every score — are bit-identical to publishing
  the same events through the serial
  :class:`~repro.broker.broker.ThematicBroker`. The serial path is the
  deliberately-boring reference oracle; the sharded path earns its
  throughput from the pipeline's delivery-gated batch mode (full
  mapping enumeration only for threshold survivors) plus batch
  amortization of per-event overhead, never from semantic shortcuts.
* **Backpressure.** The ingress queue is bounded; ``publish`` blocks
  when matching falls behind instead of growing memory without bound.
* **Losslessness.** ``publish`` after ``close`` raises ``RuntimeError``;
  a publish that won its race against ``close`` is still delivered by
  ``close``'s leftover drain. Events are never silently dropped.

Shard assignment is pluggable: :class:`HashSharding` (stable modulo
placement, no rebalancing) or :class:`SizeBalancedSharding` (least-
loaded placement, shards rebalanced whenever unsubscribes leave them
more than one subscription apart). Delivery order is decided by each
subscriber's global registration order, not by shard-internal order, so
rebalancing is invisible to subscribers.
"""

from __future__ import annotations

import os
import queue
import threading
from collections import deque
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

from repro.broker.broker import BrokerMetrics, Delivery
from repro.broker.config import (
    ENGINE_KWARGS,
    BrokerConfig,
    config_from_legacy,
    engine_config,
)
from repro.broker.durability import BrokerDurability, SimulatedCrash
from repro.broker.ingress import STOP, collect_batch, wait_until_drained
from repro.broker.procshard import ProcessShardExecutor
from repro.broker.reliability import (
    DeadLetterQueue,
    DeadLetterRecord,
    DeliveryPolicy,
    ReliableDelivery,
)
from repro.core.engine import SubscriptionHandle, ThematicEventEngine
from repro.core.events import Event
from repro.core.matcher import ThematicMatcher
from repro.core.subscriptions import Subscription
from repro.obs import TRACER, MetricsRegistry
from repro.obs.clock import MONOTONIC_CLOCK, Clock
from repro.obs.context import TraceContext
from repro.obs.registry import merge_snapshots

__all__ = ["HashSharding", "ShardedBroker", "SizeBalancedSharding"]


class HashSharding:
    """Stable modulo placement: subscriber id mod shard count.

    Placement never depends on current loads, so a subscription's shard
    is reproducible from its id alone and unsubscribes never move other
    subscriptions around.
    """

    name = "hash"

    def assign(self, subscriber_id: int, loads: Sequence[int]) -> int:
        return subscriber_id % len(loads)

    def rebalance(self, loads: Sequence[int]) -> list[tuple[int, int]]:
        return []


class SizeBalancedSharding:
    """Least-loaded placement with rebalancing on shrink.

    ``assign`` picks the smallest shard (lowest index wins ties), and
    after an unsubscribe ``rebalance`` moves subscriptions from the
    largest to the smallest shard until the spread is at most one — so
    long-lived brokers with churn keep near-equal per-shard batch cost.
    """

    name = "size"

    def assign(self, subscriber_id: int, loads: Sequence[int]) -> int:
        return min(range(len(loads)), key=loads.__getitem__)

    def rebalance(self, loads: Sequence[int]) -> list[tuple[int, int]]:
        loads = list(loads)
        moves: list[tuple[int, int]] = []
        while True:
            source = max(range(len(loads)), key=loads.__getitem__)
            target = min(range(len(loads)), key=loads.__getitem__)
            if loads[source] - loads[target] <= 1:
                return moves
            moves.append((source, target))
            loads[source] -= 1
            loads[target] += 1


_STRATEGIES = {
    HashSharding.name: HashSharding,
    SizeBalancedSharding.name: SizeBalancedSharding,
}


class _ShardSink:
    """Engine callback slot carrying a subscriber's global order + handle.

    The sharded broker never lets shard engines dispatch (merging takes
    the batch results instead, so deliveries can be ordered globally and
    stamped with their sequence); registrations carry this object purely
    so the merge can read the subscriber from the engine's own snapshot.
    """

    __slots__ = ("order", "handle")

    def __init__(self, order: int, handle: SubscriptionHandle) -> None:
        self.order = order
        self.handle = handle

    def __call__(self, result: object) -> None:  # pragma: no cover - guard rail
        raise RuntimeError(
            "shard engines must not dispatch directly; "
            "deliveries go through the broker's ordered merge"
        )


@dataclass
class _Shard:
    """One subscription shard: a private engine over a private registry."""

    index: int
    registry: MetricsRegistry
    engine: ThematicEventEngine


@dataclass
class _Entry:
    """Broker-side registration record for one subscriber."""

    handle: SubscriptionHandle
    sink: _ShardSink
    shard_index: int
    engine_handle: object


class ShardedBroker:
    """Parallel broker: sharded subscriptions, micro-batched ingress.

    Usage mirrors :class:`~repro.broker.threaded.ThreadedBroker`::

        broker = ShardedBroker(matcher, BrokerConfig(shards=4, max_batch=32))
        handle = broker.subscribe(subscription)
        broker.publish(event)          # returns immediately (backpressured)
        broker.flush()                 # wait until the queue drains
        deliveries = handle.drain()
        broker.close()

    Parameters
    ----------
    matcher:
        Any :class:`~repro.core.api.MatchEngine`. Matchers exposing
        ``new_pipeline`` (the :class:`~repro.core.matcher.ThematicMatcher`
        family) get one private staged pipeline per shard; others are
        called through their own ``match_batch``, which must then be
        safe to call concurrently.
    config:
        A :class:`~repro.broker.config.BrokerConfig`; this front-end
        reads ``shards``, ``strategy``, ``max_batch``, ``linger``,
        ``workers``, ``replay_capacity``, ``max_queue``, ``delivery``,
        ``degraded``, ``dead_letter_capacity``, and ``executor``. The
        legacy keyword arguments still work with a
        :class:`DeprecationWarning`.

        With ``executor="process"`` the shard engines live in spawned
        worker processes attached zero-copy to a shared columnar
        snapshot of the semantic space
        (:class:`~repro.broker.procshard.ProcessShardExecutor`); the
        matcher must score through the vectorized kernel. Delivery
        semantics (global order, sequence stamps, replay,
        reliability/DLQ) are identical to the thread executor.
    registry:
        Broker-level metrics registry (each shard engine keeps its own;
        see :meth:`metrics_snapshot`).
    clock:
        Time source for delivery deadlines/backoff and the degraded-mode
        budget; injectable for the fault harness.
    """

    _LEGACY_KWARGS = (
        "shards", "strategy", "max_batch", "linger", "workers",
        "replay_capacity", "max_queue",
    ) + ENGINE_KWARGS

    def __init__(
        self,
        matcher: ThematicMatcher,
        config: BrokerConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
        clock: Clock | None = None,
        **legacy: object,
    ) -> None:
        self.config = config_from_legacy(config, self._LEGACY_KWARGS, legacy)
        config = self.config
        if config.shards < 1:
            raise ValueError("shards must be >= 1")
        if config.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        strategy = config.strategy
        if isinstance(strategy, str):
            try:
                strategy = _STRATEGIES[strategy]()
            except KeyError:
                raise ValueError(
                    f"unknown shard strategy {strategy!r} "
                    f"(expected one of {sorted(_STRATEGIES)})"
                ) from None
        self.matcher = matcher
        self.metrics = BrokerMetrics(registry)
        self.dead_letters = DeadLetterQueue(config.dead_letter_capacity)
        # Constructing the journal *is* recovery (see ThematicBroker);
        # it must exist before the reliability layer and before the
        # dispatcher thread starts.
        self.durability: BrokerDurability | None = None
        if config.durability is not None:
            self.durability = BrokerDurability(
                config.durability,
                replay_capacity=config.replay_capacity,
                registry=self.metrics.registry,
                clock=clock,
            )
            self.dead_letters.on_drain = self.durability.log_dlq_drain
        self.reliability = ReliableDelivery(
            self.metrics,
            policy=config.delivery,
            dead_letters=self.dead_letters,
            clock=clock,
            durability=self.durability,
        )
        self._strategy = strategy
        self._clock = clock if clock is not None else MONOTONIC_CLOCK
        self._max_batch = config.max_batch
        self._linger = config.linger
        if config.executor not in ("thread", "process"):
            raise ValueError(
                f"unknown executor {config.executor!r} "
                "(expected 'thread' or 'process')"
            )
        self._proc: ProcessShardExecutor | None = None
        self._pool: ThreadPoolExecutor | None = None
        if config.executor == "process":
            if config.prefilter_mode != "exact" or config.score_store_path:
                # The worker protocol ships only the columnar snapshot;
                # threading the anchor index and score store through it
                # is future work, so reject loudly instead of silently
                # dropping the knobs in the workers.
                raise ValueError(
                    "prefilter_mode/score_store_path are not supported "
                    "with executor='process' yet; use the thread executor"
                )
            self._shards: list[_Shard] = []
            self._workers = config.shards
            self._proc = ProcessShardExecutor(
                matcher,
                shards=config.shards,
                degraded=config.degraded,
                clock=self._clock,
                registry=self.metrics.registry,
            )
        else:
            self._shards = [
                _Shard(
                    index=index,
                    registry=(shard_registry := MetricsRegistry()),
                    engine=ThematicEventEngine(
                        matcher,
                        engine_config(
                            config,
                            private_pipeline=True,
                            span_tags={"shard": index},
                        ),
                        registry=shard_registry,
                        clock=clock,
                    ),
                )
                for index in range(config.shards)
            ]
            workers = config.workers
            if workers is None:
                workers = min(config.shards, os.cpu_count() or 1)
            self._workers = max(1, workers)
            self._pool = (
                ThreadPoolExecutor(
                    max_workers=self._workers, thread_name_prefix="shard-worker"
                )
                if self._workers > 1 and config.shards > 1
                else None
            )
        registry_ = self.metrics.registry
        self._queue_wait = registry_.histogram("broker.queue_wait_seconds")
        self._batch_size = registry_.histogram("broker.batch_size")
        self._queue_depth = registry_.gauge("broker.queue_depth")
        self._queue: queue.Queue = queue.Queue(maxsize=config.max_queue)
        # Guards the registration tables and the replay ring. Deliveries
        # are dispatched *after* it is released (lock-scope rule RL100:
        # user callbacks may re-enter subscribe/unsubscribe/publish).
        # Reentrant so nested registration paths (_move_one) stay cheap.
        self._reg_lock = threading.RLock()
        self._entries: dict[int, _Entry] = {}
        self._next_id = 0
        self._sequence = 0  # dispatcher-thread only
        self._replay: deque[tuple[int, Event]] = deque(
            maxlen=config.replay_capacity
        )
        self._closed = False
        self._close_lock = threading.Lock()
        #: Handles restored from the journal, by original subscriber id
        #: (callbacks are code, not data — reattach them here before
        #: ``recover_pending``).
        self.recovered: dict[int, SubscriptionHandle] = {}
        self._pending_recovery: list[tuple[int, Event]] = []
        if self.durability is not None and self.durability.report is not None:
            self._restore()
        self._dispatcher = threading.Thread(
            target=self._run, name="sharded-broker", daemon=True
        )
        self._dispatcher.start()

    # -- lifecycle ---------------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is STOP:
                self._queue.task_done()
                return
            batch, saw_stop = collect_batch(
                self._queue, item, self._max_batch, self._linger
            )
            try:
                self._process_batch(batch)
            except SimulatedCrash:
                # A scripted broker death (fault injection): the
                # dispatcher dies like the process would, silently —
                # the journal's ``crashed`` flag is the record. The
                # finally below still runs task_done so flush stays
                # truthful.
                return
            except Exception:  # pragma: no cover - defensive
                # A matching failure must not kill the dispatcher (and
                # with it flush/close); the batch's task_done below keeps
                # flush truthful, and the counter makes the loss visible.
                self.metrics.registry.counter("broker.batch_errors").inc()
            finally:
                for _ in batch:
                    self._queue.task_done()
                if saw_stop:
                    self._queue.task_done()
            if saw_stop:
                return

    def close(self) -> None:
        """Drain everything queued, stop the dispatcher, stop the pool.

        Like :meth:`ThreadedBroker.close`, events that raced past the
        closed check and landed behind the stop sentinel are processed
        inline before returning — closed-broker publishes either raise
        or deliver, never disappear.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(STOP)
        self._dispatcher.join()
        leftovers = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            leftovers.append(item)
        events = [item for item in leftovers if item is not STOP]
        try:
            if events:
                for start in range(0, len(events), self._max_batch):
                    self._process_batch(events[start:start + self._max_batch])
        finally:
            for _ in leftovers:
                self._queue.task_done()
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            if self._proc is not None:
                self._proc.close()
            if self.durability is not None:
                self.durability.close()

    def __enter__(self) -> "ShardedBroker":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- producer side -----------------------------------------------------

    def publish(self, event: Event) -> None:
        """Enqueue an event; blocks only when the bounded queue is full.

        Raises ``RuntimeError`` after :meth:`close` — silently dropping
        events would hide producer bugs.
        """
        if self._closed:
            raise RuntimeError("broker is closed")
        # The root span of the event's trace is the enqueue itself; the
        # ingress wait, the batch match (a *linked* batch trace), and
        # every delivery attempt hang off this context downstream.
        ctx = TRACER.mint_trace()
        with TRACER.root_span("broker.publish", ctx):
            self._queue.put((self._clock.monotonic(), event, ctx))

    def flush(self, timeout: float | None = None) -> bool:
        """Block until every queued event is matched *and* delivered.

        Returns False if ``timeout`` elapsed first; never leaks a waiter
        thread (see :func:`~repro.broker.ingress.wait_until_drained`).
        """
        return wait_until_drained(self._queue, timeout)

    def pending(self) -> int:
        """Events queued but not yet dispatched (approximate)."""
        return self._queue.qsize()

    # -- subscriber side ---------------------------------------------------

    def subscribe(
        self,
        subscription: Subscription,
        callback: Callable[[Delivery], None] | None = None,
        *,
        replay: bool = False,
        policy: DeliveryPolicy | None = None,
    ) -> SubscriptionHandle:
        """Register a subscription on a shard chosen by the strategy.

        ``policy`` overrides the broker-wide delivery policy for this
        subscriber alone.
        """
        replayed: list[Delivery] = []
        with self._reg_lock:
            handle, shard_index = self._register_entry(
                subscription, callback, policy
            )
            if replay:
                for sequence, event in list(self._replay):
                    self.metrics.inc("evaluations")
                    if self._proc is not None:
                        result = self._proc.match_one(subscription, event)
                    else:
                        result = self._shards[shard_index].engine.match_one(
                            subscription, event
                        )
                    if result is not None:
                        self.metrics.inc("replayed")
                        replayed.append(
                            Delivery(
                                result=result,
                                sequence=sequence,
                                trace=TRACER.mint_trace(),
                            )
                        )
        # Dispatch with the lock released: callbacks are user code and may
        # re-enter the broker (RL100). The handle is already registered,
        # so replayed deliveries keep their position before any batch the
        # dispatcher matches afterwards.
        for delivery in replayed:
            with TRACER.root_span("broker.replay", delivery.trace):
                self.reliability.dispatch(handle, delivery)
        return handle

    def _register_entry(
        self,
        subscription: Subscription,
        callback: Callable[[Delivery], None] | None,
        policy: DeliveryPolicy | None,
        *,
        order: int | None = None,
        key: str = "",
        log: bool = True,
    ) -> tuple[SubscriptionHandle, int]:
        """Create + shard-place one registration (``_reg_lock`` held).

        ``order``/``key``/``log=False`` is the journal-restore path:
        the original subscriber id and stable key are preserved and the
        registration is not re-journaled.
        """
        if order is None:
            order = self._next_id
        self._next_id = max(self._next_id, order + 1)
        handle = SubscriptionHandle(
            id=order,
            subscription=subscription,
            policy=policy,
            callback=callback,
            key=key,
        )
        durability = self.durability
        if durability is not None:
            handle.on_drain = lambda count, _id=order: durability.log_drain(
                _id, count
            )
            if log:
                # Write-ahead: the registration is durable before it can
                # observe any event.
                durability.log_subscribe(handle)
        loads = self._loads()
        shard_index = self._strategy.assign(order, loads)
        if not 0 <= shard_index < len(loads):
            raise ValueError(
                f"strategy assigned shard {shard_index} "
                f"outside [0, {len(loads)})"
            )
        sink = _ShardSink(order, handle)
        engine_handle: object = None
        if self._proc is not None:
            self._proc.subscribe(shard_index, order, subscription)
        else:
            engine_handle = self._shards[shard_index].engine.subscribe(
                subscription, sink
            )
        self._entries[order] = _Entry(
            handle=handle,
            sink=sink,
            shard_index=shard_index,
            engine_handle=engine_handle,
        )
        return handle, shard_index

    def unsubscribe(self, handle: SubscriptionHandle) -> bool:
        with self._reg_lock:
            if self.durability is not None and handle.id in self._entries:
                # Write-ahead: journal the removal before applying it.
                self.durability.log_unsubscribe(handle.id)
            entry = self._entries.pop(handle.id, None)
            if entry is None:
                return False
            if self._proc is not None:
                self._proc.unsubscribe(entry.shard_index, handle.id)
            else:
                self._shards[entry.shard_index].engine.unsubscribe(
                    entry.engine_handle
                )
            for source, target in self._strategy.rebalance(self._loads()):
                self._move_one(source, target)
            return True

    def subscriber_count(self) -> int:
        with self._reg_lock:
            return len(self._entries)

    def shard_sizes(self) -> list[int]:
        """Current subscription count per shard."""
        with self._reg_lock:
            return self._loads()

    # -- durability --------------------------------------------------------

    def _match_restored(self, entry: _Entry, event: Event) -> Any:
        """Deterministically re-match one journaled event for one entry."""
        if self._proc is not None:
            return self._proc.match_one(entry.handle.subscription, event)
        return self._shards[entry.shard_index].engine.match_one(
            entry.handle.subscription, event
        )

    def _restore(self) -> None:
        """Rebuild broker state from the recovered journal mirror."""
        durability = self.durability
        assert durability is not None
        state = durability.state
        with self._reg_lock:
            for order, key, subscription, policy in state.subscription_entries():
                handle, _ = self._register_entry(
                    subscription, None, policy, order=order, key=key, log=False
                )
                self.recovered[order] = handle
            for order, sequences in state.live_entries():
                entry = self._entries.get(order)
                if entry is None:
                    continue
                for sequence in sequences:
                    event = state.event(sequence)
                    result = (
                        self._match_restored(entry, event)
                        if event is not None
                        else None
                    )
                    if result is None:
                        durability.note_restore_miss()
                        continue
                    entry.handle.append(Delivery(result=result, sequence=sequence))
            for record in state.dead_letter_entries():
                order = int(record["id"])
                sequence = int(record["seq"])
                entry = self._entries.get(order)
                event = state.event(sequence)
                result = (
                    self._match_restored(entry, event)
                    if entry is not None and event is not None
                    else None
                )
                if result is None:
                    durability.note_restore_miss()
                    continue
                self.dead_letters.append(
                    DeadLetterRecord(
                        delivery=Delivery(result=result, sequence=sequence),
                        subscriber_id=order,
                        reason=str(record["reason"]),
                        attempts=int(record["attempts"]),
                        error=record.get("error"),
                        timestamp=str(record.get("timestamp") or ""),
                        trace_id=record.get("trace_id"),
                    )
                )
            self._replay.extend(state.ring_entries())
            self._sequence = state.next_sequence
            self._pending_recovery = state.pending_entries()

    def recover_pending(self) -> int:
        """Re-dispatch events that were in flight at the crash.

        Matching runs under the registration lock, deliveries dispatch
        after it is released (RL100), and the idempotency keys suppress
        every delivery that already reached a terminal state before the
        crash. Call after reattaching callbacks to :attr:`recovered`;
        returns the number of events re-dispatched.
        """
        pending_events = self._pending_recovery
        self._pending_recovery = []
        for sequence, event in pending_events:
            ctx = TRACER.mint_trace()
            deliveries: list[tuple[SubscriptionHandle, Delivery]] = []
            with TRACER.root_span("broker.recover", ctx), self._reg_lock:
                self.metrics.inc("evaluations", len(self._entries))
                for order in sorted(self._entries):
                    entry = self._entries[order]
                    result = self._match_restored(entry, event)
                    if result is not None:
                        deliveries.append(
                            (
                                entry.handle,
                                Delivery(
                                    result=result, sequence=sequence, trace=ctx
                                ),
                            )
                        )
            for handle, delivery in deliveries:
                self.reliability.dispatch(handle, delivery)
            if self.durability is not None:
                self.durability.log_done(sequence)
        return len(pending_events)

    # -- observability -----------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Broker-level view plus per-shard registries and their merge.

        ``shards`` holds each shard registry's own snapshot (percentiles
        intact); ``engine_totals`` aggregates them — counters and gauges
        summed, histogram count/sum/min/max merged — via
        :func:`~repro.obs.registry.merge_snapshots`.
        """
        snapshot = self.metrics.snapshot()
        snapshot["queue_wait"] = self._queue_wait.summary()
        snapshot["batch_size"] = self._batch_size.summary()
        snapshot["pending"] = self.pending()
        if self._proc is not None:
            shard_snapshots = self._proc.shard_snapshots()
            snapshot["shards"] = {
                f"shard{index}": shard_snapshot
                for index, shard_snapshot in enumerate(shard_snapshots)
            }
        else:
            shard_snapshots = [
                shard.registry.snapshot() for shard in self._shards
            ]
            snapshot["shards"] = {
                f"shard{shard.index}": shard_snapshot
                for shard, shard_snapshot in zip(
                    self._shards, shard_snapshots, strict=True
                )
            }
        snapshot["engine_totals"] = merge_snapshots(shard_snapshots)["counters"]
        return snapshot

    # -- internals ---------------------------------------------------------

    def _loads(self) -> list[int]:
        if self._proc is not None:
            return self._proc.loads()
        return [shard.engine.subscription_count() for shard in self._shards]

    def _move_one(self, source: int, target: int) -> None:
        """Move the most recently registered subscription off ``source``.

        Global delivery order rides on each sink's ``order``, not on
        shard-internal registration order, so the move is invisible to
        subscribers.
        """
        for entry in reversed(self._entries.values()):
            if entry.shard_index == source:
                if self._proc is not None:
                    self._proc.move(
                        entry.handle.id, source, target,
                        entry.handle.subscription,
                    )
                else:
                    self._shards[source].engine.unsubscribe(entry.engine_handle)
                    entry.engine_handle = self._shards[target].engine.subscribe(
                        entry.handle.subscription, entry.sink
                    )
                entry.shard_index = target
                return

    def _snapshot_shard(
        self, shard: _Shard, events: list[Event], ctx: TraceContext | None
    ) -> Any:
        """Run one shard's batch match with the batch trace active.

        Pool workers are fresh threads with no thread-local context;
        re-activating the batch context here keeps the per-shard engine
        spans inside the batch's trace instead of orphaning them.
        """
        with TRACER.activate(ctx):
            return shard.engine.snapshot_batch(events, deliverable_only=True)

    def _process_batch(
        self, batch: list[tuple[float, Event, TraceContext | None]]
    ) -> None:
        """Match one micro-batch across all shards and merge deliveries."""
        started = self._clock.monotonic()
        events = []
        contexts: list[TraceContext | None] = []
        for enqueued_at, event, ctx in batch:
            self._queue_wait.record(started - enqueued_at)
            TRACER.record_span("broker.ingress.wait", ctx, enqueued_at, started)
            events.append(event)
            contexts.append(ctx)
        self._batch_size.record(len(batch))
        self._queue_depth.set(self._queue.qsize())
        pending: list[tuple[SubscriptionHandle, Delivery]] = []
        # A micro-batch serves many events at once, so it gets its own
        # trace; the member events' traces are referenced through the
        # OTel-style ``links`` attribute rather than a fake parent edge.
        batch_ctx = TRACER.mint_trace()
        links = [ctx.trace_id for ctx in contexts if ctx is not None]
        with TRACER.root_span(
            "broker.match_batch", batch_ctx, events=len(events), links=links
        ), self._reg_lock:
            self.metrics.inc("published", len(events))
            total_subscribers = len(self._entries)
            self.metrics.inc("evaluations", total_subscribers * len(events))
            sequences = []
            for event in events:
                sequences.append(self._sequence)
                if self.durability is not None:
                    # Write-ahead: each event is durable (redo record)
                    # before any shard can match it.
                    self.durability.log_publish(self._sequence, event)
                self._replay.append((self._sequence, event))
                self._sequence += 1
            if self._proc is not None:
                # Workers return only threshold survivors, as compact
                # (order, event index, matrix) records; results are
                # rebuilt here against the parent's own subscription and
                # event objects, then merged in global order exactly
                # like the thread path below.
                per_event: list[list[tuple]] = [[] for _ in events]
                for order, j, matrix in self._proc.match_batch(events):
                    entry = self._entries.get(order)
                    if entry is None:  # pragma: no cover - defensive
                        continue
                    result = self._proc.build_result(
                        entry.handle.subscription, events[j], matrix
                    )
                    if result is not None:
                        per_event[j].append((order, entry.handle, result))
                for j, sequence in enumerate(sequences):
                    per_event[j].sort(key=lambda item: item[0])
                    for _, handle, result in per_event[j]:
                        pending.append(
                            (
                                handle,
                                Delivery(
                                    result=result,
                                    sequence=sequence,
                                    trace=contexts[j],
                                ),
                            )
                        )
            else:
                active = [
                    shard for shard in self._shards
                    if shard.engine.subscription_count()
                ]
                if self._pool is not None and len(active) > 1:
                    futures = [
                        self._pool.submit(
                            self._snapshot_shard, shard, events, batch_ctx
                        )
                        for shard in active
                    ]
                    outcomes = [future.result() for future in futures]
                else:
                    outcomes = [
                        shard.engine.snapshot_batch(events, deliverable_only=True)
                        for shard in active
                    ]
                threshold = self.matcher.threshold
                for j, sequence in enumerate(sequences):
                    matched = []
                    for shard, (registrations, result_batch) in zip(active, outcomes, strict=True):
                        if result_batch is None:
                            continue
                        for index, (_, sink) in enumerate(registrations):
                            result = result_batch.result(index, j)
                            if result is not None and result.is_match(threshold):
                                shard.engine.stats.inc("deliveries")
                                matched.append((sink.order, sink.handle, result))
                    matched.sort(key=lambda item: item[0])
                    for _, handle, result in matched:
                        pending.append(
                            (
                                handle,
                                Delivery(
                                    result=result,
                                    sequence=sequence,
                                    trace=contexts[j],
                                ),
                            )
                        )
        # Matching and sequencing happen under the registry lock; the
        # callbacks themselves must not (RL100) — a subscriber that
        # subscribes/unsubscribes/publishes from its callback would
        # otherwise deadlock against this dispatcher thread.
        for handle, delivery in pending:
            self.reliability.dispatch(handle, delivery)
        if self.durability is not None:
            # Every delivery of these events reached its terminal state;
            # the journal can forget the in-flight entries.
            for sequence in sequences:
                self.durability.log_done(sequence)
