"""RL100/RL101/RL102: no lock may be held across callbacks, broker
re-entry points, or sleeps.

This encodes the PR-4 incident class directly: ``ReliableDelivery``
once held its breaker lock across subscriber callbacks and backoff
sleeps, so a subscriber that published from its callback (or a slow
callback plus a registration on another thread) deadlocked the broker.
The checker flags every ``with <lock>:`` body from which a *sink* is
reachable — directly, or transitively through a bounded call-graph
walk:

* **RL100** — a subscriber callback invocation (``callback(...)`` /
  ``handle.callback(...)``): arbitrary user code under our lock.
* **RL101** — a broker re-entry point (``publish`` / ``subscribe`` /
  ``unsubscribe`` / ``flush``): re-acquires broker state, inviting
  self-deadlock and lock-order inversions.
* **RL102** — a sleep (``clock.sleep`` / ``time.sleep``): turns a
  bounded critical section into an unbounded stall for every other
  thread contending on the lock.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.callgraph import CallGraph, _walk_calls
from repro.analysis.checkers.common import with_lock_items
from repro.analysis.findings import Finding
from repro.analysis.project import FunctionInfo, Module

__all__ = ["check"]

REENTRY_NAMES = frozenset({"publish", "subscribe", "unsubscribe", "flush"})
SLEEP_NAMES = frozenset({"sleep"})

#: ``flush`` on an IO-ish receiver is stream flushing, not broker
#: re-entry; calling it under a lock is unremarkable.
IO_RECEIVERS = frozenset({"sys", "stdout", "stderr", "buffer", "stream", "file", "fh"})

#: Call-graph walk depth from the with-body. 4 is enough to get from a
#: broker lock through dispatch plumbing to the callback invocation.
MAX_DEPTH = 4


@dataclass(frozen=True)
class _Sink:
    rule: str
    label: str
    line: int


def _call_terminal(call: ast.Call) -> tuple[str | None, str | None]:
    """(terminal identifier, receiver identifier) of a call's func."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id, None
    if isinstance(func, ast.Attribute):
        recv = func.value
        recv_name: str | None = None
        if isinstance(recv, ast.Name):
            recv_name = recv.id
        elif isinstance(recv, ast.Attribute):
            recv_name = recv.attr
        return func.attr, recv_name
    return None, None


def _direct_sinks(node: ast.AST) -> list[_Sink]:
    """Sinks syntactically inside ``node`` (nested defs excluded)."""
    sinks: list[_Sink] = []
    for call in _walk_calls(node):
        name, recv = _call_terminal(call)
        if name is None:
            continue
        if name == "callback" or name.endswith("_callback"):
            sinks.append(_Sink("RL100", f"{name}()", call.lineno))
        elif name in REENTRY_NAMES:
            if name == "flush" and recv in IO_RECEIVERS:
                continue
            sinks.append(_Sink("RL101", f"{name}()", call.lineno))
        elif name in SLEEP_NAMES:
            sinks.append(_Sink("RL102", f"{name}()", call.lineno))
    return sinks


def _reachable_sinks(
    stmt: ast.With | ast.AsyncWith,
    caller: FunctionInfo | None,
    module: Module,
    graph: CallGraph,
) -> list[tuple[_Sink, tuple[str, ...]]]:
    """Direct sinks plus sinks reached through the call graph (BFS)."""
    found: list[tuple[_Sink, tuple[str, ...]]] = [
        (s, ()) for s in _direct_sinks(stmt)
    ]
    visited: set[str] = set()
    frontier: list[tuple[FunctionInfo, tuple[str, ...]]] = []
    for site in graph.calls_in(stmt, caller, module):
        for target in site.targets:
            if target.key not in visited:
                visited.add(target.key)
                frontier.append((target, (target.qualname,)))
    depth = 1
    while frontier and depth <= MAX_DEPTH:
        next_frontier: list[tuple[FunctionInfo, tuple[str, ...]]] = []
        for fn, chain in frontier:
            for sink in _direct_sinks(fn.node):
                found.append((sink, chain))
            for site in graph.calls_in(fn.node, fn, fn.module):
                for target in site.targets:
                    if target.key not in visited:
                        visited.add(target.key)
                        next_frontier.append((target, chain + (target.qualname,)))
        frontier = next_frontier
        depth += 1
    return found


def _withs_in(node: ast.AST) -> list[ast.With | ast.AsyncWith]:
    """With-statements directly owned by ``node`` (nested defs excluded)."""
    out: list[ast.With | ast.AsyncWith] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        cur = stack.pop()
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(cur, (ast.With, ast.AsyncWith)):
            out.append(cur)
        stack.extend(ast.iter_child_nodes(cur))
    return out


def check(modules: list[Module], graph: CallGraph) -> list[Finding]:
    findings: list[Finding] = []
    for module in modules:
        module_name = module.rel.rsplit("/", 1)[-1].removesuffix(".py")
        scopes: list[tuple[FunctionInfo | None, ast.AST]] = [(None, module.tree)]
        scopes += [(fn, fn.node) for fn in module.functions]
        for caller, scope in scopes:
            cls = caller.cls if caller is not None else None
            for stmt in _withs_in(scope):
                locks = with_lock_items(stmt, cls=cls, module_name=module_name)
                if not locks:
                    continue
                seen_rules: set[str] = set()
                for sink, chain in _reachable_sinks(stmt, caller, module, graph):
                    if sink.rule in seen_rules:
                        continue
                    seen_rules.add(sink.rule)
                    held = ", ".join(locks)
                    how = "reachable from" if chain else "called in"
                    findings.append(
                        Finding(
                            path=module.rel,
                            line=stmt.lineno,
                            rule=sink.rule,
                            message=(
                                f"lock {held} held across {sink.label} "
                                f"{how} the with-body (sink at line {sink.line})"
                            ),
                            symbol=caller.qualname if caller else "",
                            chain=chain,
                        )
                    )
    return findings
