"""Shared AST helpers for the lock-discipline checkers."""

from __future__ import annotations

import ast

__all__ = ["lock_expr_name", "with_lock_items"]


def _terminal_identifier(expr: ast.expr) -> str | None:
    """The final identifier of a Name/Attribute chain, else None."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def lock_expr_name(expr: ast.expr, *, cls: str | None, module_name: str) -> str | None:
    """Canonical lock name if ``expr`` looks like a lock, else ``None``.

    A context-manager expression "looks like a lock" when its terminal
    identifier contains ``lock`` (case-insensitive): ``self._lock``,
    ``_reg_lock``, ``breaker_lock``. Conditions and other sync
    primitives are deliberately out of scope — waiting on a condition
    releases it, so the held-across-X rules do not apply.

    Canonical names:

    * ``self._lock`` inside class C        -> ``C._lock``
    * bare ``some_lock`` at module level   -> ``<module>.some_lock``
    * ``other.field_lock``                 -> ``<field_lock>`` (receiver
      unknown statically; the attribute name is the best stable key)
    """
    terminal = _terminal_identifier(expr)
    if terminal is None or "lock" not in terminal.lower():
        return None
    if isinstance(expr, ast.Name):
        return f"{module_name}.{terminal}"
    assert isinstance(expr, ast.Attribute)
    if isinstance(expr.value, ast.Name) and expr.value.id == "self":
        return f"{cls}.{terminal}" if cls else f"{module_name}.{terminal}"
    return f"<{terminal}>"


def with_lock_items(
    stmt: ast.With | ast.AsyncWith, *, cls: str | None, module_name: str
) -> list[str]:
    """Canonical names of all lock-like context managers in a with-stmt.

    Handles ``acquire()``-style helpers too: ``with self._lock:`` and
    ``with self._lock.acquire_timeout(...):`` both name ``self._lock``.
    """
    names: list[str] = []
    for item in stmt.items:
        expr: ast.expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
            if isinstance(expr, ast.Attribute):
                # with lock.acquire(...)-style helper: name the receiver.
                inner = lock_expr_name(expr.value, cls=cls, module_name=module_name)
                if inner is not None:
                    names.append(inner)
                    continue
        name = lock_expr_name(expr, cls=cls, module_name=module_name)
        if name is not None:
            names.append(name)
    return names
