"""RL800/RL801/RL802: deterministic teardown on every CFG path.

The executors this repo grew in PRs 6–9 all own heavyweight resources:
spawn-pool workers attached to a ``np.memmap`` snapshot, dispatcher
threads, temp files holding the columnar space, registration locks. A
leak is not just untidy — a worker that outlives its executor keeps the
snapshot file pinned, an unjoined thread races test teardown, and a
lock with no exception-safe release converts the first error into a
deadlock. These rules check the *paths*, not the happy line: the CFG's
exception edges are exactly the paths the unit tests don't walk.

* **RL800** — a ``Thread``/``Process`` constructed without
  ``daemon=True`` and with no ``.join()`` on the binding anywhere in
  the enclosing class (for ``self.<attr>``) or function (for a local).
  Either discipline is fine; having neither means shutdown order is
  whatever the scheduler felt like.
* **RL801** — a handle from ``open()``/``tempfile.mkstemp()``/
  ``np.memmap()`` with a CFG path to function exit that meets no
  release (``close``/``os.unlink``/a sibling method that releases the
  attribute). Locals must release on *all* paths (or visibly escape by
  being returned/stored); ``self.<attr>`` resources intentionally
  outlive the method, so only *exception* paths are checked — the
  window where the half-built object unwinds and no caller holds a
  reference to clean up. Exception liveness uses a calls-only raise
  model: plain attribute stores between creation and the protecting
  ``try`` don't count as escape hatches, calls do.
* **RL802** — ``.acquire()`` with no exception-safe ``.release()``:
  not in a ``finally``, and not the probe (``blocking=False`` with an
  immediate release) or delegation (inside ``acquire``/``__enter__``)
  idioms. The fix is almost always ``with lock:``.
"""

from __future__ import annotations

import ast

from repro.analysis.dataflow import CFG, build_cfg, own_calls
from repro.analysis.findings import Finding
from repro.analysis.project import FunctionInfo, Module

__all__ = ["check", "RESOURCE_FACTORIES"]

#: Calls that produce a resource needing deterministic teardown.
RESOURCE_FACTORIES = frozenset(
    {"open", "fdopen", "mkstemp", "memmap", "open_memmap", "TemporaryFile"}
)

#: Terminal call names that release a file-ish resource.
RELEASE_NAMES = frozenset({"close", "unlink", "remove", "cleanup"})

THREADLIKE = frozenset({"Thread", "Process"})


def _terminal(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _self_attr(expr: ast.expr) -> str | None:
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _mentions_name(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id == name for n in ast.walk(node)
    )


def _mentions_self_attr(node: ast.AST, attr: str) -> bool:
    return any(
        _self_attr(n) == attr
        for n in ast.walk(node)
        if isinstance(n, ast.expr)
    )


def _stmt_has_call(stmt: ast.stmt) -> bool:
    """Calls-only raise model (see module docstring)."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    return bool(own_calls(stmt))


def _stmts_after(block_stmts: list[ast.stmt], stmt: ast.stmt) -> list[ast.stmt]:
    seen = False
    out: list[ast.stmt] = []
    for candidate in block_stmts:
        if seen:
            out.append(candidate)
        if candidate is stmt:
            seen = True
    return out


class _LeakQuery:
    """Path queries over one function's CFG for a single resource."""

    def __init__(
        self, cfg: CFG, release_blocks: set[int], creation_block: int,
        creation_stmt: ast.stmt,
    ) -> None:
        self.cfg = cfg
        self.release = release_blocks
        self.cb = creation_block
        self.cs = creation_stmt

    def _post_creation_reach(self) -> tuple[set[int], bool]:
        """(blocks reachable after creation avoiding release, whether the
        creation block itself still raises after the creation ran)."""
        block = self.cfg.blocks[self.cb]
        tail = _stmts_after(block.stmts, self.cs)
        tail_release = any(
            self._is_release_stmt(stmt) for stmt in tail
        )
        tail_raises = any(_stmt_has_call(s) for s in tail)
        if tail_release:
            # Straight-line release inside the creation block covers the
            # normal path; only a call between the two can still escape.
            starts: set[int] = set()
        else:
            starts = set(block.succs) - block.raises_to
        reach: set[int] = set()
        # sorted: worklist order can't affect the reach set, but the
        # analyzer holds itself to its own RL601 discipline.
        stack = [s for s in sorted(starts) if s not in self.release]
        reach.update(stack)
        while stack:
            for succ in self.cfg.blocks[stack.pop()].succs:
                if succ in self.release or succ in reach:
                    continue
                reach.add(succ)
                stack.append(succ)
        return reach, tail_raises

    def _is_release_stmt(self, stmt: ast.stmt) -> bool:
        raise NotImplementedError

    def _block_is_release(self, block_id: int) -> bool:
        return block_id in self.release

    def normal_leak(self) -> bool:
        """Exit reachable on normal edges without meeting a release."""
        reach, _ = self._post_creation_reach()
        return self.cfg.exit in reach

    def exception_leak(self) -> bool:
        """An exception raised after creation can unwind past release."""
        reach, tail_raises = self._post_creation_reach()
        raising = {b for b in reach if self._block_raises(b)}
        if tail_raises:
            raising.add(self.cb)
        for b in raising:
            for target in self.cfg.blocks[b].raises_to:
                if target == self.cfg.exit:
                    return True
                if target not in self.release and self.cfg.path_avoiding(
                    target, self.cfg.exit, self.release
                ):
                    return True
        return False

    def _block_raises(self, block_id: int) -> bool:
        if block_id == self.cb:
            return False
        return any(
            _stmt_has_call(s) for s in self.cfg.blocks[block_id].stmts
        )


class _ResourceQuery(_LeakQuery):
    def __init__(
        self,
        cfg: CFG,
        creation_block: int,
        creation_stmt: ast.stmt,
        is_release_stmt,  # Callable[[ast.stmt], bool]
    ) -> None:
        self._release_pred = is_release_stmt
        release_blocks = {
            b.id
            for b in cfg.blocks.values()
            if any(is_release_stmt(s) for s in b.stmts)
            and not (
                b.id == creation_block
                and not any(
                    is_release_stmt(s)
                    for s in _stmts_after(b.stmts, creation_stmt)
                )
            )
        }
        super().__init__(cfg, release_blocks, creation_block, creation_stmt)

    def _is_release_stmt(self, stmt: ast.stmt) -> bool:
        return bool(self._release_pred(stmt))


def _creation_calls(stmt: ast.stmt) -> ast.Call | None:
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
        return None
    value = stmt.value
    if isinstance(value, ast.Call) and _terminal(value.func) in RESOURCE_FACTORIES:
        return value
    return None


def _binding(target: ast.expr) -> tuple[list[str], list[str]]:
    """(local names, self attrs) bound by an assignment target."""
    names: list[str] = []
    attrs: list[str] = []
    elements = (
        list(target.elts) if isinstance(target, (ast.Tuple, ast.List)) else [target]
    )
    for element in elements:
        if isinstance(element, ast.Name):
            names.append(element.id)
        else:
            attr = _self_attr(element)
            if attr is not None:
                attrs.append(attr)
    return names, attrs


def _escapes(fn: FunctionInfo, names: list[str]) -> bool:
    """Does ownership of any bound name visibly leave the function?"""
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is not None and any(
                _mentions_name(value, n) for n in names
            ):
                return True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)) and any(
                    _mentions_name(node.value, n) for n in names
                ):
                    return True
    return False


def _class_release_sites(
    module: Module, cls: str | None, attr: str
) -> list[str]:
    """Sibling methods of ``cls`` that release ``self.<attr>``."""
    if cls is None:
        return []
    sites: list[str] = []
    for name, info in module.classes.get(cls, {}).items():
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in RELEASE_NAMES
                ):
                    if _self_attr(func.value) == attr or any(
                        _mentions_self_attr(arg, attr) for arg in node.args
                    ):
                        sites.append(name)
                        break
                elif _terminal(func) in RELEASE_NAMES and any(
                    _mentions_self_attr(arg, attr) for arg in node.args
                ):
                    sites.append(name)
                    break
    return sites


def _check_handles(fn: FunctionInfo, module: Module) -> list[Finding]:
    findings: list[Finding] = []
    cfg = build_cfg(fn.node)
    for block in list(cfg.blocks.values()):
        for stmt in block.stmts:
            call = _creation_calls(stmt)
            if call is None:
                continue
            factory = _terminal(call.func) or "open"
            names, attrs = _binding(stmt.targets[0])
            if attrs:
                finding = _check_attr_resource(
                    fn, module, cfg, block.id, stmt, factory, attrs[0]
                )
            elif names:
                finding = _check_local_resource(
                    fn, module, cfg, block.id, stmt, factory, names
                )
            else:
                finding = None
            if finding is not None:
                findings.append(finding)
    return findings


def _check_local_resource(
    fn: FunctionInfo,
    module: Module,
    cfg: CFG,
    block_id: int,
    stmt: ast.stmt,
    factory: str,
    names: list[str],
) -> Finding | None:
    if _escapes(fn, names):
        return None
    # For mkstemp the *file* is the resource: closing the fd is not
    # enough, the path must be unlinked. For handles, close() releases.
    if factory == "mkstemp":
        resource = names[-1]  # (fd, path) — path owns the file

        def released(s: ast.stmt) -> bool:
            return any(
                _terminal(c.func) in {"unlink", "remove"}
                and any(_mentions_name(a, resource) for a in c.args)
                for c in own_calls(s)
            )

    else:
        resource = names[0]

        def released(s: ast.stmt) -> bool:
            for c in own_calls(s):
                func = c.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in RELEASE_NAMES
                    and _mentions_name(func.value, resource)
                ):
                    return True
                if _terminal(func) in RELEASE_NAMES and any(
                    _mentions_name(a, resource) for a in c.args
                ):
                    return True
            return False

    query = _ResourceQuery(cfg, block_id, stmt, released)
    if query.normal_leak() or query.exception_leak():
        kind = "normal" if query.normal_leak() else "exception"
        return Finding(
            path=module.rel,
            line=stmt.lineno,
            rule="RL801",
            message=(
                f"{factory}() handle {resource!r} has a {kind} path to "
                "exit with no release (use `with`, or release in a "
                "finally that covers every call after creation)"
            ),
            symbol=fn.qualname,
            chain=(f"{factory}@{stmt.lineno}", f"{kind} path escapes release"),
        )
    return None


def _check_attr_resource(
    fn: FunctionInfo,
    module: Module,
    cfg: CFG,
    block_id: int,
    stmt: ast.stmt,
    factory: str,
    attr: str,
) -> Finding | None:
    releasing_methods = _class_release_sites(module, fn.cls, attr)
    if not releasing_methods:
        return Finding(
            path=module.rel,
            line=stmt.lineno,
            rule="RL801",
            message=(
                f"self.{attr} holds a {factory}() resource but no method "
                "of this class releases it (add a close/unlink site)"
            ),
            symbol=fn.qualname,
            chain=(f"{factory}@{stmt.lineno}", "no class-wide release"),
        )

    def released(s: ast.stmt) -> bool:
        for c in own_calls(s):
            func = c.func
            if isinstance(func, ast.Attribute):
                if func.attr in RELEASE_NAMES and (
                    _self_attr(func.value) == attr
                    or any(_mentions_self_attr(a, attr) for a in c.args)
                ):
                    return True
                # Delegation to a sibling releasing method counts.
                if (
                    _self_attr(func) is not None
                    and func.attr in releasing_methods
                ):
                    return True
            elif _terminal(func) in RELEASE_NAMES and any(
                _mentions_self_attr(a, attr) for a in c.args
            ):
                return True
        return False

    # Stored resources outlive the method by design, and outside
    # __init__ the caller already holds the owner, so close() stays
    # reachable however the method unwinds. Only the constructor has
    # the orphan window: an exception after creation and no caller
    # with a reference to clean up.
    if fn.name != "__init__":
        return None
    query = _ResourceQuery(cfg, block_id, stmt, released)
    if query.exception_leak():
        return Finding(
            path=module.rel,
            line=stmt.lineno,
            rule="RL801",
            message=(
                f"an exception after self.{attr} = {factory}(...) "
                "unwinds without releasing it: no caller holds the "
                "half-built object, so the resource leaks (wrap the "
                "post-creation calls in try/except that releases)"
            ),
            symbol=fn.qualname,
            chain=(f"{factory}@{stmt.lineno}", "unprotected unwind path"),
        )
    return None


def _check_threads(fn: FunctionInfo, module: Module) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        value = node.value
        if not (
            isinstance(value, ast.Call) and _terminal(value.func) in THREADLIKE
        ):
            continue
        if any(
            kw.arg == "daemon"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in value.keywords
        ):
            continue
        kind = _terminal(value.func) or "Thread"
        names, attrs = _binding(node.targets[0])
        joined = False
        if attrs:
            scope: ast.AST | None = None
            if fn.cls is not None:
                methods = module.classes.get(fn.cls, {})
                joined = any(
                    any(
                        isinstance(n, ast.Call)
                        and isinstance(n.func, ast.Attribute)
                        and n.func.attr == "join"
                        and _self_attr(n.func.value) == attrs[0]
                        for n in ast.walk(info.node)
                    )
                    for info in methods.values()
                )
            del scope
        elif names:
            joined = any(
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr == "join"
                and _mentions_name(n.func.value, names[0])
                for n in ast.walk(fn.node)
            )
        if not joined:
            binding = f"self.{attrs[0]}" if attrs else (names[0] if names else "?")
            findings.append(
                Finding(
                    path=module.rel,
                    line=node.lineno,
                    rule="RL800",
                    message=(
                        f"{kind} bound to {binding} is neither daemon=True "
                        "nor joined anywhere: shutdown order is left to "
                        "the scheduler (join it in close(), or mark it "
                        "daemon)"
                    ),
                    symbol=fn.qualname,
                    chain=(f"{kind}@{node.lineno}", "no join, not daemon"),
                )
            )
    return findings


def _check_locks(fn: FunctionInfo, module: Module) -> list[Finding]:
    if fn.name in {"acquire", "__enter__"}:
        # Wrapper delegation: the caller owns the acquire/release pairing.
        return []
    findings: list[Finding] = []
    finally_releases: list[tuple[str, ast.Try]] = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Try):
            for stmt in node.finalbody:
                for call in own_calls(stmt):
                    func = call.func
                    if isinstance(func, ast.Attribute) and func.attr == "release":
                        finally_releases.append(
                            (ast.dump(func.value), node)
                        )
    for node in ast.walk(fn.node):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
        ):
            continue
        nonblocking = any(
            isinstance(a, ast.Constant) and a.value is False for a in node.args
        ) or any(
            kw.arg == "blocking"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is False
            for kw in node.keywords
        )
        if nonblocking:
            continue
        receiver = ast.dump(node.func.value)
        if any(recv == receiver for recv, _ in finally_releases):
            continue
        findings.append(
            Finding(
                path=module.rel,
                line=node.lineno,
                rule="RL802",
                message=(
                    "acquire() with no release() in a finally on this "
                    "receiver: the first exception between them leaves "
                    "the lock held forever (use `with`, or try/finally)"
                ),
                symbol=fn.qualname,
                chain=(f"acquire@{node.lineno}", "no finally release"),
            )
        )
    return findings


def check(modules: list[Module]) -> list[Finding]:
    findings: list[Finding] = []
    for module in modules:
        for fn in module.functions:
            findings.extend(_check_handles(fn, module))
            findings.extend(_check_threads(fn, module))
            findings.extend(_check_locks(fn, module))
    return findings
