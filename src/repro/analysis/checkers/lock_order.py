"""RL200: the static lock-acquisition graph must be acyclic.

Two threads acquiring the same pair of locks in opposite orders is the
textbook deadlock; with more than a couple of locks (broker registry
lock, breaker lock, per-metric locks, degraded-mode lock) the pairwise
discipline stops being reviewable by eye. This checker builds the
acquire-while-holding graph — an edge ``A -> B`` for every ``with B:``
nested (syntactically, or through a bounded call-graph walk) inside a
``with A:`` — and fails on any cycle, including the single-lock cycle
``A -> A`` through a call chain on a non-reentrant lock (the
self-deadlock shape PR-4 hit at runtime).

The runtime complement is :class:`repro.analysis.runtime.InstrumentedLock`,
which records the *actual* acquisition orders under test and asserts
the same acyclicity, catching orders the heuristic static graph cannot
resolve.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.callgraph import CallGraph, CallSite, is_fuzzy_call
from repro.analysis.checkers.common import with_lock_items
from repro.analysis.findings import Finding
from repro.analysis.project import FunctionInfo, Module

__all__ = ["check"]

MAX_DEPTH = 4


@dataclass(frozen=True)
class _Edge:
    src: str
    dst: str
    path: str
    line: int
    symbol: str
    note: str


def _confident_sites(sites: list[CallSite]) -> list[CallSite]:
    """Drop ambiguous by-name edges: a cycle finding fails the build, so
    lock-order only trusts fuzzy calls with exactly one candidate def
    (lock-scope keeps the full over-approximation — there, breadth is
    the point and exceptions are reviewable allowlist entries)."""
    return [
        s for s in sites if not (is_fuzzy_call(s.call) and len(s.targets) > 1)
    ]


def _reentrant_locks(modules: list[Module]) -> set[str]:
    """Canonical names of locks assigned from ``RLock()`` constructors."""
    reentrant: set[str] = set()
    for module in modules:
        module_name = module.rel.rsplit("/", 1)[-1].removesuffix(".py")
        for fn in module.functions:
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                if not isinstance(value, ast.Call):
                    continue
                func = value.func
                name = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else None
                )
                if name != "RLock":
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and fn.cls is not None
                    ):
                        reentrant.add(f"{fn.cls}.{target.attr}")
                    elif isinstance(target, ast.Name):
                        reentrant.add(f"{module_name}.{target.id}")
    return reentrant


def _locks_acquired_in(
    fn: FunctionInfo, graph: CallGraph, depth: int, visited: set[str]
) -> list[tuple[str, str, int, tuple[str, ...]]]:
    """Locks acquired by ``fn`` or its callees: (name, path, line, chain)."""
    module = fn.module
    module_name = module.rel.rsplit("/", 1)[-1].removesuffix(".py")
    out: list[tuple[str, str, int, tuple[str, ...]]] = []
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for name in with_lock_items(node, cls=fn.cls, module_name=module_name):
                out.append((name, module.rel, node.lineno, (fn.qualname,)))
    if depth < MAX_DEPTH:
        for site in _confident_sites(graph.calls_in(fn.node, fn, module)):
            for target in site.targets:
                if target.key in visited:
                    continue
                visited.add(target.key)
                for name, path, line, chain in _locks_acquired_in(
                    target, graph, depth + 1, visited
                ):
                    out.append((name, path, line, (fn.qualname, *chain)))
    return out


def _collect_edges(modules: list[Module], graph: CallGraph) -> list[_Edge]:
    edges: list[_Edge] = []

    def scan(
        body: list[ast.stmt],
        held: tuple[str, ...],
        caller: FunctionInfo | None,
        module: Module,
        module_name: str,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs run in their own dynamic scope
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                cls = caller.cls if caller is not None else None
                locks = with_lock_items(stmt, cls=cls, module_name=module_name)
                now_held = held
                for lock in locks:
                    for h in now_held:
                        edges.append(
                            _Edge(
                                src=h,
                                dst=lock,
                                path=module.rel,
                                line=stmt.lineno,
                                symbol=caller.qualname if caller else "",
                                note="nested with",
                            )
                        )
                    now_held = (*now_held, lock)
                if locks:
                    # Transitive acquisitions from calls inside the body.
                    for site in _confident_sites(
                        graph.calls_in(stmt, caller, module)
                    ):
                        for target in site.targets:
                            acquired = _locks_acquired_in(
                                target, graph, 1, {target.key}
                            )
                            for name, _path, _line, chain in acquired:
                                for h in now_held:
                                    edges.append(
                                        _Edge(
                                            src=h,
                                            dst=name,
                                            path=module.rel,
                                            line=stmt.lineno,
                                            symbol=(
                                                caller.qualname if caller else ""
                                            ),
                                            note="via " + " -> ".join(chain),
                                        )
                                    )
                scan(stmt.body, now_held, caller, module, module_name)
                continue
            for child_body in _stmt_bodies(stmt):
                scan(child_body, held, caller, module, module_name)

    for module in modules:
        module_name = module.rel.rsplit("/", 1)[-1].removesuffix(".py")
        scan(module.tree.body, (), None, module, module_name)
        for fn in module.functions:
            scan(list(fn.node.body), (), fn, module, module_name)
    return edges


def _stmt_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    bodies: list[list[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if isinstance(block, list):
            bodies.append(block)
    for handler in getattr(stmt, "handlers", []) or []:
        bodies.append(handler.body)
    return bodies


def _cycles(edges: list[_Edge], reentrant: set[str]) -> list[list[_Edge]]:
    """Elementary cycles in the edge graph (one representative per SCC)."""
    graph: dict[str, dict[str, _Edge]] = {}
    self_cycles: dict[str, _Edge] = {}
    for edge in edges:
        if edge.src == edge.dst:
            # Same-instance reacquisition is fine on an RLock; unknown
            # receivers (``<attr>`` names) usually denote *different*
            # instances, so a self-edge there is noise, not a cycle.
            if edge.dst in reentrant or edge.dst.startswith("<"):
                continue
            self_cycles.setdefault(edge.src, edge)
            continue
        graph.setdefault(edge.src, {}).setdefault(edge.dst, edge)

    # Tarjan SCC; any component with more than one node contains a cycle.
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    cycles: list[list[_Edge]] = [[edge] for edge in self_cycles.values()]

    def strongconnect(v: str) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in graph.get(v, {}):
            if w not in index:
                strongconnect(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            component: list[str] = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                component.append(w)
                if w == v:
                    break
            if len(component) > 1:
                members = set(component)
                cycle = [
                    e
                    for src in component
                    for dst, e in graph.get(src, {}).items()
                    if dst in members
                ]
                cycles.append(cycle)

    for v in list(graph):
        if v not in index:
            strongconnect(v)
    return cycles


def check(modules: list[Module], graph: CallGraph) -> list[Finding]:
    reentrant = _reentrant_locks(modules)
    edges = _collect_edges(modules, graph)
    findings: list[Finding] = []
    for cycle in _cycles(edges, reentrant):
        if len(cycle) == 1 and cycle[0].src == cycle[0].dst:
            edge = cycle[0]
            findings.append(
                Finding(
                    path=edge.path,
                    line=edge.line,
                    rule="RL200",
                    message=(
                        f"non-reentrant lock {edge.src} re-acquired while "
                        f"held ({edge.note}): self-deadlock"
                    ),
                    symbol=edge.symbol,
                )
            )
            continue
        members = sorted({e.src for e in cycle} | {e.dst for e in cycle})
        order = " <-> ".join(members)
        first = min(cycle, key=lambda e: (e.path, e.line))
        sites = "; ".join(
            f"{e.src}->{e.dst} at {e.path}:{e.line}" for e in cycle
        )
        findings.append(
            Finding(
                path=first.path,
                line=first.line,
                rule="RL200",
                message=f"lock-order cycle {order} ({sites})",
                symbol=first.symbol,
            )
        )
    return findings
